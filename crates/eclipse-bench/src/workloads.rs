//! Workload construction shared by the Criterion benches and the
//! `experiments` binary: the parameter grid of Table IV plus helpers to
//! materialize each dataset/ratio combination, and the synthetic hyperplane
//! workloads probing the Intersection Index hot path directly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eclipse_core::point::{BoundingBox, Point};
use eclipse_core::weights::WeightRatioBox;
use eclipse_data::synthetic::{Distribution, SyntheticConfig};
use eclipse_geom::hyperplane::Hyperplane;

/// The point counts of Table IV: 2^7, 2^10, 2^13, 2^17, 2^20.
pub const PAPER_N_VALUES: [usize; 5] = [1 << 7, 1 << 10, 1 << 13, 1 << 17, 1 << 20];

/// The point counts used by default in this reproduction's harness.  The
/// paper's largest settings take the quadratic baseline into the 10^4–10^5
/// second range (its own Figure 10 y-axis); the default harness therefore
/// stops at 2^13 and the `--full` flag restores the full grid.
pub const DEFAULT_N_VALUES: [usize; 3] = [1 << 7, 1 << 10, 1 << 13];

/// The dimensionalities of Table IV.
pub const PAPER_D_VALUES: [usize; 4] = [2, 3, 4, 5];

/// The ratio ranges of Table IV (all dimensions share the same range), from
/// widest to narrowest; the third entry `[0.36, 2.75]` is the default.
pub const PAPER_RATIO_RANGES: [(f64, f64); 4] =
    [(0.18, 5.67), (0.36, 2.75), (0.58, 1.73), (0.84, 1.19)];

/// Default parameters (bold entries of Table IV): `n = 2^10`, `d = 3`,
/// `r[j] ∈ [0.36, 2.75]`.
pub const DEFAULT_N: usize = 1 << 10;
/// Default dimensionality.
pub const DEFAULT_D: usize = 3;
/// Default ratio range.
pub const DEFAULT_RATIO: (f64, f64) = (0.36, 2.75);
/// Default NBA subset size used when varying `d` / `r` (the paper uses 1000).
pub const DEFAULT_NBA_N: usize = 1000;
/// Full NBA dataset size.
pub const FULL_NBA_N: usize = 2384;

/// A named dataset family of Figure 10/11/12: the three synthetic
/// distributions plus the NBA stand-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetFamily {
    /// Correlated synthetic data.
    Corr,
    /// Independent synthetic data.
    Inde,
    /// Anti-correlated synthetic data.
    Anti,
    /// Synthetic NBA-like data (see `eclipse_data::nba`).
    Nba,
}

impl DatasetFamily {
    /// All families in the paper's subplot order.
    pub fn all() -> [DatasetFamily; 4] {
        [
            DatasetFamily::Corr,
            DatasetFamily::Inde,
            DatasetFamily::Anti,
            DatasetFamily::Nba,
        ]
    }

    /// Label used in output rows.
    pub fn label(self) -> &'static str {
        match self {
            DatasetFamily::Corr => "CORR",
            DatasetFamily::Inde => "INDE",
            DatasetFamily::Anti => "ANTI",
            DatasetFamily::Nba => "NBA",
        }
    }

    /// Materializes `n` points in `d` dimensions for this family.
    pub fn generate(self, n: usize, d: usize, seed: u64) -> Vec<Point> {
        match self {
            DatasetFamily::Corr => {
                SyntheticConfig::new(n, d, Distribution::Correlated, seed).generate()
            }
            DatasetFamily::Inde => {
                SyntheticConfig::new(n, d, Distribution::Independent, seed).generate()
            }
            DatasetFamily::Anti => {
                SyntheticConfig::new(n, d, Distribution::AntiCorrelated, seed).generate()
            }
            DatasetFamily::Nba => eclipse_data::nba::nba_dataset(n.min(FULL_NBA_N), d, seed),
        }
    }
}

/// The clustered worst-case dataset of Figs. 13–14.
pub fn worst_case_dataset(n: usize, d: usize, seed: u64) -> Vec<Point> {
    SyntheticConfig::new(n, d, Distribution::ClusteredWorstCase, seed).generate()
}

/// The uniform ratio box `r[j] ∈ [lo, hi]` for a `d`-dimensional dataset.
pub fn ratio_box(d: usize, lo: f64, hi: f64) -> WeightRatioBox {
    WeightRatioBox::uniform(d, lo, hi).expect("paper ratio ranges are always valid")
}

/// The default ratio box of Table IV for dimensionality `d`.
pub fn default_ratio_box(d: usize) -> WeightRatioBox {
    ratio_box(d, DEFAULT_RATIO.0, DEFAULT_RATIO.1)
}

/// Upper bound of the synthetic ratio-space cell the hyperplane probe
/// workloads live in (the indexed region is `[0, PROBE_CELL_HI]^k`).
pub const PROBE_CELL_HI: f64 = 4.0;

/// The root cell of the hyperplane probe workloads.
pub fn probe_root_cell(k: usize) -> BoundingBox {
    BoundingBox::new(vec![0.0; k], vec![PROBE_CELL_HI; k])
}

/// Shapes of synthetic hyperplane sets exercising the Intersection Index
/// directly (without going through a dataset): the tree-level counterpart of
/// [`DatasetFamily`], used by the `index_query` bench and the
/// `experiments -- probes` sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HyperplaneFamily {
    /// Random orientations anchored uniformly in the cell.
    Uniform,
    /// All hyperplanes pass within a tiny ball around one interior point —
    /// the quadtree's worst case (Figs. 13–14): every subdivision near the
    /// cluster keeps every entry.
    Clustered,
    /// Near-anti-correlated orientations (coefficients summing to ≈ 0),
    /// mimicking the intersection hyperplanes of anti-correlated data.
    Anti,
}

impl HyperplaneFamily {
    /// All families in display order.
    pub fn all() -> [HyperplaneFamily; 3] {
        [
            HyperplaneFamily::Uniform,
            HyperplaneFamily::Clustered,
            HyperplaneFamily::Anti,
        ]
    }

    /// Label used in output rows.
    pub fn label(self) -> &'static str {
        match self {
            HyperplaneFamily::Uniform => "uniform",
            HyperplaneFamily::Clustered => "clustered",
            HyperplaneFamily::Anti => "anti",
        }
    }
}

/// Materializes `n` hyperplanes of a family in `k`-dimensional ratio space,
/// all intersecting [`probe_root_cell`].
pub fn hyperplane_workload(
    family: HyperplaneFamily,
    n: usize,
    k: usize,
    seed: u64,
) -> Vec<Hyperplane> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cluster_center = vec![0.4 * PROBE_CELL_HI; k];
    (0..n)
        .map(|_| {
            let coeffs: Vec<f64> = match family {
                HyperplaneFamily::Uniform | HyperplaneFamily::Clustered => {
                    (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect()
                }
                HyperplaneFamily::Anti => {
                    let raw: Vec<f64> = (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    let mean = raw.iter().sum::<f64>() / k as f64;
                    raw.iter().map(|c| c - mean + 1e-3).collect()
                }
            };
            let anchor: Vec<f64> = match family {
                HyperplaneFamily::Uniform | HyperplaneFamily::Anti => {
                    (0..k).map(|_| rng.gen_range(0.0..PROBE_CELL_HI)).collect()
                }
                HyperplaneFamily::Clustered => cluster_center
                    .iter()
                    .map(|c| c + rng.gen_range(-1e-3..1e-3))
                    .collect(),
            };
            let offset: f64 = -coeffs
                .iter()
                .zip(anchor.iter())
                .map(|(c, a)| c * a)
                .sum::<f64>();
            Hyperplane::new(coeffs, offset)
        })
        .collect()
}

/// `m` small axis-aligned probe boxes with side `side_frac * PROBE_CELL_HI`,
/// placed uniformly inside [`probe_root_cell`].
pub fn probe_boxes(m: usize, k: usize, side_frac: f64, seed: u64) -> Vec<BoundingBox> {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = side_frac * PROBE_CELL_HI;
    (0..m)
        .map(|_| {
            let lo: Vec<f64> = (0..k)
                .map(|_| rng.gen_range(0.0..(PROBE_CELL_HI - side)))
                .collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + side).collect();
            BoundingBox::new(lo, hi)
        })
        .collect()
}

/// `m` bounded weight-ratio probe boxes for end-to-end [`EclipseIndex`]
/// probing: lower corners in `[0.2, 2.0)`, widths in `[0.05, 1.5)` per axis.
///
/// [`EclipseIndex`]: eclipse_core::index::EclipseIndex
pub fn probe_ratio_boxes(m: usize, d: usize, seed: u64) -> Vec<WeightRatioBox> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            let bounds: Vec<(f64, f64)> = (0..d - 1)
                .map(|_| {
                    let lo = rng.gen_range(0.2..2.0);
                    (lo, lo + rng.gen_range(0.05..1.5))
                })
                .collect();
            WeightRatioBox::from_bounds(&bounds).expect("generated bounds are valid")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_constants() {
        assert_eq!(PAPER_N_VALUES[0], 128);
        assert_eq!(PAPER_N_VALUES[4], 1_048_576);
        assert_eq!(PAPER_D_VALUES, [2, 3, 4, 5]);
        assert_eq!(PAPER_RATIO_RANGES.len(), 4);
        assert_eq!(DEFAULT_N, 1024);
        assert_eq!(DEFAULT_D, 3);
    }

    #[test]
    fn families_generate_requested_shapes() {
        for fam in DatasetFamily::all() {
            let pts = fam.generate(256, 3, 1);
            assert_eq!(pts.len(), 256, "{fam:?}");
            assert!(pts.iter().all(|p| p.dim() == 3), "{fam:?}");
        }
        // NBA caps at the full league size.
        let nba = DatasetFamily::Nba.generate(10_000, 3, 1);
        assert_eq!(nba.len(), FULL_NBA_N);
    }

    #[test]
    fn ratio_boxes_are_valid() {
        for (lo, hi) in PAPER_RATIO_RANGES {
            let b = ratio_box(3, lo, hi);
            assert_eq!(b.dim(), 3);
        }
        assert_eq!(default_ratio_box(4).num_ratios(), 3);
    }

    #[test]
    fn worst_case_is_generated() {
        let pts = worst_case_dataset(128, 3, 5);
        assert_eq!(pts.len(), 128);
    }

    #[test]
    fn hyperplane_workloads_cross_the_root_cell() {
        let cell = probe_root_cell(2);
        for family in HyperplaneFamily::all() {
            let planes = hyperplane_workload(family, 200, 2, 9);
            assert_eq!(planes.len(), 200, "{family:?}");
            // Every plane passes through an interior anchor, so it must
            // intersect the root cell.
            assert!(planes.iter().all(|h| h.intersects_box(&cell)), "{family:?}");
        }
        // Clustered planes all cross a tiny box around the cluster centre.
        let clustered = hyperplane_workload(HyperplaneFamily::Clustered, 100, 2, 9);
        let around = BoundingBox::new(vec![1.58, 1.58], vec![1.62, 1.62]);
        assert!(clustered.iter().all(|h| h.intersects_box(&around)));
    }

    #[test]
    fn probe_boxes_stay_inside_the_cell() {
        let cell = probe_root_cell(3);
        for b in probe_boxes(50, 3, 0.05, 4) {
            assert!(cell.contains_box(&b));
        }
        for rb in probe_ratio_boxes(20, 3, 4) {
            assert_eq!(rb.dim(), 3);
            assert!(!rb.has_unbounded_range());
        }
    }
}
