//! Workload construction shared by the Criterion benches and the
//! `experiments` binary: the parameter grid of Table IV plus helpers to
//! materialize each dataset/ratio combination.

use eclipse_core::point::Point;
use eclipse_core::weights::WeightRatioBox;
use eclipse_data::synthetic::{Distribution, SyntheticConfig};

/// The point counts of Table IV: 2^7, 2^10, 2^13, 2^17, 2^20.
pub const PAPER_N_VALUES: [usize; 5] = [1 << 7, 1 << 10, 1 << 13, 1 << 17, 1 << 20];

/// The point counts used by default in this reproduction's harness.  The
/// paper's largest settings take the quadratic baseline into the 10^4–10^5
/// second range (its own Figure 10 y-axis); the default harness therefore
/// stops at 2^13 and the `--full` flag restores the full grid.
pub const DEFAULT_N_VALUES: [usize; 3] = [1 << 7, 1 << 10, 1 << 13];

/// The dimensionalities of Table IV.
pub const PAPER_D_VALUES: [usize; 4] = [2, 3, 4, 5];

/// The ratio ranges of Table IV (all dimensions share the same range), from
/// widest to narrowest; the third entry `[0.36, 2.75]` is the default.
pub const PAPER_RATIO_RANGES: [(f64, f64); 4] =
    [(0.18, 5.67), (0.36, 2.75), (0.58, 1.73), (0.84, 1.19)];

/// Default parameters (bold entries of Table IV): `n = 2^10`, `d = 3`,
/// `r[j] ∈ [0.36, 2.75]`.
pub const DEFAULT_N: usize = 1 << 10;
/// Default dimensionality.
pub const DEFAULT_D: usize = 3;
/// Default ratio range.
pub const DEFAULT_RATIO: (f64, f64) = (0.36, 2.75);
/// Default NBA subset size used when varying `d` / `r` (the paper uses 1000).
pub const DEFAULT_NBA_N: usize = 1000;
/// Full NBA dataset size.
pub const FULL_NBA_N: usize = 2384;

/// A named dataset family of Figure 10/11/12: the three synthetic
/// distributions plus the NBA stand-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetFamily {
    /// Correlated synthetic data.
    Corr,
    /// Independent synthetic data.
    Inde,
    /// Anti-correlated synthetic data.
    Anti,
    /// Synthetic NBA-like data (see `eclipse_data::nba`).
    Nba,
}

impl DatasetFamily {
    /// All families in the paper's subplot order.
    pub fn all() -> [DatasetFamily; 4] {
        [
            DatasetFamily::Corr,
            DatasetFamily::Inde,
            DatasetFamily::Anti,
            DatasetFamily::Nba,
        ]
    }

    /// Label used in output rows.
    pub fn label(self) -> &'static str {
        match self {
            DatasetFamily::Corr => "CORR",
            DatasetFamily::Inde => "INDE",
            DatasetFamily::Anti => "ANTI",
            DatasetFamily::Nba => "NBA",
        }
    }

    /// Materializes `n` points in `d` dimensions for this family.
    pub fn generate(self, n: usize, d: usize, seed: u64) -> Vec<Point> {
        match self {
            DatasetFamily::Corr => {
                SyntheticConfig::new(n, d, Distribution::Correlated, seed).generate()
            }
            DatasetFamily::Inde => {
                SyntheticConfig::new(n, d, Distribution::Independent, seed).generate()
            }
            DatasetFamily::Anti => {
                SyntheticConfig::new(n, d, Distribution::AntiCorrelated, seed).generate()
            }
            DatasetFamily::Nba => eclipse_data::nba::nba_dataset(n.min(FULL_NBA_N), d, seed),
        }
    }
}

/// The clustered worst-case dataset of Figs. 13–14.
pub fn worst_case_dataset(n: usize, d: usize, seed: u64) -> Vec<Point> {
    SyntheticConfig::new(n, d, Distribution::ClusteredWorstCase, seed).generate()
}

/// The uniform ratio box `r[j] ∈ [lo, hi]` for a `d`-dimensional dataset.
pub fn ratio_box(d: usize, lo: f64, hi: f64) -> WeightRatioBox {
    WeightRatioBox::uniform(d, lo, hi).expect("paper ratio ranges are always valid")
}

/// The default ratio box of Table IV for dimensionality `d`.
pub fn default_ratio_box(d: usize) -> WeightRatioBox {
    ratio_box(d, DEFAULT_RATIO.0, DEFAULT_RATIO.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_constants() {
        assert_eq!(PAPER_N_VALUES[0], 128);
        assert_eq!(PAPER_N_VALUES[4], 1_048_576);
        assert_eq!(PAPER_D_VALUES, [2, 3, 4, 5]);
        assert_eq!(PAPER_RATIO_RANGES.len(), 4);
        assert_eq!(DEFAULT_N, 1024);
        assert_eq!(DEFAULT_D, 3);
    }

    #[test]
    fn families_generate_requested_shapes() {
        for fam in DatasetFamily::all() {
            let pts = fam.generate(256, 3, 1);
            assert_eq!(pts.len(), 256, "{fam:?}");
            assert!(pts.iter().all(|p| p.dim() == 3), "{fam:?}");
        }
        // NBA caps at the full league size.
        let nba = DatasetFamily::Nba.generate(10_000, 3, 1);
        assert_eq!(nba.len(), FULL_NBA_N);
    }

    #[test]
    fn ratio_boxes_are_valid() {
        for (lo, hi) in PAPER_RATIO_RANGES {
            let b = ratio_box(3, lo, hi);
            assert_eq!(b.dim(), 3);
        }
        assert_eq!(default_ratio_box(4).num_ratios(), 3);
    }

    #[test]
    fn worst_case_is_generated() {
        let pts = worst_case_dataset(128, 3, 5);
        assert_eq!(pts.len(), 128);
    }
}
