//! Experiment harness reproducing every table and figure of the paper's
//! evaluation section (§V).
//!
//! ```text
//! cargo run --release -p eclipse-bench --bin experiments -- all
//! cargo run --release -p eclipse-bench --bin experiments -- table6 fig10
//! cargo run --release -p eclipse-bench --bin experiments -- --full fig10
//! cargo run --release -p eclipse-bench --bin experiments -- --out results/ all
//! ```
//!
//! Without `--full` the scaling experiments stop at n = 2^13 (the paper's
//! largest settings push the quadratic baseline into the 10^4-second range on
//! its own hardware; the shapes are already clear at 2^13).  `--out DIR`
//! additionally writes each table as CSV into DIR.

use std::collections::BTreeSet;
use std::path::PathBuf;

use eclipse_bench::harness::{
    format_secs, run_competitor_repeated, run_index_probes, run_index_probes_batched,
    run_skyline_executor, run_tran_at_threads, run_tree_probes, run_tree_probes_configured,
    skyline_executors, Competitor,
};
use eclipse_bench::workloads::{
    default_ratio_box, hyperplane_workload, probe_boxes, probe_ratio_boxes, probe_root_cell,
    ratio_box, worst_case_dataset, DatasetFamily, HyperplaneFamily, DEFAULT_D, DEFAULT_N,
    DEFAULT_NBA_N, DEFAULT_N_VALUES, PAPER_D_VALUES, PAPER_N_VALUES, PAPER_RATIO_RANGES,
};
use eclipse_core::algo::transform::{eclipse_transform, SkylineBackend};
use eclipse_core::exec::ExecutionContext;
use eclipse_core::index::{EclipseIndex, IndexConfig, IntersectionIndexKind};
use eclipse_core::relations::RelationReport;
use eclipse_data::io::ResultTable;
use eclipse_data::survey::{run_survey, SurveyConfig, SurveySystem};
use eclipse_data::synthetic::{Distribution, SyntheticConfig};
use eclipse_exec::ThreadPool;
use eclipse_geom::cutting::{CutRule, CuttingTree, CuttingTreeConfig};
use eclipse_geom::hyperplane::HyperplaneSlab;
use eclipse_geom::quadtree::{HyperplaneQuadtree, QuadtreeConfig, SplitRule};
use eclipse_serve::client::{Client, PipelinedClient};
use eclipse_serve::protocol::IndexKind;
use eclipse_serve::server::Server;

const SEED: u64 = 20210614;

struct Options {
    full: bool,
    quick: bool,
    out_dir: Option<PathBuf>,
    experiments: BTreeSet<String>,
}

fn main() {
    let opts = parse_args();
    let all = opts.experiments.contains("all") || opts.experiments.is_empty();
    let want = |name: &str| all || opts.experiments.contains(name);

    if want("table5") {
        emit(&opts, "table5", table5());
    }
    if want("table6") {
        emit(&opts, "table6", table6(&opts));
    }
    if want("table7") {
        emit(&opts, "table7", table7());
    }
    if want("table8") {
        emit(&opts, "table8", table8());
    }
    if want("fig10") {
        for (name, table) in fig10(&opts) {
            emit(&opts, &name, table);
        }
    }
    if want("fig11") {
        for (name, table) in fig11() {
            emit(&opts, &name, table);
        }
    }
    if want("fig12") {
        for (name, table) in fig12() {
            emit(&opts, &name, table);
        }
    }
    if want("fig13") {
        emit(&opts, "fig13", fig13(&opts));
    }
    if want("fig14") {
        emit(&opts, "fig14", fig14());
    }
    if want("relations") {
        emit(&opts, "relations", relations());
    }
    if want("threads") {
        emit(&opts, "threads", threads_sweep(&opts));
    }
    if want("probes") {
        for (name, table) in probes_sweep(&opts) {
            emit(&opts, &name, table);
        }
    }
    if want("serve") {
        emit(&opts, "serve", serve_sweep(&opts));
    }
    if want("serve_pipeline") {
        emit(&opts, "serve_pipeline", serve_pipeline_sweep(&opts));
    }
    if want("snapshot") {
        emit(&opts, "snapshot", snapshot_sweep(&opts));
    }
    if want("mutate") {
        emit(&opts, "mutate", mutate_sweep(&opts));
    }
    if want("build") {
        for (name, table) in build_sweep(&opts) {
            emit(&opts, &name, table);
        }
    }
    if want("shard") {
        emit(&opts, "shard", shard_sweep(&opts));
    }
    if want("memory") {
        emit(&opts, "memory", memory_sweep(&opts));
    }
}

fn parse_args() -> Options {
    let mut full = false;
    let mut quick = false;
    let mut out_dir = None;
    let mut experiments = BTreeSet::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--quick" => quick = true,
            "--out" => {
                out_dir = args.next().map(PathBuf::from);
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--full] [--quick] [--out DIR] \
                     [all|table5|table6|table7|table8|fig10|fig11|fig12|fig13|fig14|relations|\
                     threads|probes|serve|serve_pipeline|snapshot|mutate|build|shard|memory]..."
                );
                std::process::exit(0);
            }
            other => {
                experiments.insert(other.to_string());
            }
        }
    }
    Options {
        full,
        quick,
        out_dir,
        experiments,
    }
}

fn emit(opts: &Options, name: &str, table: (String, ResultTable)) {
    let (title, table) = table;
    println!("\n=== {name}: {title} ===");
    print!("{}", table.render());
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
        let path = dir.join(format!("{name}.csv"));
        table.write_csv(&path).expect("write CSV");
        println!("[written to {}]", path.display());
    }
}

/// Table V — simulated user study.
fn table5() -> (String, ResultTable) {
    let outcome = run_survey(SurveyConfig::default());
    let mut t = ResultTable::new(&[
        "skyline",
        "top-k",
        "eclipse-ratio",
        "eclipse-weight",
        "eclipse-category",
    ]);
    t.push_row(
        SurveySystem::all()
            .into_iter()
            .map(|s| outcome.count(s).to_string())
            .collect(),
    );
    (
        "Results of case study (simulated respondents)".to_string(),
        t,
    )
}

/// The INDE repetition datasets for Tables VI–VIII: one dataset per
/// repetition seed.  Generated once per (n, d) and shared across every ratio
/// range that probes them — regenerating the identical datasets inside each
/// sweep pass was pure waste.
fn inde_rep_datasets(n: usize, d: usize, repetitions: u64) -> Vec<Vec<eclipse_core::Point>> {
    (0..repetitions)
        .map(|rep| SyntheticConfig::new(n, d, Distribution::Independent, SEED + rep).generate())
        .collect()
}

/// Average number of eclipse points over pre-generated INDE datasets.
fn average_eclipse_count(
    datasets: &[Vec<eclipse_core::Point>],
    d: usize,
    ratio: (f64, f64),
) -> f64 {
    let b = ratio_box(d, ratio.0, ratio.1);
    let total: usize = datasets
        .iter()
        .map(|pts| {
            eclipse_transform(pts, &b, SkylineBackend::Auto)
                .expect("valid workload")
                .len()
        })
        .sum();
    total as f64 / datasets.len() as f64
}

/// Table VI — expected number of eclipse points vs n.
fn table6(opts: &Options) -> (String, ResultTable) {
    let ns: Vec<usize> = if opts.full {
        PAPER_N_VALUES.to_vec()
    } else {
        DEFAULT_N_VALUES.to_vec()
    };
    let mut t = ResultTable::new(&["n", "eclipse_points"]);
    for n in ns {
        let datasets = inde_rep_datasets(n, DEFAULT_D, 5);
        let avg = average_eclipse_count(&datasets, DEFAULT_D, (0.36, 2.75));
        t.push_row(vec![
            format!("2^{}", n.trailing_zeros()),
            format!("{avg:.2}"),
        ]);
    }
    (
        "Expected number of eclipse points vs. n (INDE, d = 3, r ∈ [0.36, 2.75])".to_string(),
        t,
    )
}

/// Table VII — expected number of eclipse points vs d.
fn table7() -> (String, ResultTable) {
    let mut t = ResultTable::new(&["d", "eclipse_points"]);
    for d in PAPER_D_VALUES {
        let datasets = inde_rep_datasets(DEFAULT_N, d, 5);
        let avg = average_eclipse_count(&datasets, d, (0.36, 2.75));
        t.push_row(vec![d.to_string(), format!("{avg:.2}")]);
    }
    (
        "Expected number of eclipse points vs. d (INDE, n = 2^10, r ∈ [0.36, 2.75])".to_string(),
        t,
    )
}

/// Table VIII — expected number of eclipse points vs ratio range.  The five
/// repetition datasets are identical for every range, so they are generated
/// once up front instead of once per range.
fn table8() -> (String, ResultTable) {
    let datasets = inde_rep_datasets(DEFAULT_N, DEFAULT_D, 5);
    let mut t = ResultTable::new(&["r", "eclipse_points"]);
    for (lo, hi) in PAPER_RATIO_RANGES {
        let avg = average_eclipse_count(&datasets, DEFAULT_D, (lo, hi));
        t.push_row(vec![format!("[{lo},{hi}]"), format!("{avg:.2}")]);
    }
    (
        "Expected number of eclipse points vs. r (INDE, n = 2^10, d = 3)".to_string(),
        t,
    )
}

/// Figure 10 — query time of the four algorithms vs n on CORR/INDE/ANTI/NBA.
fn fig10(opts: &Options) -> Vec<(String, (String, ResultTable))> {
    let ns: Vec<usize> = if opts.full {
        PAPER_N_VALUES.to_vec()
    } else {
        DEFAULT_N_VALUES.to_vec()
    };
    let nba_ns: Vec<usize> = vec![500, 1000, 1500, 2000, 2384];
    let mut out = Vec::new();
    for family in DatasetFamily::all() {
        let mut t = ResultTable::new(&["n", "BASE", "TRAN", "QUAD", "CUTTING"]);
        let sweep: &[usize] = if family == DatasetFamily::Nba {
            &nba_ns
        } else {
            &ns
        };
        for &n in sweep {
            let pts = family.generate(n, DEFAULT_D, SEED);
            let b = default_ratio_box(DEFAULT_D);
            let mut row = vec![n.to_string()];
            for c in Competitor::all() {
                // ANTI skylines explode; keep the quadratic baseline affordable
                // by skipping the largest anti-correlated settings outside
                // --full runs.
                if !opts.full
                    && c == Competitor::Base
                    && family == DatasetFamily::Anti
                    && n > (1 << 12)
                {
                    row.push("-".to_string());
                    continue;
                }
                let m = run_competitor_repeated(c, &pts, &b, 3);
                row.push(format_secs(m.query_secs));
            }
            t.push_row(row);
        }
        out.push((
            format!("fig10_{}", family.label().to_lowercase()),
            (
                format!(
                    "Fig. 10 — query time vs n, {} (d = 3, r ∈ [0.36, 2.75])",
                    family.label()
                ),
                t,
            ),
        ));
    }
    out
}

/// Figure 11 — query time vs d.
fn fig11() -> Vec<(String, (String, ResultTable))> {
    let mut out = Vec::new();
    for family in DatasetFamily::all() {
        let n = if family == DatasetFamily::Nba {
            DEFAULT_NBA_N
        } else {
            DEFAULT_N
        };
        let mut t = ResultTable::new(&["d", "BASE", "TRAN", "QUAD", "CUTTING"]);
        for d in PAPER_D_VALUES {
            let pts = family.generate(n, d, SEED);
            let b = default_ratio_box(d);
            let mut row = vec![d.to_string()];
            for c in Competitor::all() {
                let m = run_competitor_repeated(c, &pts, &b, 3);
                row.push(format_secs(m.query_secs));
            }
            t.push_row(row);
        }
        out.push((
            format!("fig11_{}", family.label().to_lowercase()),
            (
                format!(
                    "Fig. 11 — query time vs d, {} (n = {n}, r ∈ [0.36, 2.75])",
                    family.label()
                ),
                t,
            ),
        ));
    }
    out
}

/// Figure 12 — query time of the index-based algorithms vs ratio range.
fn fig12() -> Vec<(String, (String, ResultTable))> {
    let mut out = Vec::new();
    for family in DatasetFamily::all() {
        let n = if family == DatasetFamily::Nba {
            DEFAULT_NBA_N
        } else {
            DEFAULT_N
        };
        let pts = family.generate(n, DEFAULT_D, SEED);
        let mut t = ResultTable::new(&["r", "QUAD", "CUTTING"]);
        for (lo, hi) in PAPER_RATIO_RANGES {
            let b = ratio_box(DEFAULT_D, lo, hi);
            let mut row = vec![format!("[{lo},{hi}]")];
            for c in Competitor::index_based() {
                let m = run_competitor_repeated(c, &pts, &b, 5);
                row.push(format_secs(m.query_secs));
            }
            t.push_row(row);
        }
        out.push((
            format!("fig12_{}", family.label().to_lowercase()),
            (
                format!(
                    "Fig. 12 — query time vs r, {} (n = {n}, d = 3)",
                    family.label()
                ),
                t,
            ),
        ));
    }
    out
}

/// Figure 13 — worst-case query time vs number of points, d = 3.
fn fig13(opts: &Options) -> (String, ResultTable) {
    let ns: Vec<usize> = if opts.full {
        vec![1 << 7, 1 << 8, 1 << 9, 1 << 10]
    } else {
        vec![1 << 7, 1 << 8, 1 << 9]
    };
    let mut t = ResultTable::new(&["n", "QUAD", "CUTTING"]);
    for n in ns {
        let pts = worst_case_dataset(n, 3, SEED);
        let b = default_ratio_box(3);
        let mut row = vec![n.to_string()];
        for c in Competitor::index_based() {
            let m = run_competitor_repeated(c, &pts, &b, 3);
            row.push(format_secs(m.query_secs));
        }
        t.push_row(row);
    }
    (
        "Fig. 13 — worst case, query time vs n (clustered data, d = 3)".to_string(),
        t,
    )
}

/// Figure 14 — worst-case query time vs dimensionality, n = 2^7.
fn fig14() -> (String, ResultTable) {
    let mut t = ResultTable::new(&["d", "QUAD", "CUTTING"]);
    for d in [3usize, 4, 5] {
        let pts = worst_case_dataset(1 << 7, d, SEED);
        let b = default_ratio_box(d);
        let mut row = vec![d.to_string()];
        for c in Competitor::index_based() {
            let m = run_competitor_repeated(c, &pts, &b, 3);
            row.push(format_secs(m.query_secs));
        }
        t.push_row(row);
    }
    (
        "Fig. 14 — worst case, query time vs d (clustered data, n = 2^7)".to_string(),
        t,
    )
}

/// Thread sweep over the parallel execution substrate: serial vs parallel
/// BNL/SFS/DC skyline executors plus end-to-end TRAN, on a 4-dimensional
/// INDE workload (not a figure of the paper — it backs the eclipse-exec
/// crate and the ROADMAP's heavy-traffic north star).
fn threads_sweep(opts: &Options) -> (String, ResultTable) {
    let n = if opts.full { 1 << 17 } else { 1 << 13 };
    let d = 4;
    let pts = DatasetFamily::Inde.generate(n, d, SEED);
    let b = default_ratio_box(d);
    let mut t = ResultTable::new(&["threads", "BNL", "SFS", "DC", "TRAN"]);
    for threads in [1usize, 2, 4, 8] {
        let mut row = vec![threads.to_string()];
        for exec in skyline_executors(threads) {
            let m = run_skyline_executor(exec.as_ref(), &pts, 3);
            row.push(format_secs(m.query_secs));
        }
        let m = run_tran_at_threads(&pts, &b, threads, 3);
        row.push(format_secs(m.query_secs));
        t.push_row(row);
    }
    (
        format!("Thread sweep — skyline executors and TRAN (INDE, n = {n}, d = {d})"),
        t,
    )
}

/// Frozen single-probe latencies of the pre-arena (boxed-node, per-query
/// allocating) intersection indexes, measured at the PR-3 cut (commit
/// ed11cde) on the development container with the exact workloads below (200
/// tree probes / 100 ratio probes, same seeds, minimum over 8 passes).
/// BENCH_pr3.json records the speedup of the current hot path over this
/// baseline so the perf trajectory stays visible across PRs.
const PRE_ARENA_TREE_PROBE_SECS: [(&str, &str, usize, f64); 12] = [
    ("uniform", "QUAD", 10_000, 1.266_31e-4),
    ("uniform", "QUAD", 100_000, 1.436_506e-3),
    ("uniform", "CUTTING", 10_000, 1.810_75e-4),
    ("uniform", "CUTTING", 100_000, 1.663_942e-3),
    ("clustered", "QUAD", 10_000, 1.290_81e-4),
    ("clustered", "QUAD", 100_000, 1.356_305e-3),
    ("clustered", "CUTTING", 10_000, 1.862_82e-4),
    ("clustered", "CUTTING", 100_000, 1.970_606e-3),
    ("anti", "QUAD", 10_000, 1.015_47e-4),
    ("anti", "QUAD", 100_000, 1.181_820e-3),
    ("anti", "CUTTING", 10_000, 1.373_31e-4),
    ("anti", "CUTTING", 100_000, 1.410_911e-3),
];

/// Pre-arena end-to-end `EclipseIndex` single-probe latencies (INDE, d = 3).
const PRE_ARENA_INDEX_PROBE_SECS: [(&str, usize, f64); 4] = [
    ("QUAD", 1 << 13, 1.321_3e-5),
    ("QUAD", 1 << 17, 7.420_1e-5),
    ("CUTTING", 1 << 13, 1.403_9e-5),
    ("CUTTING", 1 << 17, 8.137_6e-5),
];

fn kind_label(kind: IntersectionIndexKind) -> &'static str {
    match kind {
        IntersectionIndexKind::Quadtree => "QUAD",
        IntersectionIndexKind::CuttingTree => "CUTTING",
    }
}

/// Intersection-index probe sweep: tree-level single probes (the arena hot
/// path) and end-to-end single vs batched `EclipseIndex` probes.  Writes the
/// machine-readable BENCH_pr3.json next to the CSVs (or into the current
/// directory without `--out`), including the frozen pre-arena baseline and
/// the measured speedups.
fn probes_sweep(opts: &Options) -> Vec<(String, (String, ResultTable))> {
    let sizes: &[usize] = if opts.quick {
        &[10_000]
    } else {
        &[10_000, 100_000]
    };
    let reps = if opts.quick { 2 } else { 8 };
    let mut json = String::from("{\n  \"pr\": 3,\n");
    json.push_str(&format!("  \"quick\": {},\n", opts.quick));

    // Tree level: the same probe set the pre-arena baseline was measured on.
    let tree_probes = probe_boxes(200, 2, 0.05, SEED + 1);
    let mut tree_table = ResultTable::new(&[
        "family",
        "n",
        "tree",
        "build_s",
        "probe_s",
        "pre_probe_s",
        "speedup",
        "hits",
        "nodes",
        "depth",
    ]);
    json.push_str("  \"tree_probes\": [\n");
    let mut first = true;
    for family in HyperplaneFamily::all() {
        for &n in sizes {
            let planes = hyperplane_workload(family, n, 2, SEED);
            for kind in [
                IntersectionIndexKind::Quadtree,
                IntersectionIndexKind::CuttingTree,
            ] {
                let m = run_tree_probes(kind, &planes, probe_root_cell(2), &tree_probes, reps);
                let pre = PRE_ARENA_TREE_PROBE_SECS
                    .iter()
                    .find(|(f, t, pn, _)| {
                        *f == family.label() && *t == kind_label(kind) && *pn == n
                    })
                    .map(|(_, _, _, secs)| *secs);
                let speedup = pre.map(|p| p / m.probe_secs);
                tree_table.push_row(vec![
                    family.label().to_string(),
                    n.to_string(),
                    kind_label(kind).to_string(),
                    format_secs(m.build_secs),
                    format_secs(m.probe_secs),
                    pre.map_or("-".to_string(), format_secs),
                    speedup.map_or("-".to_string(), |s| format!("{s:.2}x")),
                    format!("{:.1}", m.mean_hits),
                    m.nodes.to_string(),
                    m.depth.to_string(),
                ]);
                if !first {
                    json.push_str(",\n");
                }
                first = false;
                json.push_str(&format!(
                    "    {{\"family\": \"{}\", \"n\": {}, \"tree\": \"{}\", \
                     \"build_secs\": {:.6}, \"probe_secs\": {:.9}, \
                     \"pre_arena_probe_secs\": {}, \"speedup\": {}, \"mean_hits\": {:.1}, \
                     \"nodes\": {}, \"depth\": {}}}",
                    family.label(),
                    n,
                    kind_label(kind),
                    m.build_secs,
                    m.probe_secs,
                    pre.map_or("null".to_string(), |p| format!("{p:.9}")),
                    speedup.map_or("null".to_string(), |s| format!("{s:.3}")),
                    m.mean_hits,
                    m.nodes,
                    m.depth,
                ));
            }
        }
    }
    json.push_str("\n  ],\n");

    // End-to-end index probes on INDE (bounded skyline): single vs batched.
    let index_ns: &[usize] = if opts.quick {
        &[1 << 13]
    } else {
        &[1 << 13, 1 << 17]
    };
    let ratio_probes = probe_ratio_boxes(100, 3, SEED + 2);
    let mut index_table = ResultTable::new(&[
        "n",
        "index",
        "u",
        "pairs",
        "build_s",
        "probe_s",
        "batch1_s",
        "batch4_s",
        "pre_probe_s",
        "speedup",
    ]);
    json.push_str("  \"index_probes\": [\n");
    first = true;
    for &n in index_ns {
        let pts = DatasetFamily::Inde.generate(n, 3, SEED);
        for kind in [
            IntersectionIndexKind::Quadtree,
            IntersectionIndexKind::CuttingTree,
        ] {
            let build_start = std::time::Instant::now();
            let index =
                EclipseIndex::build(&pts, IndexConfig::with_kind(kind)).expect("valid workload");
            let build_secs = build_start.elapsed().as_secs_f64();
            let single = run_index_probes(&index, &ratio_probes, reps);
            let batch1 = run_index_probes_batched(
                &index,
                &ratio_probes,
                &ExecutionContext::with_threads(1),
                reps,
            );
            let batch4 = run_index_probes_batched(
                &index,
                &ratio_probes,
                &ExecutionContext::with_threads(4),
                reps,
            );
            let pre = PRE_ARENA_INDEX_PROBE_SECS
                .iter()
                .find(|(t, pn, _)| *t == kind_label(kind) && *pn == n)
                .map(|(_, _, secs)| *secs);
            let speedup = pre.map(|p| p / single.query_secs);
            index_table.push_row(vec![
                n.to_string(),
                kind_label(kind).to_string(),
                index.skyline_len().to_string(),
                index.num_intersections().to_string(),
                format_secs(build_secs),
                format_secs(single.query_secs),
                format_secs(batch1.query_secs),
                format_secs(batch4.query_secs),
                pre.map_or("-".to_string(), format_secs),
                speedup.map_or("-".to_string(), |s| format!("{s:.2}x")),
            ]);
            if !first {
                json.push_str(",\n");
            }
            first = false;
            json.push_str(&format!(
                "    {{\"dataset\": \"INDE\", \"n\": {}, \"index\": \"{}\", \"u\": {}, \
                 \"pairs\": {}, \"build_secs\": {:.6}, \"probe_secs\": {:.9}, \
                 \"batch_probe_secs_t1\": {:.9}, \"batch_probe_secs_t4\": {:.9}, \
                 \"pre_arena_probe_secs\": {}, \"speedup\": {}}}",
                n,
                kind_label(kind),
                index.skyline_len(),
                index.num_intersections(),
                build_secs,
                single.query_secs,
                batch1.query_secs,
                batch4.query_secs,
                pre.map_or("null".to_string(), |p| format!("{p:.9}")),
                speedup.map_or("null".to_string(), |s| format!("{s:.3}")),
            ));
        }
    }
    json.push_str("\n  ]\n}\n");

    let dir = opts.out_dir.clone().unwrap_or_default();
    if !dir.as_os_str().is_empty() {
        std::fs::create_dir_all(&dir).expect("create output directory");
    }
    let path = dir.join("BENCH_pr3.json");
    std::fs::write(&path, json).expect("write BENCH_pr3.json");
    println!("[probe sweep written to {}]", path.display());

    vec![
        (
            "probes_tree".to_string(),
            (
                "Intersection-index tree probes (200 boxes, side 5%, vs pre-arena baseline)"
                    .to_string(),
                tree_table,
            ),
        ),
        (
            "probes_index".to_string(),
            (
                "EclipseIndex probes — single vs batched (INDE, d = 3, 100 boxes)".to_string(),
                index_table,
            ),
        ),
    ]
}

/// Serving-layer throughput sweep: an in-process `eclipse-serve` server on
/// an ephemeral port, one INDE dataset warmed at registration, one blocking
/// client splitting a fixed probe set into batches of varying size.  Rows
/// report requests/s and probes/s for `QueryBatch` and probes/s for
/// `CountBatch` (minimum-latency pass over the repetitions, i.e. maximum
/// throughput).  Writes BENCH_serve.json next to the CSVs.
fn serve_sweep(opts: &Options) -> (String, ResultTable) {
    let n = if opts.quick { 1 << 12 } else { 1 << 14 };
    let num_probes = if opts.quick { 128usize } else { 512 };
    let reps = if opts.quick { 2 } else { 5 };
    let pts = DatasetFamily::Inde.generate(n, 3, SEED);
    let boxes = probe_ratio_boxes(num_probes, 3, SEED + 3);
    let mut t = ResultTable::new(&[
        "threads",
        "batch",
        "query_req_s",
        "query_probe_s",
        "count_probe_s",
    ]);
    let mut json = String::from("{\n  \"pr\": 4,\n");
    json.push_str(&format!("  \"quick\": {},\n", opts.quick));
    json.push_str(&format!(
        "  \"dataset\": {{\"family\": \"INDE\", \"n\": {n}, \"d\": 3, \"probes\": {num_probes}}},\n"
    ));
    json.push_str("  \"serve\": [\n");
    let mut first = true;
    for threads in [1usize, 4] {
        let server = Server::bind("127.0.0.1:0", ExecutionContext::with_threads(threads))
            .expect("bind ephemeral port");
        server
            .register_dataset("inde", pts.clone(), IndexKind::Quadtree)
            .expect("valid workload");
        let handle = server.spawn().expect("spawn server");
        let mut client = Client::connect(handle.addr()).expect("connect");
        for batch in [1usize, 16, 128] {
            let requests = num_probes.div_ceil(batch);
            let mut best_query = f64::INFINITY;
            let mut best_count = f64::INFINITY;
            for _ in 0..reps {
                let start = std::time::Instant::now();
                for chunk in boxes.chunks(batch) {
                    let results = client.query_batch("inde", chunk).expect("query batch");
                    assert_eq!(results.len(), chunk.len());
                }
                best_query = best_query.min(start.elapsed().as_secs_f64());
                let start = std::time::Instant::now();
                for chunk in boxes.chunks(batch) {
                    let counts = client.count_batch("inde", chunk).expect("count batch");
                    assert_eq!(counts.len(), chunk.len());
                }
                best_count = best_count.min(start.elapsed().as_secs_f64());
            }
            let query_req_s = requests as f64 / best_query;
            let query_probe_s = num_probes as f64 / best_query;
            let count_probe_s = num_probes as f64 / best_count;
            t.push_row(vec![
                threads.to_string(),
                batch.to_string(),
                format!("{query_req_s:.0}"),
                format!("{query_probe_s:.0}"),
                format!("{count_probe_s:.0}"),
            ]);
            if !first {
                json.push_str(",\n");
            }
            first = false;
            json.push_str(&format!(
                "    {{\"threads\": {threads}, \"batch\": {batch}, \"requests\": {requests}, \
                 \"query_requests_per_s\": {query_req_s:.1}, \
                 \"query_probes_per_s\": {query_probe_s:.1}, \
                 \"count_probes_per_s\": {count_probe_s:.1}}}"
            ));
        }
        handle.shutdown();
    }
    json.push_str("\n  ]\n}\n");
    let dir = opts.out_dir.clone().unwrap_or_default();
    if !dir.as_os_str().is_empty() {
        std::fs::create_dir_all(&dir).expect("create output directory");
    }
    let path = dir.join("BENCH_serve.json");
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    println!("[serve sweep written to {}]", path.display());
    (
        format!("Serving throughput — eclipse-serve over TCP (INDE, n = {n}, d = 3, {num_probes} probes)"),
        t,
    )
}

/// Pipeline-depth sweep over the protocol-v2 serving path: single-probe
/// requests (the per-request-overhead-dominated regime) through a
/// [`PipelinedClient`] at depth 1, 8 and 64, against the blocking depth-1
/// v1 client as the baseline.  Every pipelined pass is asserted identical
/// to the blocking client's results, so the speedup column is for the
/// *same* answers.  Writes BENCH_serve_pipeline.json next to the CSVs.
fn serve_pipeline_sweep(opts: &Options) -> (String, ResultTable) {
    let n = if opts.quick { 1 << 12 } else { 1 << 14 };
    let num_probes = if opts.quick { 256usize } else { 1024 };
    let reps = if opts.quick { 2 } else { 5 };
    let pts = DatasetFamily::Inde.generate(n, 3, SEED);
    let boxes = probe_ratio_boxes(num_probes, 3, SEED + 5);
    let mut t = ResultTable::new(&[
        "threads",
        "depth",
        "query_req_s",
        "count_req_s",
        "speedup_vs_blocking",
    ]);
    let mut json = String::from("{\n  \"pr\": 7,\n");
    json.push_str(&format!("  \"quick\": {},\n", opts.quick));
    json.push_str(&format!(
        "  \"dataset\": {{\"family\": \"INDE\", \"n\": {n}, \"d\": 3, \"probes\": {num_probes}}},\n"
    ));
    json.push_str("  \"serve_pipeline\": [\n");
    let mut first = true;
    for threads in [1usize, 4] {
        let server = Server::bind("127.0.0.1:0", ExecutionContext::with_threads(threads))
            .expect("bind ephemeral port");
        server
            .register_dataset("inde", pts.clone(), IndexKind::Quadtree)
            .expect("valid workload");
        let handle = server.spawn().expect("spawn server");

        // Blocking baseline: one single-probe request per box, depth 1, v1.
        let mut blocking = Client::connect(handle.addr()).expect("connect");
        let mut expected_rows = Vec::with_capacity(num_probes);
        let mut expected_counts = Vec::with_capacity(num_probes);
        for b in &boxes {
            expected_rows.extend(
                blocking
                    .query_batch("inde", std::slice::from_ref(b))
                    .expect("query"),
            );
            expected_counts.extend(
                blocking
                    .count_batch("inde", std::slice::from_ref(b))
                    .expect("count"),
            );
        }
        let mut blocking_query = f64::INFINITY;
        let mut blocking_count = f64::INFINITY;
        for _ in 0..reps {
            let start = std::time::Instant::now();
            for b in &boxes {
                blocking
                    .query_batch("inde", std::slice::from_ref(b))
                    .expect("query");
            }
            blocking_query = blocking_query.min(start.elapsed().as_secs_f64());
            let start = std::time::Instant::now();
            for b in &boxes {
                blocking
                    .count_batch("inde", std::slice::from_ref(b))
                    .expect("count");
            }
            blocking_count = blocking_count.min(start.elapsed().as_secs_f64());
        }
        let base_query_req_s = num_probes as f64 / blocking_query;
        let base_count_req_s = num_probes as f64 / blocking_count;
        t.push_row(vec![
            threads.to_string(),
            "blocking".to_string(),
            format!("{base_query_req_s:.0}"),
            format!("{base_count_req_s:.0}"),
            "1.000".to_string(),
        ]);
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str(&format!(
            "    {{\"threads\": {threads}, \"mode\": \"blocking\", \"depth\": 1, \
             \"query_requests_per_s\": {base_query_req_s:.1}, \
             \"count_requests_per_s\": {base_count_req_s:.1}, \"speedup_query\": 1.0}}"
        ));

        for depth in [1u32, 8, 64] {
            let mut piped =
                PipelinedClient::connect(handle.addr(), depth).expect("handshake connect");
            // Correctness first: pipelined answers must equal blocking ones.
            assert_eq!(
                piped.query_many("inde", &boxes, 1).expect("query_many"),
                expected_rows,
                "pipelined depth {depth} diverged from blocking queries"
            );
            assert_eq!(
                piped.count_many("inde", &boxes, 1).expect("count_many"),
                expected_counts,
                "pipelined depth {depth} diverged from blocking counts"
            );
            let mut best_query = f64::INFINITY;
            let mut best_count = f64::INFINITY;
            for _ in 0..reps {
                let start = std::time::Instant::now();
                piped.query_many("inde", &boxes, 1).expect("query_many");
                best_query = best_query.min(start.elapsed().as_secs_f64());
                let start = std::time::Instant::now();
                piped.count_many("inde", &boxes, 1).expect("count_many");
                best_count = best_count.min(start.elapsed().as_secs_f64());
            }
            let query_req_s = num_probes as f64 / best_query;
            let count_req_s = num_probes as f64 / best_count;
            let speedup = query_req_s / base_query_req_s;
            t.push_row(vec![
                threads.to_string(),
                depth.to_string(),
                format!("{query_req_s:.0}"),
                format!("{count_req_s:.0}"),
                format!("{speedup:.3}"),
            ]);
            json.push_str(&format!(
                ",\n    {{\"threads\": {threads}, \"mode\": \"pipelined\", \"depth\": {depth}, \
                 \"query_requests_per_s\": {query_req_s:.1}, \
                 \"count_requests_per_s\": {count_req_s:.1}, \
                 \"speedup_query\": {speedup:.3}}}"
            ));
        }
        handle.shutdown();
    }
    json.push_str("\n  ]\n}\n");
    let dir = opts.out_dir.clone().unwrap_or_default();
    if !dir.as_os_str().is_empty() {
        std::fs::create_dir_all(&dir).expect("create output directory");
    }
    let path = dir.join("BENCH_serve_pipeline.json");
    std::fs::write(&path, json).expect("write BENCH_serve_pipeline.json");
    println!("[serve pipeline sweep written to {}]", path.display());
    (
        format!(
            "Serving throughput vs pipeline depth — protocol v2, single-probe requests \
             (INDE, n = {n}, d = 3, {num_probes} probes)"
        ),
        t,
    )
}

/// Snapshot cold-start sweep: full index rebuild (skyline, hyperplane slab
/// and tree construction via `EclipseIndex::build`) vs snapshot restore
/// (`EclipseEngine::from_snapshot`, which additionally decodes and validates
/// the whole dataset) at growing n, for both backends.  The restored engine
/// is asserted query-identical to the rebuilt one on every pass.  Writes
/// BENCH_snapshot.json next to the CSVs (or into the current directory
/// without `--out`).
/// Incremental mutation vs full rebuild: applies an interleaved
/// insert/delete schedule to a warm engine, timing each op, and compares
/// per-op latency against rebuilding the engine (skyline + pairs + arena)
/// from the mutated dataset.  Representative maintenance ops (dominated
/// inserts, non-skyline deletes) and forced worst-case ops (skyline-entering
/// inserts, skyline-member deletes, which rebuild the arena from the
/// maintained skyline) are timed separately.  Every pass asserts the
/// maintained engine is *exactly* the rebuilt one — identical probe answers
/// and byte-identical index snapshots — and that at n = 100k the
/// representative incremental path is at least 10x faster than the rebuild
/// it replaces.
fn mutate_sweep(opts: &Options) -> (String, ResultTable) {
    let ns: &[usize] = if opts.quick {
        &[1 << 13, 100_000]
    } else {
        &[1 << 13, 1 << 15, 100_000]
    };
    let ops = if opts.quick { 24 } else { 64 };
    let reps = if opts.quick { 2 } else { 3 };
    let boxes = probe_ratio_boxes(32, 3, SEED + 4);
    let opts_q = eclipse_core::exec::QueryOptions::default();
    let mut t = ResultTable::new(&[
        "n",
        "index",
        "ops",
        "incr_op_s",
        "worst_op_s",
        "rebuild_s",
        "speedup",
        "sky_ins",
        "dom_ins",
        "sky_del",
        "plain_del",
        "identical",
    ]);
    let mut json = String::from("{\n  \"pr\": 9,\n");
    json.push_str(&format!("  \"quick\": {},\n", opts.quick));
    json.push_str("  \"dataset\": {\"family\": \"INDE\", \"d\": 3},\n");
    json.push_str("  \"mutate\": [\n");
    let mut first = true;
    for &n in ns {
        let pts = DatasetFamily::Inde.generate(n, 3, SEED);
        let inserts = DatasetFamily::Inde.generate(ops, 3, SEED + 9);
        for kind in [
            IntersectionIndexKind::Quadtree,
            IntersectionIndexKind::CuttingTree,
        ] {
            let cfg = IndexConfig::with_kind(kind);
            let engine = eclipse_core::EclipseEngine::with_index_config(pts.clone(), cfg)
                .expect("valid workload");
            engine.build_index(kind).expect("warm index");
            // Interleaved schedule: even slots insert a fresh INDE point,
            // odd slots delete a pseudo-random id (xorshift, deterministic).
            let mut mirror = pts.clone();
            let mut rng_state = SEED | 1;
            let mut incr_total = 0.0f64;
            let mut incr_count = 0usize;
            let mut worst_total = 0.0f64;
            let mut worst_count = 0usize;
            let mut outcomes = [0usize; 4];
            for (i, p) in inserts.iter().enumerate() {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                // Most ops take the cheap maintenance paths (dominated
                // insert, non-skyline delete); every 8th pair is forced
                // onto the expensive ones — a near-origin insert that enters
                // the skyline, and a delete of a current skyline member —
                // timed into the separate `worst_op_s` column (they rebuild
                // the arena from the maintained skyline, so they land
                // between the cheap paths and a full rebuild).
                let p = if i % 8 == 0 {
                    eclipse_core::Point::new(p.coords().iter().map(|c| c * 0.05).collect())
                } else {
                    p.clone()
                };
                let id = if i % 8 == 1 {
                    let sky = engine.skyline();
                    sky[(rng_state as usize) % sky.len()]
                } else {
                    (rng_state as usize) % mirror.len()
                };
                let start = std::time::Instant::now();
                let summary = if i % 2 == 0 {
                    engine.insert(p.clone()).expect("insert")
                } else {
                    engine.delete(id).expect("delete")
                };
                let elapsed = start.elapsed().as_secs_f64();
                if i % 8 < 2 {
                    worst_total += elapsed;
                    worst_count += 1;
                } else {
                    incr_total += elapsed;
                    incr_count += 1;
                }
                use eclipse_core::MutationOutcome::*;
                match summary.outcome {
                    InsertedSkyline => outcomes[0] += 1,
                    InsertedDominated => outcomes[1] += 1,
                    DeletedSkyline => outcomes[2] += 1,
                    DeletedNonSkyline => outcomes[3] += 1,
                }
                if i % 2 == 0 {
                    mirror.push(p.clone());
                } else {
                    mirror.remove(id);
                }
            }
            let incr_op_secs = incr_total / incr_count as f64;
            let worst_op_secs = worst_total / worst_count as f64;
            assert_eq!(engine.epoch(), ops as u64, "every mutation bumps the epoch");
            assert_eq!(engine.len(), mirror.len());
            // Full rebuild over the mutated dataset: what the incremental
            // path replaces (skyline recompute included).
            let mut rebuild_secs = f64::INFINITY;
            let mut rebuilt = None;
            for _ in 0..reps {
                let start = std::time::Instant::now();
                let fresh = eclipse_core::EclipseEngine::with_index_config(mirror.clone(), cfg)
                    .expect("valid workload");
                fresh.build_index(kind).expect("rebuild index");
                rebuild_secs = rebuild_secs.min(start.elapsed().as_secs_f64());
                rebuilt = Some(fresh);
            }
            let rebuilt = rebuilt.expect("at least one rebuild pass");
            // The acceptance gate, every pass: the maintained engine *is*
            // the rebuilt engine — same answers, same arena bytes.
            assert_eq!(
                engine.eclipse_query_batch(&boxes, &opts_q).expect("probes"),
                rebuilt
                    .eclipse_query_batch(&boxes, &opts_q)
                    .expect("rebuilt probes"),
                "mutated engine must be query-identical to a rebuild (n = {n}, {kind:?})"
            );
            assert_eq!(
                engine
                    .build_index(kind)
                    .expect("maintained index")
                    .encode_snapshot(),
                rebuilt
                    .build_index(kind)
                    .expect("rebuilt index")
                    .encode_snapshot(),
                "maintained arena must be byte-identical to a rebuild (n = {n}, {kind:?})"
            );
            let speedup = rebuild_secs / incr_op_secs;
            if n == 100_000 {
                assert!(
                    speedup >= 10.0,
                    "incremental mutation must beat a full rebuild 10x at n = 100k \
                     ({kind:?}: {incr_op_secs:.6}s/op vs {rebuild_secs:.6}s rebuild)"
                );
            }
            t.push_row(vec![
                n.to_string(),
                kind_label(kind).to_string(),
                ops.to_string(),
                format_secs(incr_op_secs),
                format_secs(worst_op_secs),
                format_secs(rebuild_secs),
                format!("{speedup:.1}x"),
                outcomes[0].to_string(),
                outcomes[1].to_string(),
                outcomes[2].to_string(),
                outcomes[3].to_string(),
                "yes".to_string(),
            ]);
            if !first {
                json.push_str(",\n");
            }
            first = false;
            json.push_str(&format!(
                "    {{\"n\": {}, \"index\": \"{}\", \"ops\": {}, \
                 \"incr_op_secs\": {:.9}, \"worst_op_secs\": {:.9}, \
                 \"rebuild_secs\": {:.6}, \"speedup_vs_rebuild\": {:.2}, \
                 \"inserted_skyline\": {}, \"inserted_dominated\": {}, \
                 \"deleted_skyline\": {}, \"deleted_non_skyline\": {}, \
                 \"identical_to_rebuild\": true}}",
                n,
                kind_label(kind),
                ops,
                incr_op_secs,
                worst_op_secs,
                rebuild_secs,
                speedup,
                outcomes[0],
                outcomes[1],
                outcomes[2],
                outcomes[3],
            ));
        }
    }
    json.push_str("\n  ]\n}\n");
    let dir = opts.out_dir.clone().unwrap_or_default();
    if !dir.as_os_str().is_empty() {
        std::fs::create_dir_all(&dir).expect("create output directory");
    }
    let path = dir.join("BENCH_mutate.json");
    std::fs::write(&path, json).expect("write BENCH_mutate.json");
    println!("[mutate sweep written to {}]", path.display());
    (
        "Incremental insert/delete vs full rebuild (INDE, d = 3, identity asserted)".to_string(),
        t,
    )
}

fn snapshot_sweep(opts: &Options) -> (String, ResultTable) {
    let ns: &[usize] = if opts.quick {
        &[1 << 13, 100_000]
    } else {
        &[1 << 13, 1 << 15, 100_000]
    };
    let reps = if opts.quick { 3 } else { 5 };
    let boxes = probe_ratio_boxes(32, 3, SEED + 4);
    let mut t = ResultTable::new(&[
        "n",
        "index",
        "u",
        "pairs",
        "rebuild_s",
        "save_s",
        "load_s",
        "bytes",
        "speedup",
    ]);
    let mut json = String::from("{\n  \"pr\": 5,\n");
    json.push_str(&format!("  \"quick\": {},\n", opts.quick));
    json.push_str("  \"dataset\": {\"family\": \"INDE\", \"d\": 3},\n");
    json.push_str("  \"snapshot\": [\n");
    let mut first = true;
    for &n in ns {
        let pts = DatasetFamily::Inde.generate(n, 3, SEED);
        for kind in [
            IntersectionIndexKind::Quadtree,
            IntersectionIndexKind::CuttingTree,
        ] {
            let cfg = IndexConfig::with_kind(kind);
            let mut rebuild_secs = f64::INFINITY;
            for _ in 0..reps {
                let start = std::time::Instant::now();
                let idx = EclipseIndex::build(&pts, cfg).expect("valid workload");
                rebuild_secs = rebuild_secs.min(start.elapsed().as_secs_f64());
                std::hint::black_box(&idx);
            }
            let engine = eclipse_core::EclipseEngine::with_index_config(pts.clone(), cfg)
                .expect("valid workload");
            let mut save_secs = f64::INFINITY;
            let mut bytes = Vec::new();
            for _ in 0..reps {
                let start = std::time::Instant::now();
                bytes = engine
                    .save_snapshot("inde", kind)
                    .expect("snapshot encodes");
                save_secs = save_secs.min(start.elapsed().as_secs_f64());
            }
            let mut load_secs = f64::INFINITY;
            let mut restored = None;
            for _ in 0..reps {
                let start = std::time::Instant::now();
                let (_, cold) =
                    eclipse_core::EclipseEngine::from_snapshot(&bytes).expect("snapshot decodes");
                load_secs = load_secs.min(start.elapsed().as_secs_f64());
                restored = Some(cold);
            }
            let restored = restored.expect("at least one load pass");
            // The acceptance gate: a restored index answers identically.
            let opts_q = eclipse_core::exec::QueryOptions::default();
            assert_eq!(
                restored
                    .eclipse_query_batch(&boxes, &opts_q)
                    .expect("restored probes"),
                engine.eclipse_query_batch(&boxes, &opts_q).expect("probes"),
                "restored index must be query-identical (n = {n}, {kind:?})"
            );
            let index = engine.build_index(kind).expect("cached index");
            let speedup = rebuild_secs / load_secs;
            t.push_row(vec![
                n.to_string(),
                kind_label(kind).to_string(),
                index.skyline_len().to_string(),
                index.num_intersections().to_string(),
                format_secs(rebuild_secs),
                format_secs(save_secs),
                format_secs(load_secs),
                bytes.len().to_string(),
                format!("{speedup:.1}x"),
            ]);
            if !first {
                json.push_str(",\n");
            }
            first = false;
            json.push_str(&format!(
                "    {{\"n\": {}, \"index\": \"{}\", \"u\": {}, \"pairs\": {}, \
                 \"rebuild_secs\": {:.6}, \"save_secs\": {:.6}, \"load_secs\": {:.6}, \
                 \"snapshot_bytes\": {}, \"load_speedup_over_rebuild\": {:.2}}}",
                n,
                kind_label(kind),
                index.skyline_len(),
                index.num_intersections(),
                rebuild_secs,
                save_secs,
                load_secs,
                bytes.len(),
                speedup,
            ));
        }
    }
    json.push_str("\n  ]\n}\n");
    let dir = opts.out_dir.clone().unwrap_or_default();
    if !dir.as_os_str().is_empty() {
        std::fs::create_dir_all(&dir).expect("create output directory");
    }
    let path = dir.join("BENCH_snapshot.json");
    std::fs::write(&path, json).expect("write BENCH_snapshot.json");
    println!("[snapshot sweep written to {}]", path.display());
    (
        "Snapshot cold start — restore vs full index rebuild (INDE, d = 3)".to_string(),
        t,
    )
}

/// Frozen serial tree construction times at the PR-3 cut (same container,
/// same workloads, legacy midpoint/sampled-crossings split rules — the only
/// rules that existed then), from the committed BENCH_pr3.json.  The build
/// sweep reports the current construction time against these.
const PRE_PARALLEL_BUILD_SECS: [(&str, &str, usize, f64); 8] = [
    ("uniform", "QUAD", 10_000, 0.137_486),
    ("uniform", "QUAD", 100_000, 0.337_150),
    ("uniform", "CUTTING", 10_000, 0.172_157),
    ("uniform", "CUTTING", 100_000, 0.120_884),
    ("clustered", "QUAD", 10_000, 0.146_526),
    ("clustered", "QUAD", 100_000, 0.319_927),
    ("clustered", "CUTTING", 10_000, 0.152_482),
    ("clustered", "CUTTING", 100_000, 0.124_445),
];

/// Construction sweep for the arena intersection indexes: serial vs
/// pool-parallel builds (asserted byte-identical via the snapshot encoding)
/// and legacy vs adaptive split/cut rules, on the uniform and clustered
/// hyperplane workloads.  The workload for each (family, n) is generated
/// once and shared across every tree/thread/repetition pass.  Writes
/// BENCH_build.json next to the CSVs (or into the current directory without
/// `--out`).
fn build_sweep(opts: &Options) -> Vec<(String, (String, ResultTable))> {
    let sizes: &[usize] = if opts.quick {
        &[10_000]
    } else {
        &[10_000, 100_000]
    };
    let reps = if opts.quick { 2 } else { 5 };
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());

    enum Tree {
        Quad(HyperplaneQuadtree),
        Cutting(CuttingTree),
    }
    impl Tree {
        fn encode(&self) -> Vec<u8> {
            let mut bytes = Vec::new();
            match self {
                Tree::Quad(t) => t.encode_into(&mut bytes),
                Tree::Cutting(t) => t.encode_into(&mut bytes),
            }
            bytes
        }
    }
    // Minimum wall-clock over `reps` full builds (slab + tree) on `pool`,
    // plus the snapshot bytes of the last build for the identity check.
    let timed_build = |kind: IntersectionIndexKind,
                       planes: &[eclipse_geom::hyperplane::Hyperplane],
                       pool: &ThreadPool,
                       reps: usize|
     -> (f64, Vec<u8>) {
        let cell = probe_root_cell(2);
        let mut best = f64::INFINITY;
        let mut tree = None;
        for _ in 0..reps {
            let start = std::time::Instant::now();
            let built = match kind {
                IntersectionIndexKind::Quadtree => {
                    Tree::Quad(HyperplaneQuadtree::build_from_slab_with(
                        HyperplaneSlab::from_hyperplanes(planes),
                        cell.clone(),
                        QuadtreeConfig::default(),
                        Some(pool),
                    ))
                }
                IntersectionIndexKind::CuttingTree => {
                    Tree::Cutting(CuttingTree::build_from_slab_with(
                        HyperplaneSlab::from_hyperplanes(planes),
                        cell.clone(),
                        CuttingTreeConfig::default(),
                        Some(pool),
                    ))
                }
            };
            best = best.min(start.elapsed().as_secs_f64());
            tree = Some(built);
        }
        (best, tree.expect("at least one build pass").encode())
    };

    let mut build_table = ResultTable::new(&[
        "family",
        "n",
        "tree",
        "build_t1_s",
        "build_t4_s",
        "t4_identical",
        "pr3_build_s",
        "speedup_vs_pr3",
    ]);
    let mut probe_table = ResultTable::new(&[
        "family",
        "n",
        "tree",
        "rule",
        "probe_s",
        "depth",
        "nodes",
        "speedup_vs_pre_arena",
    ]);
    let mut json = String::from("{\n  \"pr\": 8,\n");
    json.push_str(&format!("  \"quick\": {},\n", opts.quick));
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str("  \"build\": [\n");
    let mut build_first = true;
    let mut probe_json = String::new();
    let mut probe_first = true;
    let tree_probes = probe_boxes(200, 2, 0.05, SEED + 1);
    let pool1 = ThreadPool::with_threads(1);
    let pool4 = ThreadPool::with_threads(4);

    for family in [HyperplaneFamily::Uniform, HyperplaneFamily::Clustered] {
        for &n in sizes {
            // Generated once, shared across both trees, both pools and every
            // repetition — the dataset is identical for all of them.
            let planes = hyperplane_workload(family, n, 2, SEED);
            for kind in [
                IntersectionIndexKind::Quadtree,
                IntersectionIndexKind::CuttingTree,
            ] {
                let (serial_secs, serial_bytes) = timed_build(kind, &planes, &pool1, reps);
                let (par_secs, par_bytes) = timed_build(kind, &planes, &pool4, reps);
                assert_eq!(
                    serial_bytes,
                    par_bytes,
                    "parallel build must be byte-identical ({} n={n} {:?})",
                    family.label(),
                    kind
                );
                let pre = PRE_PARALLEL_BUILD_SECS
                    .iter()
                    .find(|(f, t, pn, _)| {
                        *f == family.label() && *t == kind_label(kind) && *pn == n
                    })
                    .map(|(_, _, _, secs)| *secs);
                let speedup = pre.map(|p| p / serial_secs.min(par_secs));
                build_table.push_row(vec![
                    family.label().to_string(),
                    n.to_string(),
                    kind_label(kind).to_string(),
                    format_secs(serial_secs),
                    format_secs(par_secs),
                    "yes".to_string(),
                    pre.map_or("-".to_string(), format_secs),
                    speedup.map_or("-".to_string(), |s| format!("{s:.2}x")),
                ]);
                if !build_first {
                    json.push_str(",\n");
                }
                build_first = false;
                json.push_str(&format!(
                    "    {{\"family\": \"{}\", \"n\": {}, \"tree\": \"{}\", \
                     \"build_secs_t1\": {:.6}, \"build_secs_t4\": {:.6}, \
                     \"parallel_identical\": true, \"pr3_build_secs\": {}, \
                     \"speedup_vs_pr3\": {}}}",
                    family.label(),
                    n,
                    kind_label(kind),
                    serial_secs,
                    par_secs,
                    pre.map_or("null".to_string(), |p| format!("{p:.6}")),
                    speedup.map_or("null".to_string(), |s| format!("{s:.3}")),
                ));

                // Probe latency with the adaptive defaults vs the legacy
                // fixed rules, against the frozen pre-arena baseline.
                let legacy = run_tree_probes_configured(
                    kind,
                    &planes,
                    probe_root_cell(2),
                    &tree_probes,
                    reps,
                    QuadtreeConfig {
                        split: SplitRule::Midpoint,
                        ..QuadtreeConfig::default()
                    },
                    CuttingTreeConfig {
                        cut: CutRule::SampledCrossings,
                        ..CuttingTreeConfig::default()
                    },
                );
                let adaptive =
                    run_tree_probes(kind, &planes, probe_root_cell(2), &tree_probes, reps);
                // Regression guard for the clustered-QUAD pathology: census
                // medians landing on the cluster point used to duplicate
                // entries into every child, exhaust `max_entries` early, and
                // leave the adaptive arena shallower (fewer nodes) and
                // measurably slower to probe than the legacy midpoint rule.
                // The per-build midpoint fallback makes that impossible —
                // an adaptive quadtree can never end up more budget-starved
                // than the legacy one — so the node count must hold up, and
                // probe latency must stay within generous timing noise of
                // legacy (the pre-fix regression was ~10%; container timing
                // jitter is of the same order, hence the structural check
                // carries the guarantee and the timing check only catches
                // gross regressions).
                if kind == IntersectionIndexKind::Quadtree {
                    assert!(
                        adaptive.nodes >= legacy.nodes,
                        "adaptive quadtree is budget-starved vs legacy on {} n={}: \
                         {} nodes < {} nodes",
                        family.label(),
                        n,
                        adaptive.nodes,
                        legacy.nodes,
                    );
                    assert!(
                        adaptive.probe_secs <= legacy.probe_secs * 1.5,
                        "adaptive quadtree probes grossly slower than legacy on {} n={}: \
                         {:.3e}s vs {:.3e}s",
                        family.label(),
                        n,
                        adaptive.probe_secs,
                        legacy.probe_secs,
                    );
                }
                let pre_probe = PRE_ARENA_TREE_PROBE_SECS
                    .iter()
                    .find(|(f, t, pn, _)| {
                        *f == family.label() && *t == kind_label(kind) && *pn == n
                    })
                    .map(|(_, _, _, secs)| *secs);
                for (rule, m) in [("legacy", &legacy), ("adaptive", &adaptive)] {
                    let probe_speedup = pre_probe.map(|p| p / m.probe_secs);
                    probe_table.push_row(vec![
                        family.label().to_string(),
                        n.to_string(),
                        kind_label(kind).to_string(),
                        rule.to_string(),
                        format_secs(m.probe_secs),
                        m.depth.to_string(),
                        m.nodes.to_string(),
                        probe_speedup.map_or("-".to_string(), |s| format!("{s:.2}x")),
                    ]);
                    if !probe_first {
                        probe_json.push_str(",\n");
                    }
                    probe_first = false;
                    probe_json.push_str(&format!(
                        "    {{\"family\": \"{}\", \"n\": {}, \"tree\": \"{}\", \
                         \"rule\": \"{rule}\", \"probe_secs\": {:.9}, \"depth\": {}, \
                         \"nodes\": {}, \"pre_arena_probe_secs\": {}, \"speedup\": {}}}",
                        family.label(),
                        n,
                        kind_label(kind),
                        m.probe_secs,
                        m.depth,
                        m.nodes,
                        pre_probe.map_or("null".to_string(), |p| format!("{p:.9}")),
                        probe_speedup.map_or("null".to_string(), |s| format!("{s:.3}")),
                    ));
                }
            }
        }
    }
    json.push_str("\n  ],\n  \"adaptive_probes\": [\n");
    json.push_str(&probe_json);
    json.push_str("\n  ]\n}\n");

    let dir = opts.out_dir.clone().unwrap_or_default();
    if !dir.as_os_str().is_empty() {
        std::fs::create_dir_all(&dir).expect("create output directory");
    }
    let path = dir.join("BENCH_build.json");
    std::fs::write(&path, json).expect("write BENCH_build.json");
    println!("[build sweep written to {}]", path.display());

    vec![
        (
            "build_construction".to_string(),
            (
                "Arena construction — serial vs 4-thread pool (byte-identity asserted)".to_string(),
                build_table,
            ),
        ),
        (
            "build_probes".to_string(),
            (
                "Probe latency — legacy vs adaptive split rules (200 boxes, side 5%)".to_string(),
                probe_table,
            ),
        ),
    ]
}

/// Table I / Figure 4 — relationship between eclipse and the other operators,
/// plus index diagnostics, on the default INDE workload.
fn relations() -> (String, ResultTable) {
    let pts = DatasetFamily::Inde.generate(DEFAULT_N, DEFAULT_D, SEED);
    let b = default_ratio_box(DEFAULT_D);
    let report = RelationReport::compute(&pts, &b).expect("valid workload");
    let quad = EclipseIndex::build(
        &pts,
        IndexConfig::with_kind(IntersectionIndexKind::Quadtree),
    )
    .expect("valid workload");
    let mut t = ResultTable::new(&["quantity", "value"]);
    t.push_row(vec![
        "skyline points".into(),
        report.skyline.len().to_string(),
    ]);
    t.push_row(vec![
        "convex hull query points".into(),
        report.convex_hull.len().to_string(),
    ]);
    t.push_row(vec![
        "eclipse points".into(),
        report.eclipse.len().to_string(),
    ]);
    t.push_row(vec![
        "eclipse points outside convex hull".into(),
        report.eclipse_only().len().to_string(),
    ]);
    t.push_row(vec![
        "1NN winner inside eclipse".into(),
        report.nn_in_eclipse().to_string(),
    ]);
    t.push_row(vec![
        "eclipse subset of skyline".into(),
        report.eclipse_subset_of_skyline().to_string(),
    ]);
    t.push_row(vec![
        "indexed intersections".into(),
        quad.num_intersections().to_string(),
    ]);
    t.push_row(vec![
        "quadtree depth".into(),
        quad.backend_depth().to_string(),
    ]);
    (
        format!("Relationships (INDE, n = {DEFAULT_N}, d = {DEFAULT_D}, {b})"),
        t,
    )
}

/// Sharded-serving sweep over the fault-tolerant router: a replicated
/// dataset probe-space-partitioned across 1, 2 and 4 `eclipse-serve`
/// backends (throughput rows), then a timed failover — one shard killed
/// mid-workload, a standby re-warmed from the shared snapshot directory
/// and promoted.  **Every** routed pass is asserted byte-identical to the
/// unsharded single-process reference, so the throughput and recovery
/// numbers are for provably unchanged answers.  Writes BENCH_shard.json
/// next to the CSVs.
fn shard_sweep(opts: &Options) -> (String, ResultTable) {
    use eclipse_router::fault::{FaultPlan, FaultProxy};
    use eclipse_router::router::{Router, RouterConfig};

    let n = if opts.quick { 1 << 12 } else { 1 << 14 };
    let num_probes = if opts.quick { 96usize } else { 384 };
    let reps = if opts.quick { 2 } else { 3 };
    let batch = 32usize;
    let pts = DatasetFamily::Inde.generate(n, 3, SEED);
    let boxes = probe_ratio_boxes(num_probes, 3, SEED + 9);

    // The unsharded reference: every routed pass must reproduce these
    // results byte for byte.
    let reference =
        Server::bind("127.0.0.1:0", ExecutionContext::with_threads(1)).expect("bind reference");
    reference
        .register_dataset("rep", pts.clone(), IndexKind::Quadtree)
        .expect("valid workload");
    let ref_handle = reference.spawn().expect("spawn reference");
    let mut ref_client = Client::connect(ref_handle.addr()).expect("connect reference");
    let mut expected: Vec<Vec<Vec<usize>>> = Vec::new();
    let mut expected_counts: Vec<Vec<usize>> = Vec::new();
    for chunk in boxes.chunks(batch) {
        expected.push(
            ref_client
                .query_batch("rep", chunk)
                .expect("reference query"),
        );
        expected_counts.push(
            ref_client
                .count_batch("rep", chunk)
                .expect("reference count"),
        );
    }
    ref_handle.shutdown();

    let mut t = ResultTable::new(&["shards", "query_probe_s", "count_probe_s"]);
    let mut json = String::from("{\n  \"pr\": 8,\n");
    json.push_str(&format!("  \"quick\": {},\n", opts.quick));
    json.push_str(&format!(
        "  \"dataset\": {{\"family\": \"INDE\", \"n\": {n}, \"d\": 3, \"probes\": {num_probes}, \
         \"batch\": {batch}}},\n"
    ));
    json.push_str("  \"shard\": [\n");
    let mut first = true;
    for shards in [1usize, 2, 4] {
        let backends: Vec<_> = (0..shards)
            .map(|_| {
                let server = Server::bind("127.0.0.1:0", ExecutionContext::with_threads(1))
                    .expect("bind shard");
                server
                    .register_dataset("rep", pts.clone(), IndexKind::Quadtree)
                    .expect("valid workload");
                server.spawn().expect("spawn shard")
            })
            .collect();
        let router = Router::bind(
            "127.0.0.1:0",
            RouterConfig {
                backends: backends.iter().map(|b| b.addr().to_string()).collect(),
                replicated: vec!["rep".to_string()],
                ..RouterConfig::default()
            },
        )
        .expect("bind router")
        .spawn()
        .expect("spawn router");
        let mut client = Client::connect(router.addr()).expect("connect router");
        let mut best_query = f64::INFINITY;
        let mut best_count = f64::INFINITY;
        for _ in 0..reps {
            let start = std::time::Instant::now();
            for (i, chunk) in boxes.chunks(batch).enumerate() {
                let results = client.query_batch("rep", chunk).expect("routed query");
                assert_eq!(
                    results, expected[i],
                    "routed results diverged at {shards} shards"
                );
            }
            best_query = best_query.min(start.elapsed().as_secs_f64());
            let start = std::time::Instant::now();
            for (i, chunk) in boxes.chunks(batch).enumerate() {
                let counts = client.count_batch("rep", chunk).expect("routed count");
                assert_eq!(
                    counts, expected_counts[i],
                    "routed counts diverged at {shards} shards"
                );
            }
            best_count = best_count.min(start.elapsed().as_secs_f64());
        }
        let query_probe_s = num_probes as f64 / best_query;
        let count_probe_s = num_probes as f64 / best_count;
        t.push_row(vec![
            shards.to_string(),
            format!("{query_probe_s:.0}"),
            format!("{count_probe_s:.0}"),
        ]);
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str(&format!(
            "    {{\"shards\": {shards}, \"query_probes_per_s\": {query_probe_s:.1}, \
             \"count_probes_per_s\": {count_probe_s:.1}}}"
        ));
        router.shutdown();
        for b in backends {
            b.shutdown();
        }
    }
    json.push_str("\n  ],\n");

    // Failover: two shards behind fault proxies, a hash-placed dataset on
    // slot 0, a standby sharing the snapshot directory.  Kill slot 0
    // mid-workload and measure the client-observed gap until results are
    // byte-identical again, plus the router-measured re-warm.
    let hashed: String = (0..)
        .map(|i| format!("ds{i}"))
        .find(|name| eclipse_persist::fnv1a(name.as_bytes()).is_multiple_of(2))
        .expect("some name hashes onto slot 0");
    let snap_dir = std::env::temp_dir().join(format!("eclipse_bench_shard_{}", std::process::id()));
    std::fs::create_dir_all(&snap_dir).expect("create snapshot dir");
    let spawn_member = |load: bool| {
        let server =
            Server::bind("127.0.0.1:0", ExecutionContext::with_threads(1)).expect("bind member");
        server.set_snapshot_dir(&snap_dir);
        if load {
            server
                .register_dataset(&hashed, pts.clone(), IndexKind::Quadtree)
                .expect("valid workload");
        }
        server.spawn().expect("spawn member")
    };
    let backend0 = spawn_member(true);
    let backend1 = spawn_member(false);
    let standby = spawn_member(false);
    let mut owner_client = Client::connect(backend0.addr()).expect("connect owner");
    assert!(
        owner_client
            .save_index(&hashed, IndexKind::Quadtree)
            .expect("snapshot")
            > 0
    );
    let expected_h = owner_client
        .query_batch(&hashed, &boxes[..batch])
        .expect("owner query");
    let proxy0 = FaultProxy::spawn(backend0.addr(), FaultPlan::default()).expect("spawn proxy");
    let proxy1 = FaultProxy::spawn(backend1.addr(), FaultPlan::default()).expect("spawn proxy");
    let router = Router::bind(
        "127.0.0.1:0",
        RouterConfig {
            backends: vec![proxy0.addr().to_string(), proxy1.addr().to_string()],
            standbys: vec![standby.addr().to_string()],
            ..RouterConfig::default()
        },
    )
    .expect("bind router")
    .spawn()
    .expect("spawn router");
    let mut client = Client::connect(router.addr()).expect("connect router");
    assert!(client.allow_partial(true).expect("opt in"));
    assert_eq!(
        client
            .query_batch(&hashed, &boxes[..batch])
            .expect("routed query"),
        expected_h,
        "routed results diverged before the kill"
    );
    proxy0.set_offline(true);
    let killed_at = std::time::Instant::now();
    let mut degraded_replies = 0u64;
    let recovery_ms = loop {
        let rows = client
            .query_batch_degraded(&hashed, &boxes[..batch])
            .expect("degraded query");
        if rows.iter().all(Option::is_some) {
            let rows: Vec<Vec<usize>> = rows.into_iter().map(Option::unwrap).collect();
            assert_eq!(rows, expected_h, "post-failover results diverged");
            break killed_at.elapsed().as_millis() as u64;
        }
        degraded_replies += 1;
        assert!(
            killed_at.elapsed() < std::time::Duration::from_secs(60),
            "failover never completed"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    let events = router.failovers();
    assert_eq!(events.len(), 1, "expected exactly one failover: {events:?}");
    let event = &events[0];
    println!(
        "[failover: recovery {recovery_ms} ms client-observed, re-warm {} ms, \
         {} datasets restored, {degraded_replies} degraded replies]",
        event.rewarm_ms, event.datasets_restored
    );
    json.push_str(&format!(
        "  \"failover\": {{\"recovery_ms\": {recovery_ms}, \"rewarm_ms\": {}, \
         \"datasets_restored\": {}, \"snapshots_skipped\": {}, \"degraded_replies\": {degraded_replies}}}\n",
        event.rewarm_ms, event.datasets_restored, event.snapshots_skipped
    ));
    json.push_str("}\n");
    router.shutdown();
    proxy0.shutdown();
    proxy1.shutdown();
    backend0.shutdown();
    backend1.shutdown();
    standby.shutdown();
    let _ = std::fs::remove_dir_all(&snap_dir);

    let dir = opts.out_dir.clone().unwrap_or_default();
    if !dir.as_os_str().is_empty() {
        std::fs::create_dir_all(&dir).expect("create output directory");
    }
    let path = dir.join("BENCH_shard.json");
    std::fs::write(&path, json).expect("write BENCH_shard.json");
    println!("[shard sweep written to {}]", path.display());
    (
        format!(
            "Sharded serving — eclipse-router over 1/2/4 shards + timed failover \
             (INDE, n = {n}, d = 3, {num_probes} probes)"
        ),
        t,
    )
}

/// Memory-governance sweep: a budgeted server whose working set is ~2x its
/// byte budget, cycled round-robin so the LRU tier keeps evicting cold
/// datasets to their snapshots and transparently restoring them on the next
/// touch.  **Every** pass is asserted byte-identical to an unbounded
/// reference server, the accounted total is asserted to stay within
/// budget + one dataset after every touch, and the final rows time a
/// snapshot reload against a cold from-points rebuild.  Writes
/// BENCH_memory.json next to the CSVs.
fn memory_sweep(opts: &Options) -> (String, ResultTable) {
    use eclipse_serve::server::ServerConfig;

    let n = if opts.quick { 1 << 11 } else { 1 << 13 };
    let num_datasets = 6usize;
    let num_probes = if opts.quick { 48usize } else { 192 };
    let passes = if opts.quick { 2 } else { 3 };
    let names: Vec<String> = (0..num_datasets).map(|i| format!("ds{i}")).collect();
    let datasets: Vec<Vec<eclipse_core::Point>> = (0..num_datasets)
        .map(|i| DatasetFamily::Inde.generate(n, 3, SEED + i as u64))
        .collect();
    let boxes = probe_ratio_boxes(num_probes, 3, SEED + 11);

    // The unbounded reference: answers are ground truth, and its stats give
    // the true working-set size the budget is derived from.
    let reference =
        Server::bind("127.0.0.1:0", ExecutionContext::with_threads(1)).expect("bind reference");
    for (name, pts) in names.iter().zip(&datasets) {
        reference
            .register_dataset(name, pts.clone(), IndexKind::Quadtree)
            .expect("valid workload");
    }
    let ref_handle = reference.spawn().expect("spawn reference");
    let mut ref_client = Client::connect(ref_handle.addr()).expect("connect reference");
    let ref_stats = ref_client.stats().expect("reference stats");
    let working_set: u64 = ref_stats.datasets.iter().map(|d| d.bytes).sum();
    let largest: u64 = ref_stats.datasets.iter().map(|d| d.bytes).max().unwrap();
    let budget = working_set / 2;
    let expected: Vec<Vec<Vec<usize>>> = names
        .iter()
        .map(|name| {
            ref_client
                .query_batch(name, &boxes)
                .expect("reference query")
        })
        .collect();

    // The budgeted server under test: same datasets, half the bytes.
    let snap_dir =
        std::env::temp_dir().join(format!("eclipse_bench_memory_{}", std::process::id()));
    std::fs::create_dir_all(&snap_dir).expect("create snapshot dir");
    let server = Server::bind_with_config(
        "127.0.0.1:0",
        ExecutionContext::with_threads(1),
        ServerConfig {
            max_memory_bytes: Some(budget),
            ..ServerConfig::default()
        },
    )
    .expect("bind budgeted server");
    server.set_snapshot_dir(&snap_dir);
    for (name, pts) in names.iter().zip(&datasets) {
        server
            .register_dataset(name, pts.clone(), IndexKind::Quadtree)
            .expect("valid workload");
    }
    let handle = server.spawn().expect("spawn budgeted server");
    let mut client = Client::connect(handle.addr()).expect("connect budgeted server");

    let mut t = ResultTable::new(&[
        "pass",
        "accounted_kib",
        "budget_kib",
        "evictions",
        "reloads",
        "identical",
    ]);
    let mut json = String::from("{\n  \"pr\": 10,\n");
    json.push_str(&format!("  \"quick\": {},\n", opts.quick));
    json.push_str(&format!(
        "  \"dataset\": {{\"family\": \"INDE\", \"n\": {n}, \"d\": 3, \
         \"datasets\": {num_datasets}, \"probes\": {num_probes}}},\n"
    ));
    json.push_str(&format!(
        "  \"working_set_bytes\": {working_set}, \"budget_bytes\": {budget}, \
         \"largest_dataset_bytes\": {largest},\n"
    ));
    json.push_str("  \"passes\": [\n");
    for pass in 0..passes {
        for (i, name) in names.iter().enumerate() {
            let rows = client.query_batch(name, &boxes).expect("budgeted query");
            assert_eq!(
                rows, expected[i],
                "budgeted server diverged from reference on {name} (pass {pass})"
            );
            let stats = client.stats().expect("budgeted stats");
            assert!(
                stats.total_bytes <= budget + largest,
                "accounted {} exceeds budget {budget} + one dataset {largest} (pass {pass})",
                stats.total_bytes
            );
        }
        let stats = client.stats().expect("budgeted stats");
        t.push_row(vec![
            pass.to_string(),
            (stats.total_bytes / 1024).to_string(),
            (budget / 1024).to_string(),
            stats.evictions.to_string(),
            stats.reloads.to_string(),
            "yes".to_string(),
        ]);
        if pass > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "    {{\"pass\": {pass}, \"accounted_bytes\": {}, \"evictions\": {}, \
             \"reloads\": {}, \"identical\": true}}",
            stats.total_bytes, stats.evictions, stats.reloads
        ));
    }
    json.push_str("\n  ],\n");
    let final_stats = client.stats().expect("final stats");
    assert!(
        final_stats.evictions > 0 && final_stats.reloads > 0,
        "cycling a 2x-budget working set must evict and reload \
         (evictions {}, reloads {})",
        final_stats.evictions,
        final_stats.reloads
    );

    // Reload latency: find an evicted dataset and time the first query that
    // touches it (snapshot decode, not a rebuild), against the cold
    // from-points build the snapshot skips.
    let evicted = final_stats
        .datasets
        .iter()
        .find(|d| !d.resident)
        .expect("a 2x-budget working set leaves someone evicted")
        .name
        .clone();
    let idx = names.iter().position(|name| *name == evicted).unwrap();
    let start = std::time::Instant::now();
    let rows = client.query_batch(&evicted, &boxes).expect("reload query");
    let reload_s = start.elapsed().as_secs_f64();
    assert_eq!(
        rows, expected[idx],
        "reloaded dataset diverged on {evicted}"
    );
    let start = std::time::Instant::now();
    let engine = eclipse_core::EclipseEngine::new(datasets[idx].clone())
        .expect("valid workload")
        .with_execution_context(ExecutionContext::serial());
    engine
        .build_index(IntersectionIndexKind::Quadtree)
        .expect("build index");
    let cold_s = start.elapsed().as_secs_f64();
    drop(engine);
    println!(
        "[memory: reload {:.1} ms vs cold build {:.1} ms ({:.1}x), \
         {} evictions, {} reloads]",
        reload_s * 1e3,
        cold_s * 1e3,
        cold_s / reload_s,
        final_stats.evictions,
        final_stats.reloads
    );
    json.push_str(&format!(
        "  \"reload\": {{\"dataset\": \"{evicted}\", \"reload_ms\": {:.3}, \
         \"cold_build_ms\": {:.3}}}\n",
        reload_s * 1e3,
        cold_s * 1e3
    ));
    json.push_str("}\n");

    handle.shutdown();
    ref_handle.shutdown();
    let _ = std::fs::remove_dir_all(&snap_dir);

    let dir = opts.out_dir.clone().unwrap_or_default();
    if !dir.as_os_str().is_empty() {
        std::fs::create_dir_all(&dir).expect("create output directory");
    }
    let path = dir.join("BENCH_memory.json");
    std::fs::write(&path, json).expect("write BENCH_memory.json");
    println!("[memory sweep written to {}]", path.display());
    (
        format!(
            "Memory governance — {num_datasets} datasets cycled under a half-working-set \
             budget (INDE, n = {n}, d = 3, {num_probes} probes)"
        ),
        t,
    )
}
