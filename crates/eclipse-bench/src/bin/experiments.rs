//! Experiment harness reproducing every table and figure of the paper's
//! evaluation section (§V).
//!
//! ```text
//! cargo run --release -p eclipse-bench --bin experiments -- all
//! cargo run --release -p eclipse-bench --bin experiments -- table6 fig10
//! cargo run --release -p eclipse-bench --bin experiments -- --full fig10
//! cargo run --release -p eclipse-bench --bin experiments -- --out results/ all
//! ```
//!
//! Without `--full` the scaling experiments stop at n = 2^13 (the paper's
//! largest settings push the quadratic baseline into the 10^4-second range on
//! its own hardware; the shapes are already clear at 2^13).  `--out DIR`
//! additionally writes each table as CSV into DIR.

use std::collections::BTreeSet;
use std::path::PathBuf;

use eclipse_bench::harness::{
    format_secs, run_competitor_repeated, run_skyline_executor, run_tran_at_threads,
    skyline_executors, Competitor,
};
use eclipse_bench::workloads::{
    default_ratio_box, ratio_box, worst_case_dataset, DatasetFamily, DEFAULT_D, DEFAULT_N,
    DEFAULT_NBA_N, DEFAULT_N_VALUES, PAPER_D_VALUES, PAPER_N_VALUES, PAPER_RATIO_RANGES,
};
use eclipse_core::algo::transform::{eclipse_transform, SkylineBackend};
use eclipse_core::index::{EclipseIndex, IndexConfig, IntersectionIndexKind};
use eclipse_core::relations::RelationReport;
use eclipse_data::io::ResultTable;
use eclipse_data::survey::{run_survey, SurveyConfig, SurveySystem};
use eclipse_data::synthetic::{Distribution, SyntheticConfig};

const SEED: u64 = 20210614;

struct Options {
    full: bool,
    out_dir: Option<PathBuf>,
    experiments: BTreeSet<String>,
}

fn main() {
    let opts = parse_args();
    let all = opts.experiments.contains("all") || opts.experiments.is_empty();
    let want = |name: &str| all || opts.experiments.contains(name);

    if want("table5") {
        emit(&opts, "table5", table5());
    }
    if want("table6") {
        emit(&opts, "table6", table6(&opts));
    }
    if want("table7") {
        emit(&opts, "table7", table7());
    }
    if want("table8") {
        emit(&opts, "table8", table8());
    }
    if want("fig10") {
        for (name, table) in fig10(&opts) {
            emit(&opts, &name, table);
        }
    }
    if want("fig11") {
        for (name, table) in fig11() {
            emit(&opts, &name, table);
        }
    }
    if want("fig12") {
        for (name, table) in fig12() {
            emit(&opts, &name, table);
        }
    }
    if want("fig13") {
        emit(&opts, "fig13", fig13(&opts));
    }
    if want("fig14") {
        emit(&opts, "fig14", fig14());
    }
    if want("relations") {
        emit(&opts, "relations", relations());
    }
    if want("threads") {
        emit(&opts, "threads", threads_sweep(&opts));
    }
}

fn parse_args() -> Options {
    let mut full = false;
    let mut out_dir = None;
    let mut experiments = BTreeSet::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--out" => {
                out_dir = args.next().map(PathBuf::from);
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--full] [--out DIR] \
                     [all|table5|table6|table7|table8|fig10|fig11|fig12|fig13|fig14|relations|\
                     threads]..."
                );
                std::process::exit(0);
            }
            other => {
                experiments.insert(other.to_string());
            }
        }
    }
    Options {
        full,
        out_dir,
        experiments,
    }
}

fn emit(opts: &Options, name: &str, table: (String, ResultTable)) {
    let (title, table) = table;
    println!("\n=== {name}: {title} ===");
    print!("{}", table.render());
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
        let path = dir.join(format!("{name}.csv"));
        table.write_csv(&path).expect("write CSV");
        println!("[written to {}]", path.display());
    }
}

/// Table V — simulated user study.
fn table5() -> (String, ResultTable) {
    let outcome = run_survey(SurveyConfig::default());
    let mut t = ResultTable::new(&[
        "skyline",
        "top-k",
        "eclipse-ratio",
        "eclipse-weight",
        "eclipse-category",
    ]);
    t.push_row(
        SurveySystem::all()
            .into_iter()
            .map(|s| outcome.count(s).to_string())
            .collect(),
    );
    (
        "Results of case study (simulated respondents)".to_string(),
        t,
    )
}

/// Average number of eclipse points over a few INDE datasets.
fn average_eclipse_count(n: usize, d: usize, ratio: (f64, f64), repetitions: u64) -> f64 {
    let b = ratio_box(d, ratio.0, ratio.1);
    let mut total = 0usize;
    for rep in 0..repetitions {
        let pts = SyntheticConfig::new(n, d, Distribution::Independent, SEED + rep).generate();
        total += eclipse_transform(&pts, &b, SkylineBackend::Auto)
            .expect("valid workload")
            .len();
    }
    total as f64 / repetitions as f64
}

/// Table VI — expected number of eclipse points vs n.
fn table6(opts: &Options) -> (String, ResultTable) {
    let ns: Vec<usize> = if opts.full {
        PAPER_N_VALUES.to_vec()
    } else {
        DEFAULT_N_VALUES.to_vec()
    };
    let mut t = ResultTable::new(&["n", "eclipse_points"]);
    for n in ns {
        let avg = average_eclipse_count(n, DEFAULT_D, (0.36, 2.75), 5);
        t.push_row(vec![
            format!("2^{}", n.trailing_zeros()),
            format!("{avg:.2}"),
        ]);
    }
    (
        "Expected number of eclipse points vs. n (INDE, d = 3, r ∈ [0.36, 2.75])".to_string(),
        t,
    )
}

/// Table VII — expected number of eclipse points vs d.
fn table7() -> (String, ResultTable) {
    let mut t = ResultTable::new(&["d", "eclipse_points"]);
    for d in PAPER_D_VALUES {
        let avg = average_eclipse_count(DEFAULT_N, d, (0.36, 2.75), 5);
        t.push_row(vec![d.to_string(), format!("{avg:.2}")]);
    }
    (
        "Expected number of eclipse points vs. d (INDE, n = 2^10, r ∈ [0.36, 2.75])".to_string(),
        t,
    )
}

/// Table VIII — expected number of eclipse points vs ratio range.
fn table8() -> (String, ResultTable) {
    let mut t = ResultTable::new(&["r", "eclipse_points"]);
    for (lo, hi) in PAPER_RATIO_RANGES {
        let avg = average_eclipse_count(DEFAULT_N, DEFAULT_D, (lo, hi), 5);
        t.push_row(vec![format!("[{lo},{hi}]"), format!("{avg:.2}")]);
    }
    (
        "Expected number of eclipse points vs. r (INDE, n = 2^10, d = 3)".to_string(),
        t,
    )
}

/// Figure 10 — query time of the four algorithms vs n on CORR/INDE/ANTI/NBA.
fn fig10(opts: &Options) -> Vec<(String, (String, ResultTable))> {
    let ns: Vec<usize> = if opts.full {
        PAPER_N_VALUES.to_vec()
    } else {
        DEFAULT_N_VALUES.to_vec()
    };
    let nba_ns: Vec<usize> = vec![500, 1000, 1500, 2000, 2384];
    let mut out = Vec::new();
    for family in DatasetFamily::all() {
        let mut t = ResultTable::new(&["n", "BASE", "TRAN", "QUAD", "CUTTING"]);
        let sweep: &[usize] = if family == DatasetFamily::Nba {
            &nba_ns
        } else {
            &ns
        };
        for &n in sweep {
            let pts = family.generate(n, DEFAULT_D, SEED);
            let b = default_ratio_box(DEFAULT_D);
            let mut row = vec![n.to_string()];
            for c in Competitor::all() {
                // ANTI skylines explode; keep the quadratic baseline affordable
                // by skipping the largest anti-correlated settings outside
                // --full runs.
                if !opts.full
                    && c == Competitor::Base
                    && family == DatasetFamily::Anti
                    && n > (1 << 12)
                {
                    row.push("-".to_string());
                    continue;
                }
                let m = run_competitor_repeated(c, &pts, &b, 3);
                row.push(format_secs(m.query_secs));
            }
            t.push_row(row);
        }
        out.push((
            format!("fig10_{}", family.label().to_lowercase()),
            (
                format!(
                    "Fig. 10 — query time vs n, {} (d = 3, r ∈ [0.36, 2.75])",
                    family.label()
                ),
                t,
            ),
        ));
    }
    out
}

/// Figure 11 — query time vs d.
fn fig11() -> Vec<(String, (String, ResultTable))> {
    let mut out = Vec::new();
    for family in DatasetFamily::all() {
        let n = if family == DatasetFamily::Nba {
            DEFAULT_NBA_N
        } else {
            DEFAULT_N
        };
        let mut t = ResultTable::new(&["d", "BASE", "TRAN", "QUAD", "CUTTING"]);
        for d in PAPER_D_VALUES {
            let pts = family.generate(n, d, SEED);
            let b = default_ratio_box(d);
            let mut row = vec![d.to_string()];
            for c in Competitor::all() {
                let m = run_competitor_repeated(c, &pts, &b, 3);
                row.push(format_secs(m.query_secs));
            }
            t.push_row(row);
        }
        out.push((
            format!("fig11_{}", family.label().to_lowercase()),
            (
                format!(
                    "Fig. 11 — query time vs d, {} (n = {n}, r ∈ [0.36, 2.75])",
                    family.label()
                ),
                t,
            ),
        ));
    }
    out
}

/// Figure 12 — query time of the index-based algorithms vs ratio range.
fn fig12() -> Vec<(String, (String, ResultTable))> {
    let mut out = Vec::new();
    for family in DatasetFamily::all() {
        let n = if family == DatasetFamily::Nba {
            DEFAULT_NBA_N
        } else {
            DEFAULT_N
        };
        let pts = family.generate(n, DEFAULT_D, SEED);
        let mut t = ResultTable::new(&["r", "QUAD", "CUTTING"]);
        for (lo, hi) in PAPER_RATIO_RANGES {
            let b = ratio_box(DEFAULT_D, lo, hi);
            let mut row = vec![format!("[{lo},{hi}]")];
            for c in Competitor::index_based() {
                let m = run_competitor_repeated(c, &pts, &b, 5);
                row.push(format_secs(m.query_secs));
            }
            t.push_row(row);
        }
        out.push((
            format!("fig12_{}", family.label().to_lowercase()),
            (
                format!(
                    "Fig. 12 — query time vs r, {} (n = {n}, d = 3)",
                    family.label()
                ),
                t,
            ),
        ));
    }
    out
}

/// Figure 13 — worst-case query time vs number of points, d = 3.
fn fig13(opts: &Options) -> (String, ResultTable) {
    let ns: Vec<usize> = if opts.full {
        vec![1 << 7, 1 << 8, 1 << 9, 1 << 10]
    } else {
        vec![1 << 7, 1 << 8, 1 << 9]
    };
    let mut t = ResultTable::new(&["n", "QUAD", "CUTTING"]);
    for n in ns {
        let pts = worst_case_dataset(n, 3, SEED);
        let b = default_ratio_box(3);
        let mut row = vec![n.to_string()];
        for c in Competitor::index_based() {
            let m = run_competitor_repeated(c, &pts, &b, 3);
            row.push(format_secs(m.query_secs));
        }
        t.push_row(row);
    }
    (
        "Fig. 13 — worst case, query time vs n (clustered data, d = 3)".to_string(),
        t,
    )
}

/// Figure 14 — worst-case query time vs dimensionality, n = 2^7.
fn fig14() -> (String, ResultTable) {
    let mut t = ResultTable::new(&["d", "QUAD", "CUTTING"]);
    for d in [3usize, 4, 5] {
        let pts = worst_case_dataset(1 << 7, d, SEED);
        let b = default_ratio_box(d);
        let mut row = vec![d.to_string()];
        for c in Competitor::index_based() {
            let m = run_competitor_repeated(c, &pts, &b, 3);
            row.push(format_secs(m.query_secs));
        }
        t.push_row(row);
    }
    (
        "Fig. 14 — worst case, query time vs d (clustered data, n = 2^7)".to_string(),
        t,
    )
}

/// Thread sweep over the parallel execution substrate: serial vs parallel
/// BNL/SFS/DC skyline executors plus end-to-end TRAN, on a 4-dimensional
/// INDE workload (not a figure of the paper — it backs the eclipse-exec
/// crate and the ROADMAP's heavy-traffic north star).
fn threads_sweep(opts: &Options) -> (String, ResultTable) {
    let n = if opts.full { 1 << 17 } else { 1 << 13 };
    let d = 4;
    let pts = DatasetFamily::Inde.generate(n, d, SEED);
    let b = default_ratio_box(d);
    let mut t = ResultTable::new(&["threads", "BNL", "SFS", "DC", "TRAN"]);
    for threads in [1usize, 2, 4, 8] {
        let mut row = vec![threads.to_string()];
        for exec in skyline_executors(threads) {
            let m = run_skyline_executor(exec.as_ref(), &pts, 3);
            row.push(format_secs(m.query_secs));
        }
        let m = run_tran_at_threads(&pts, &b, threads, 3);
        row.push(format_secs(m.query_secs));
        t.push_row(row);
    }
    (
        format!("Thread sweep — skyline executors and TRAN (INDE, n = {n}, d = {d})"),
        t,
    )
}

/// Table I / Figure 4 — relationship between eclipse and the other operators,
/// plus index diagnostics, on the default INDE workload.
fn relations() -> (String, ResultTable) {
    let pts = DatasetFamily::Inde.generate(DEFAULT_N, DEFAULT_D, SEED);
    let b = default_ratio_box(DEFAULT_D);
    let report = RelationReport::compute(&pts, &b).expect("valid workload");
    let quad = EclipseIndex::build(
        &pts,
        IndexConfig::with_kind(IntersectionIndexKind::Quadtree),
    )
    .expect("valid workload");
    let mut t = ResultTable::new(&["quantity", "value"]);
    t.push_row(vec![
        "skyline points".into(),
        report.skyline.len().to_string(),
    ]);
    t.push_row(vec![
        "convex hull query points".into(),
        report.convex_hull.len().to_string(),
    ]);
    t.push_row(vec![
        "eclipse points".into(),
        report.eclipse.len().to_string(),
    ]);
    t.push_row(vec![
        "eclipse points outside convex hull".into(),
        report.eclipse_only().len().to_string(),
    ]);
    t.push_row(vec![
        "1NN winner inside eclipse".into(),
        report.nn_in_eclipse().to_string(),
    ]);
    t.push_row(vec![
        "eclipse subset of skyline".into(),
        report.eclipse_subset_of_skyline().to_string(),
    ]);
    t.push_row(vec![
        "indexed intersections".into(),
        quad.num_intersections().to_string(),
    ]);
    t.push_row(vec![
        "quadtree depth".into(),
        quad.backend_depth().to_string(),
    ]);
    (
        format!("Relationships (INDE, n = {DEFAULT_N}, d = {DEFAULT_D}, {b})"),
        t,
    )
}
