//! Timing harness used by the `experiments` binary.
//!
//! Criterion benches (under `benches/`) give statistically rigorous
//! micro-benchmarks per figure; this harness complements them with a
//! coarse-grained wall-clock runner that prints each table/figure of the
//! paper as one aligned text block (and optionally CSV), which is what
//! EXPERIMENTS.md records.

use std::sync::Arc;
use std::time::Instant;

use eclipse_core::algo::baseline::eclipse_baseline;
use eclipse_core::algo::transform::{eclipse_transform, eclipse_transform_with, SkylineBackend};
use eclipse_core::exec::ExecutionContext;
use eclipse_core::index::{EclipseIndex, IndexConfig, IntersectionIndexKind, ProbeScratch};
use eclipse_core::point::{BoundingBox, Point};
use eclipse_core::weights::WeightRatioBox;
use eclipse_exec::ThreadPool;
use eclipse_geom::cutting::{CuttingTree, CuttingTreeConfig};
use eclipse_geom::hyperplane::Hyperplane;
use eclipse_geom::quadtree::{HyperplaneQuadtree, QuadtreeConfig};
use eclipse_geom::traverse::TraversalScratch;
use eclipse_skyline::exec::{
    ParallelBnl, ParallelDc, ParallelSfs, SerialBnl, SerialDc, SerialSfs, SkylineExecutor,
};

/// The four algorithms of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Competitor {
    /// BASE — Algorithm 1.
    Base,
    /// TRAN — Algorithms 2/3.
    Tran,
    /// QUAD — index-based with the line quadtree.
    Quad,
    /// CUTTING — index-based with the cutting tree.
    Cutting,
}

impl Competitor {
    /// All competitors in the paper's legend order.
    pub fn all() -> [Competitor; 4] {
        [
            Competitor::Base,
            Competitor::Tran,
            Competitor::Quad,
            Competitor::Cutting,
        ]
    }

    /// The index-based competitors only (Figures 12–14).
    pub fn index_based() -> [Competitor; 2] {
        [Competitor::Quad, Competitor::Cutting]
    }

    /// Label used in output rows.
    pub fn label(self) -> &'static str {
        match self {
            Competitor::Base => "BASE",
            Competitor::Tran => "TRAN",
            Competitor::Quad => "QUAD",
            Competitor::Cutting => "CUTTING",
        }
    }
}

/// One timed measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Measurement {
    /// Query time in seconds (excludes index construction).
    pub query_secs: f64,
    /// Index build time in seconds (zero for BASE/TRAN).
    pub build_secs: f64,
    /// Size of the returned eclipse set.
    pub result_size: usize,
}

/// Runs one competitor once on a dataset/query pair and reports the timing.
///
/// For the index-based competitors the index is built once (timed separately)
/// and the query phase is what lands in `query_secs`, matching the paper's
/// methodology of reporting query time for different users over a pre-built
/// index.
pub fn run_competitor(
    competitor: Competitor,
    points: &[Point],
    ratio_box: &WeightRatioBox,
) -> Measurement {
    match competitor {
        Competitor::Base => {
            let start = Instant::now();
            let result = eclipse_baseline(points, ratio_box).expect("valid workload");
            Measurement {
                query_secs: start.elapsed().as_secs_f64(),
                build_secs: 0.0,
                result_size: result.len(),
            }
        }
        Competitor::Tran => {
            let start = Instant::now();
            let result =
                eclipse_transform(points, ratio_box, SkylineBackend::Auto).expect("valid workload");
            Measurement {
                query_secs: start.elapsed().as_secs_f64(),
                build_secs: 0.0,
                result_size: result.len(),
            }
        }
        Competitor::Quad | Competitor::Cutting => {
            let kind = if competitor == Competitor::Quad {
                IntersectionIndexKind::Quadtree
            } else {
                IntersectionIndexKind::CuttingTree
            };
            let build_start = Instant::now();
            let index =
                EclipseIndex::build(points, IndexConfig::with_kind(kind)).expect("valid workload");
            let build_secs = build_start.elapsed().as_secs_f64();
            let start = Instant::now();
            let result = index.query(ratio_box).expect("valid workload");
            Measurement {
                query_secs: start.elapsed().as_secs_f64(),
                build_secs,
                result_size: result.len(),
            }
        }
    }
}

/// Runs a competitor `repetitions` times (re-using one index build for the
/// index-based competitors) and returns the mean query time plus the single
/// build time.
pub fn run_competitor_repeated(
    competitor: Competitor,
    points: &[Point],
    ratio_box: &WeightRatioBox,
    repetitions: usize,
) -> Measurement {
    assert!(repetitions > 0, "repetitions must be positive");
    match competitor {
        Competitor::Base | Competitor::Tran => {
            let mut total = 0.0;
            let mut last = run_competitor(competitor, points, ratio_box);
            total += last.query_secs;
            for _ in 1..repetitions {
                last = run_competitor(competitor, points, ratio_box);
                total += last.query_secs;
            }
            Measurement {
                query_secs: total / repetitions as f64,
                ..last
            }
        }
        Competitor::Quad | Competitor::Cutting => {
            let kind = if competitor == Competitor::Quad {
                IntersectionIndexKind::Quadtree
            } else {
                IntersectionIndexKind::CuttingTree
            };
            let build_start = Instant::now();
            let index =
                EclipseIndex::build(points, IndexConfig::with_kind(kind)).expect("valid workload");
            let build_secs = build_start.elapsed().as_secs_f64();
            // Repeated probes share one scratch, like a serving loop would.
            let mut scratch = ProbeScratch::new();
            let mut total = 0.0;
            let mut size = 0;
            for _ in 0..repetitions {
                let start = Instant::now();
                let result = index
                    .query_with_scratch(ratio_box, &mut scratch)
                    .expect("valid workload");
                total += start.elapsed().as_secs_f64();
                size = result.len();
            }
            Measurement {
                query_secs: total / repetitions as f64,
                build_secs,
                result_size: size,
            }
        }
    }
}

/// The skyline executor line-up for a thread count: the serial BNL/SFS/DC
/// trio for `threads <= 1`, their parallel counterparts over one shared pool
/// otherwise.  Used by the thread-sweep experiment and the Criterion bench.
pub fn skyline_executors(threads: usize) -> Vec<Box<dyn SkylineExecutor>> {
    if threads <= 1 {
        return vec![Box::new(SerialBnl), Box::new(SerialSfs), Box::new(SerialDc)];
    }
    let pool = Arc::new(ThreadPool::with_threads(threads));
    vec![
        Box::new(ParallelBnl::new(pool.clone())),
        Box::new(ParallelSfs::new(pool.clone())),
        Box::new(ParallelDc::new(pool)),
    ]
}

/// Times one skyline executor: mean wall-clock of `repetitions` runs plus
/// the result size (for cross-checking between executors).
pub fn run_skyline_executor(
    executor: &dyn SkylineExecutor,
    points: &[Point],
    repetitions: usize,
) -> Measurement {
    assert!(repetitions > 0, "repetitions must be positive");
    let mut total = 0.0;
    let mut size = 0;
    for _ in 0..repetitions {
        let start = Instant::now();
        let result = executor.skyline(points);
        total += start.elapsed().as_secs_f64();
        size = result.len();
    }
    Measurement {
        query_secs: total / repetitions as f64,
        build_secs: 0.0,
        result_size: size,
    }
}

/// Times TRAN at a given thread count: serial divide-and-conquer backend for
/// one thread, the parallel one (mapping + skyline fan out) otherwise.
pub fn run_tran_at_threads(
    points: &[Point],
    ratio_box: &WeightRatioBox,
    threads: usize,
    repetitions: usize,
) -> Measurement {
    assert!(repetitions > 0, "repetitions must be positive");
    let ctx = ExecutionContext::with_threads(threads);
    let backend = if threads <= 1 {
        SkylineBackend::DivideConquer
    } else {
        SkylineBackend::ParallelDivideConquer
    };
    let mut total = 0.0;
    let mut size = 0;
    for _ in 0..repetitions {
        let start = Instant::now();
        let result =
            eclipse_transform_with(points, ratio_box, backend, &ctx).expect("valid workload");
        total += start.elapsed().as_secs_f64();
        size = result.len();
    }
    Measurement {
        query_secs: total / repetitions as f64,
        build_secs: 0.0,
        result_size: size,
    }
}

/// One tree-level probe measurement: construction time plus steady-state
/// single-probe latency over a fixed probe set (reused traversal scratch, the
/// serving-loop configuration).  Probe latencies are the **minimum** over the
/// repetition passes — the standard noise-robust estimator on shared
/// hardware.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeProbeMeasurement {
    /// Tree construction time in seconds.
    pub build_secs: f64,
    /// Mean wall-clock seconds per probe.
    pub probe_secs: f64,
    /// Mean number of reported hyperplanes per probe (result-size sanity
    /// check across backends).
    pub mean_hits: f64,
    /// Arena node count (diagnostic).
    pub nodes: usize,
    /// Tree depth (diagnostic; tracks the quadtree's clustered degradation).
    pub depth: usize,
}

/// Builds a QUAD or CUTTING tree over `planes` with the default configs and
/// times `repetitions` passes over `probes` through the zero-alloc
/// `query_into` path.
pub fn run_tree_probes(
    kind: IntersectionIndexKind,
    planes: &[Hyperplane],
    cell: BoundingBox,
    probes: &[BoundingBox],
    repetitions: usize,
) -> TreeProbeMeasurement {
    run_tree_probes_configured(
        kind,
        planes,
        cell,
        probes,
        repetitions,
        QuadtreeConfig::default(),
        CuttingTreeConfig::default(),
    )
}

/// [`run_tree_probes`] with explicit tree configs, so sweeps can compare
/// split/cut strategies (e.g. the legacy midpoint rules vs the adaptive
/// defaults) on the same workload.
pub fn run_tree_probes_configured(
    kind: IntersectionIndexKind,
    planes: &[Hyperplane],
    cell: BoundingBox,
    probes: &[BoundingBox],
    repetitions: usize,
    quad_config: QuadtreeConfig,
    cutting_config: CuttingTreeConfig,
) -> TreeProbeMeasurement {
    assert!(repetitions > 0, "repetitions must be positive");
    assert!(!probes.is_empty(), "probe set must be non-empty");
    enum Tree {
        Quad(HyperplaneQuadtree),
        Cutting(CuttingTree),
    }
    let build_start = Instant::now();
    let tree = match kind {
        IntersectionIndexKind::Quadtree => {
            Tree::Quad(HyperplaneQuadtree::build(planes, cell, quad_config))
        }
        IntersectionIndexKind::CuttingTree => {
            Tree::Cutting(CuttingTree::build(planes, cell, cutting_config))
        }
    };
    let build_secs = build_start.elapsed().as_secs_f64();
    let (nodes, depth) = match &tree {
        Tree::Quad(t) => (t.node_count(), t.depth()),
        Tree::Cutting(t) => (t.node_count(), t.depth()),
    };
    let mut scratch = TraversalScratch::new();
    let mut out = Vec::new();
    let mut hits = 0usize;
    let mut best_pass = f64::INFINITY;
    for _ in 0..repetitions {
        hits = 0;
        let start = Instant::now();
        for b in probes {
            match &tree {
                Tree::Quad(t) => t.query_into(b.lo(), b.hi(), &mut scratch, &mut out),
                Tree::Cutting(t) => t.query_into(b.lo(), b.hi(), &mut scratch, &mut out),
            }
            hits += out.len();
        }
        best_pass = best_pass.min(start.elapsed().as_secs_f64());
    }
    TreeProbeMeasurement {
        build_secs,
        probe_secs: best_pass / probes.len() as f64,
        mean_hits: hits as f64 / probes.len() as f64,
        nodes,
        depth,
    }
}

/// Seconds per probe (minimum over repetition passes) answering `boxes` one
/// at a time through the scratch-reusing single-probe path.
pub fn run_index_probes(
    index: &EclipseIndex,
    boxes: &[WeightRatioBox],
    repetitions: usize,
) -> Measurement {
    assert!(repetitions > 0, "repetitions must be positive");
    assert!(!boxes.is_empty(), "probe set must be non-empty");
    let mut scratch = ProbeScratch::new();
    let mut size = 0usize;
    let mut best_pass = f64::INFINITY;
    for _ in 0..repetitions {
        let start = Instant::now();
        for b in boxes {
            size = index
                .query_with_scratch(b, &mut scratch)
                .expect("valid workload")
                .len();
        }
        best_pass = best_pass.min(start.elapsed().as_secs_f64());
    }
    Measurement {
        query_secs: best_pass / boxes.len() as f64,
        build_secs: 0.0,
        result_size: size,
    }
}

/// Seconds per probe (minimum over repetition passes) answering `boxes` as
/// one batch per repetition through [`EclipseIndex::query_batch`] on `ctx`.
pub fn run_index_probes_batched(
    index: &EclipseIndex,
    boxes: &[WeightRatioBox],
    ctx: &ExecutionContext,
    repetitions: usize,
) -> Measurement {
    assert!(repetitions > 0, "repetitions must be positive");
    assert!(!boxes.is_empty(), "probe set must be non-empty");
    let mut size = 0usize;
    let mut best_pass = f64::INFINITY;
    for _ in 0..repetitions {
        let start = Instant::now();
        let results = index.query_batch(boxes, ctx).expect("valid workload");
        best_pass = best_pass.min(start.elapsed().as_secs_f64());
        size = results.last().map_or(0, Vec::len);
    }
    Measurement {
        query_secs: best_pass / boxes.len() as f64,
        build_secs: 0.0,
        result_size: size,
    }
}

/// Formats a duration in seconds the way the paper's log-scale plots are
/// usually read (3 significant digits, scientific for very small values).
pub fn format_secs(secs: f64) -> String {
    if secs == 0.0 {
        "0".to_string()
    } else if secs < 1e-3 {
        format!("{secs:.3e}")
    } else {
        format!("{secs:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{default_ratio_box, DatasetFamily};

    #[test]
    fn competitors_agree_on_a_small_workload() {
        let pts = DatasetFamily::Inde.generate(200, 3, 11);
        let b = default_ratio_box(3);
        let sizes: Vec<usize> = Competitor::all()
            .into_iter()
            .map(|c| run_competitor(c, &pts, &b).result_size)
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "sizes {sizes:?}");
    }

    #[test]
    fn repeated_runs_average_and_reuse_index() {
        let pts = DatasetFamily::Corr.generate(300, 3, 3);
        let b = default_ratio_box(3);
        let m = run_competitor_repeated(Competitor::Quad, &pts, &b, 3);
        assert!(m.build_secs > 0.0);
        assert!(m.query_secs >= 0.0);
        let t = run_competitor_repeated(Competitor::Tran, &pts, &b, 2);
        assert_eq!(t.build_secs, 0.0);
        assert_eq!(t.result_size, m.result_size);
    }

    #[test]
    fn executor_sweep_agrees_across_thread_counts() {
        let pts = DatasetFamily::Inde.generate(400, 3, 7);
        let serial_sizes: Vec<usize> = skyline_executors(1)
            .iter()
            .map(|e| run_skyline_executor(e.as_ref(), &pts, 1).result_size)
            .collect();
        for threads in [2usize, 4] {
            let sizes: Vec<usize> = skyline_executors(threads)
                .iter()
                .map(|e| run_skyline_executor(e.as_ref(), &pts, 1).result_size)
                .collect();
            assert_eq!(sizes, serial_sizes, "threads = {threads}");
        }
        let b = default_ratio_box(3);
        let t1 = run_tran_at_threads(&pts, &b, 1, 1);
        let t4 = run_tran_at_threads(&pts, &b, 4, 1);
        assert_eq!(t1.result_size, t4.result_size);
    }

    #[test]
    fn probe_runners_agree_across_paths() {
        use crate::workloads::{
            hyperplane_workload, probe_boxes, probe_ratio_boxes, probe_root_cell, HyperplaneFamily,
        };
        let planes = hyperplane_workload(HyperplaneFamily::Uniform, 400, 2, 5);
        let probes = probe_boxes(10, 2, 0.1, 6);
        let quad = run_tree_probes(
            IntersectionIndexKind::Quadtree,
            &planes,
            probe_root_cell(2),
            &probes,
            2,
        );
        let cutting = run_tree_probes(
            IntersectionIndexKind::CuttingTree,
            &planes,
            probe_root_cell(2),
            &probes,
            2,
        );
        // Both backends are exact, so they report identical hit counts.
        assert_eq!(quad.mean_hits, cutting.mean_hits);
        assert!(quad.build_secs > 0.0 && cutting.build_secs > 0.0);
        assert!(quad.nodes >= 1 && cutting.nodes >= 1);

        let pts = DatasetFamily::Inde.generate(300, 3, 11);
        let idx = EclipseIndex::build(&pts, IndexConfig::default()).expect("valid workload");
        let boxes = probe_ratio_boxes(8, 3, 12);
        let single = run_index_probes(&idx, &boxes, 2);
        let batched = run_index_probes_batched(&idx, &boxes, &ExecutionContext::serial(), 2);
        assert_eq!(single.result_size, batched.result_size);
    }

    #[test]
    fn label_and_format_helpers() {
        assert_eq!(Competitor::Base.label(), "BASE");
        assert_eq!(Competitor::index_based().len(), 2);
        assert_eq!(format_secs(0.0), "0");
        assert!(format_secs(5e-5).contains('e'));
        assert_eq!(format_secs(0.1234567), "0.1235");
    }
}
