//! Shared experiment-harness utilities for the eclipse benchmarks.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod harness;
pub mod workloads;
