//! Shared experiment-harness utilities for the eclipse benchmarks.

#![forbid(unsafe_code)]

pub mod harness;
pub mod workloads;
