//! Serial vs parallel skyline executors (the `eclipse-exec` substrate) at
//! n ∈ {10k, 100k} and threads ∈ {1, 2, 4, 8} on the 4-dimensional INDE
//! workload.  The acceptance benchmark of the parallel-substrate PR: on a
//! multi-core host, `DC/threads=4` at n = 100k must beat `DC/serial`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use eclipse_bench::workloads::DatasetFamily;
use eclipse_exec::ThreadPool;
use eclipse_skyline::exec::{
    ParallelBnl, ParallelDc, ParallelSfs, SerialBnl, SerialDc, SerialSfs, SkylineExecutor,
};

const SEED: u64 = 20210614;
const D: usize = 4;
const SIZES: [usize; 2] = [10_000, 100_000];
const THREADS: [usize; 3] = [2, 4, 8];

fn bench_parallel_skyline(c: &mut Criterion) {
    for n in SIZES {
        let points = DatasetFamily::Inde.generate(n, D, SEED);
        let mut group = c.benchmark_group(format!("parallel/skyline/n={n}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(300));
        group.measurement_time(std::time::Duration::from_millis(1500));

        let serial: [(&str, Box<dyn SkylineExecutor>); 3] = [
            ("BNL", Box::new(SerialBnl)),
            ("SFS", Box::new(SerialSfs)),
            ("DC", Box::new(SerialDc)),
        ];
        for (label, exec) in &serial {
            group.bench_function(BenchmarkId::new(*label, "serial"), |b| {
                b.iter(|| exec.skyline(black_box(&points)))
            });
        }

        for threads in THREADS {
            let pool = Arc::new(ThreadPool::with_threads(threads));
            let parallel: [(&str, Box<dyn SkylineExecutor>); 3] = [
                ("BNL", Box::new(ParallelBnl::new(pool.clone()))),
                ("SFS", Box::new(ParallelSfs::new(pool.clone()))),
                ("DC", Box::new(ParallelDc::new(pool.clone()))),
            ];
            for (label, exec) in &parallel {
                group.bench_function(
                    BenchmarkId::new(*label, format!("threads={threads}")),
                    |b| b.iter(|| exec.skyline(black_box(&points))),
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_parallel_skyline);
criterion_main!(benches);
