//! Figure 14 — worst-case query time of QUAD vs CUTTING while varying the
//! dimensionality (clustered dataset, n = 2^7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eclipse_bench::workloads::{default_ratio_box, worst_case_dataset};
use eclipse_core::index::{EclipseIndex, IndexConfig, IntersectionIndexKind};

const SEED: u64 = 20210614;
const D_VALUES: [usize; 3] = [3, 4, 5];

fn bench_fig14(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14/worst-case-vary-d");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for &d in &D_VALUES {
        let points = worst_case_dataset(1 << 7, d, SEED);
        let ratio_box = default_ratio_box(d);
        let quad = EclipseIndex::build(
            &points,
            IndexConfig::with_kind(IntersectionIndexKind::Quadtree),
        )
        .unwrap();
        let cutting = EclipseIndex::build(
            &points,
            IndexConfig::with_kind(IntersectionIndexKind::CuttingTree),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("QUAD", d), &d, |b, _| {
            b.iter(|| quad.query(black_box(&ratio_box)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("CUTTING", d), &d, |b, _| {
            b.iter(|| cutting.query(black_box(&ratio_box)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
