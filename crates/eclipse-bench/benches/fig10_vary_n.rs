//! Figure 10 — query time of BASE / TRAN / QUAD / CUTTING while varying the
//! number of points n (d = 3, r ∈ [0.36, 2.75]) on the CORR, INDE, ANTI and
//! NBA datasets.
//!
//! Criterion gives per-(dataset, algorithm, n) timings; the companion
//! `experiments` binary prints the same series as one table per dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eclipse_bench::workloads::{default_ratio_box, DatasetFamily, DEFAULT_D};
use eclipse_core::algo::baseline::eclipse_baseline;
use eclipse_core::algo::transform::{eclipse_transform, SkylineBackend};
use eclipse_core::index::{EclipseIndex, IndexConfig, IntersectionIndexKind};

const SEED: u64 = 20210614;
/// Bench sweep: kept to sizes where even the quadratic baseline finishes in
/// reasonable wall-clock time; the experiments binary covers larger n.
const N_VALUES: [usize; 3] = [1 << 7, 1 << 9, 1 << 11];

fn bench_fig10(c: &mut Criterion) {
    for family in DatasetFamily::all() {
        let mut group = c.benchmark_group(format!("fig10/{}", family.label()));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(300));
        group.measurement_time(std::time::Duration::from_millis(1200));
        for &n in &N_VALUES {
            let points = family.generate(n, DEFAULT_D, SEED);
            let ratio_box = default_ratio_box(DEFAULT_D);

            group.bench_with_input(BenchmarkId::new("BASE", n), &n, |b, _| {
                b.iter(|| eclipse_baseline(black_box(&points), black_box(&ratio_box)).unwrap())
            });
            group.bench_with_input(BenchmarkId::new("TRAN", n), &n, |b, _| {
                b.iter(|| {
                    eclipse_transform(
                        black_box(&points),
                        black_box(&ratio_box),
                        SkylineBackend::Auto,
                    )
                    .unwrap()
                })
            });
            let quad = EclipseIndex::build(
                &points,
                IndexConfig::with_kind(IntersectionIndexKind::Quadtree),
            )
            .unwrap();
            group.bench_with_input(BenchmarkId::new("QUAD", n), &n, |b, _| {
                b.iter(|| quad.query(black_box(&ratio_box)).unwrap())
            });
            let cutting = EclipseIndex::build(
                &points,
                IndexConfig::with_kind(IntersectionIndexKind::CuttingTree),
            )
            .unwrap();
            group.bench_with_input(BenchmarkId::new("CUTTING", n), &n, |b, _| {
                b.iter(|| cutting.query(black_box(&ratio_box)).unwrap())
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
