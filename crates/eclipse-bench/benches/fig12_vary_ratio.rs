//! Figure 12 — query time of the index-based algorithms (QUAD, CUTTING)
//! while varying the attribute-weight-ratio range (n = 2^10 / NBA n = 1000,
//! d = 3).  Wider ranges intersect more hyperplanes and are therefore slower.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eclipse_bench::workloads::{
    ratio_box, DatasetFamily, DEFAULT_D, DEFAULT_N, DEFAULT_NBA_N, PAPER_RATIO_RANGES,
};
use eclipse_core::index::{EclipseIndex, IndexConfig, IntersectionIndexKind};

const SEED: u64 = 20210614;

fn bench_fig12(c: &mut Criterion) {
    for family in DatasetFamily::all() {
        let n = if family == DatasetFamily::Nba {
            DEFAULT_NBA_N
        } else {
            DEFAULT_N
        };
        let points = family.generate(n, DEFAULT_D, SEED);
        let quad = EclipseIndex::build(
            &points,
            IndexConfig::with_kind(IntersectionIndexKind::Quadtree),
        )
        .unwrap();
        let cutting = EclipseIndex::build(
            &points,
            IndexConfig::with_kind(IntersectionIndexKind::CuttingTree),
        )
        .unwrap();

        let mut group = c.benchmark_group(format!("fig12/{}", family.label()));
        group.sample_size(20);
        group.warm_up_time(std::time::Duration::from_millis(300));
        group.measurement_time(std::time::Duration::from_millis(1200));
        for (lo, hi) in PAPER_RATIO_RANGES {
            let b = ratio_box(DEFAULT_D, lo, hi);
            let label = format!("[{lo},{hi}]");
            group.bench_with_input(BenchmarkId::new("QUAD", &label), &b, |bench, rb| {
                bench.iter(|| quad.query(black_box(rb)).unwrap())
            });
            group.bench_with_input(BenchmarkId::new("CUTTING", &label), &b, |bench, rb| {
                bench.iter(|| cutting.query(black_box(rb)).unwrap())
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
