//! Intersection-index hot-path bench: single-probe and batched query
//! throughput of the arena-backed QUAD/CUTTING trees.
//!
//! Two levels are measured, matching `experiments -- probes`:
//!
//! * **tree level** — synthetic hyperplane sets (uniform / clustered /
//!   anticorrelated, n ∈ {10k, 100k}) probed with small boxes through the
//!   zero-alloc `query_into` path.  The 100k clustered single-probe number is
//!   the acceptance benchmark of the arena refactor (≥2x over the pre-arena
//!   boxed trees, see BENCH_pr3.json).
//! * **eclipse level** — end-to-end `EclipseIndex` probes on INDE data
//!   (bounded skyline), single scratch-reusing probes vs `query_batch`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eclipse_bench::workloads::{
    hyperplane_workload, probe_boxes, probe_ratio_boxes, probe_root_cell, DatasetFamily,
    HyperplaneFamily,
};
use eclipse_core::exec::ExecutionContext;
use eclipse_core::index::{EclipseIndex, IndexConfig, IntersectionIndexKind, ProbeScratch};
use eclipse_geom::cutting::{CuttingTree, CuttingTreeConfig};
use eclipse_geom::quadtree::{HyperplaneQuadtree, QuadtreeConfig};
use eclipse_geom::traverse::TraversalScratch;

const SEED: u64 = 20210614;
const K: usize = 2; // ratio-space dimensionality (d = 3)
const SIZES: [usize; 2] = [10_000, 100_000];
const NUM_PROBES: usize = 64;

fn bench_tree_probes(c: &mut Criterion) {
    let probes = probe_boxes(NUM_PROBES, K, 0.05, SEED + 1);
    for family in HyperplaneFamily::all() {
        for n in SIZES {
            let planes = hyperplane_workload(family, n, K, SEED);
            let mut group = c.benchmark_group(format!("index_query/tree/{}/n={n}", family.label()));
            group.sample_size(10);
            group.warm_up_time(std::time::Duration::from_millis(200));
            group.measurement_time(std::time::Duration::from_millis(1200));

            let quad =
                HyperplaneQuadtree::build(&planes, probe_root_cell(K), QuadtreeConfig::default());
            let mut scratch = TraversalScratch::new();
            let mut out = Vec::new();
            group.bench_function(BenchmarkId::new("QUAD", "single"), |b| {
                b.iter(|| {
                    for q in &probes {
                        quad.query_into(q.lo(), q.hi(), &mut scratch, &mut out);
                        black_box(out.len());
                    }
                })
            });

            let cutting =
                CuttingTree::build(&planes, probe_root_cell(K), CuttingTreeConfig::default());
            group.bench_function(BenchmarkId::new("CUTTING", "single"), |b| {
                b.iter(|| {
                    for q in &probes {
                        cutting.query_into(q.lo(), q.hi(), &mut scratch, &mut out);
                        black_box(out.len());
                    }
                })
            });
            group.finish();
        }
    }
}

fn bench_eclipse_probes(c: &mut Criterion) {
    let boxes = probe_ratio_boxes(NUM_PROBES, K + 1, SEED + 2);
    for n in SIZES {
        let points = DatasetFamily::Inde.generate(n, K + 1, SEED);
        let mut group = c.benchmark_group(format!("index_query/eclipse/INDE/n={n}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(200));
        group.measurement_time(std::time::Duration::from_millis(1200));
        for kind in [
            IntersectionIndexKind::Quadtree,
            IntersectionIndexKind::CuttingTree,
        ] {
            let label = match kind {
                IntersectionIndexKind::Quadtree => "QUAD",
                IntersectionIndexKind::CuttingTree => "CUTTING",
            };
            let index =
                EclipseIndex::build(&points, IndexConfig::with_kind(kind)).expect("valid build");
            let mut scratch = ProbeScratch::new();
            group.bench_function(BenchmarkId::new(label, "single"), |b| {
                b.iter(|| {
                    for q in &boxes {
                        black_box(
                            index
                                .query_with_scratch(q, &mut scratch)
                                .expect("valid probe")
                                .len(),
                        );
                    }
                })
            });
            for threads in [1usize, 4] {
                let ctx = ExecutionContext::with_threads(threads);
                group.bench_function(
                    BenchmarkId::new(label, format!("batch/threads={threads}")),
                    |b| b.iter(|| black_box(index.query_batch(&boxes, &ctx).expect("valid batch"))),
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_tree_probes, bench_eclipse_probes);
criterion_main!(benches);
