//! Ablation bench for the skyline substrate: BNL vs SFS vs divide-and-conquer
//! on the three synthetic distributions, plus the transformation mapping cost
//! in isolation.  Not a figure of the paper, but it backs the design choice
//! (DESIGN.md §6) of using the divide-and-conquer skyline inside TRAN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eclipse_bench::workloads::{default_ratio_box, DatasetFamily, DEFAULT_D};
use eclipse_core::algo::transform::transform_point;
use eclipse_skyline::{skyline_bnl, skyline_dc, skyline_sfs};

const SEED: u64 = 20210614;
const N: usize = 1 << 12;

fn bench_skyline_substrate(c: &mut Criterion) {
    for family in [
        DatasetFamily::Corr,
        DatasetFamily::Inde,
        DatasetFamily::Anti,
    ] {
        let points = family.generate(N, DEFAULT_D, SEED);
        let mut group = c.benchmark_group(format!("substrate/skyline/{}", family.label()));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(300));
        group.measurement_time(std::time::Duration::from_millis(1200));
        group.bench_function(BenchmarkId::new("BNL", N), |b| {
            b.iter(|| skyline_bnl(black_box(&points)))
        });
        group.bench_function(BenchmarkId::new("SFS", N), |b| {
            b.iter(|| skyline_sfs(black_box(&points)))
        });
        group.bench_function(BenchmarkId::new("DC", N), |b| {
            b.iter(|| skyline_dc(black_box(&points)))
        });
        group.finish();
    }

    // Cost of the TRAN mapping alone (Lines 1–4 of Algorithm 3).
    let points = DatasetFamily::Inde.generate(N, DEFAULT_D, SEED);
    let ratio_box = default_ratio_box(DEFAULT_D);
    let mut group = c.benchmark_group("substrate/transform-mapping");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.bench_function("map-all-points", |b| {
        b.iter(|| {
            points
                .iter()
                .map(|p| transform_point(black_box(p), black_box(&ratio_box)))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_skyline_substrate);
criterion_main!(benches);
