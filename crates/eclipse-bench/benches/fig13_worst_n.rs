//! Figure 13 — worst-case query time of QUAD vs CUTTING while varying the
//! number of points (clustered dataset, d = 3).  On this workload every point
//! is a skyline point and all dual hyperplanes crowd into the same region,
//! which degrades the quadtree while the cutting tree's sampled median cuts
//! stay balanced.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eclipse_bench::workloads::{default_ratio_box, worst_case_dataset};
use eclipse_core::index::{EclipseIndex, IndexConfig, IntersectionIndexKind};

const SEED: u64 = 20210614;
const N_VALUES: [usize; 3] = [1 << 7, 1 << 8, 1 << 9];

fn bench_fig13(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13/worst-case-vary-n");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for &n in &N_VALUES {
        let points = worst_case_dataset(n, 3, SEED);
        let ratio_box = default_ratio_box(3);
        let quad = EclipseIndex::build(
            &points,
            IndexConfig::with_kind(IntersectionIndexKind::Quadtree),
        )
        .unwrap();
        let cutting = EclipseIndex::build(
            &points,
            IndexConfig::with_kind(IntersectionIndexKind::CuttingTree),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("QUAD", n), &n, |b, _| {
            b.iter(|| quad.query(black_box(&ratio_box)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("CUTTING", n), &n, |b, _| {
            b.iter(|| cutting.query(black_box(&ratio_box)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
