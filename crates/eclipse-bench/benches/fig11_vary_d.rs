//! Figure 11 — query time of BASE / TRAN / QUAD / CUTTING while varying the
//! dimensionality d (n = 2^10 for the synthetic datasets, n = 1000 for NBA,
//! r ∈ [0.36, 2.75]).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use eclipse_bench::workloads::{default_ratio_box, DatasetFamily, DEFAULT_N, DEFAULT_NBA_N};
use eclipse_core::algo::baseline::eclipse_baseline;
use eclipse_core::algo::transform::{eclipse_transform, SkylineBackend};
use eclipse_core::index::{EclipseIndex, IndexConfig, IntersectionIndexKind};

const SEED: u64 = 20210614;
const D_VALUES: [usize; 4] = [2, 3, 4, 5];

fn bench_fig11(c: &mut Criterion) {
    for family in DatasetFamily::all() {
        let n = if family == DatasetFamily::Nba {
            DEFAULT_NBA_N
        } else {
            DEFAULT_N
        };
        let mut group = c.benchmark_group(format!("fig11/{}", family.label()));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(300));
        group.measurement_time(std::time::Duration::from_millis(1200));
        for &d in &D_VALUES {
            let points = family.generate(n, d, SEED);
            let ratio_box = default_ratio_box(d);

            group.bench_with_input(BenchmarkId::new("BASE", d), &d, |b, _| {
                b.iter(|| eclipse_baseline(black_box(&points), black_box(&ratio_box)).unwrap())
            });
            group.bench_with_input(BenchmarkId::new("TRAN", d), &d, |b, _| {
                b.iter(|| {
                    eclipse_transform(
                        black_box(&points),
                        black_box(&ratio_box),
                        SkylineBackend::Auto,
                    )
                    .unwrap()
                })
            });
            let quad = EclipseIndex::build(
                &points,
                IndexConfig::with_kind(IntersectionIndexKind::Quadtree),
            )
            .unwrap();
            group.bench_with_input(BenchmarkId::new("QUAD", d), &d, |b, _| {
                b.iter(|| quad.query(black_box(&ratio_box)).unwrap())
            });
            let cutting = EclipseIndex::build(
                &points,
                IndexConfig::with_kind(IntersectionIndexKind::CuttingTree),
            )
            .unwrap();
            group.bench_with_input(BenchmarkId::new("CUTTING", d), &d, |b, _| {
                b.iter(|| cutting.query(black_box(&ratio_box)).unwrap())
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
