//! `eclipse-persist` — the versioned binary snapshot format shared by every
//! persistable structure in the eclipse workspace.
//!
//! The ROADMAP's heavy-traffic north star needs warm restarts: rebuilding
//! every intersection index from raw points on a process bounce pays the full
//! construction cost per dataset.  The flat-arena index representation is a
//! byte-stable layout, so snapshotting it is mostly a framing problem — and
//! this crate is that framing, kept deliberately tiny and std-only (no serde):
//!
//! * a **container**: magic + format version + a section table, every section
//!   tagged, length-prefixed and protected by an FNV-1a checksum over its tag
//!   and payload ([`SnapshotWriter`] / [`SnapshotReader`]);
//! * **primitives**: fixed-width little-endian integers, `f64` as its IEEE-754
//!   bit pattern (so infinities and signed zeros round-trip exactly), and
//!   `u32`-length-prefixed UTF-8 strings ([`enc`] / [`Cursor`]);
//! * a **total decoder**: truncations, bit flips, garbage headers, hostile
//!   element counts and trailing bytes all surface as typed [`PersistError`]
//!   values — never a panic, and never an allocation larger than the bytes
//!   actually present (element counts are validated against the remaining
//!   payload before any buffer is reserved, exactly like the serve codec).
//!
//! # Container layout
//!
//! ```text
//! snapshot := magic[8] version:u32le section_count:u32le section*
//! section  := tag:u8 len:u64le checksum:u64le payload[len]
//! ```
//!
//! `checksum` is [`section_checksum`] over the tag byte followed by the
//! payload, so a bit flip anywhere in a section — including its tag — fails
//! verification.  Unknown section tags are preserved and ignored by readers
//! (consumers look sections up by tag), which lets future format minor
//! additions coexist with old readers.  Writers always emit
//! [`FORMAT_VERSION`]; readers accept every version from
//! [`MIN_SUPPORTED_VERSION`] up to it (the parsed version is exposed via
//! [`SnapshotReader::version`] so consumers can decode older section
//! payloads), and anything newer is rejected outright.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::fmt;

/// The 8-byte magic prefix of every snapshot file.
pub const MAGIC: [u8; 8] = *b"ECLSNAP\0";

/// The format version this crate writes.
///
/// Version history:
/// * **1** — initial container; tree configs carry no split-strategy fields
///   (builders always used midpoint quadrant splits / sampled-crossing cuts).
/// * **2** — tree configs gained explicit split-strategy fields (hybrid
///   adaptive splits); version-1 payloads decode with the legacy strategies.
/// * **3** — engine dataset sections gained a trailing mutation-epoch
///   counter (version-1/2 payloads decode with epoch 0: they predate
///   mutability), and section checksums became version-bound so header
///   version flips are detected (see [`section_checksum_versioned`]).
pub const FORMAT_VERSION: u32 = 3;

/// The oldest format version readers still accept.
pub const MIN_SUPPORTED_VERSION: u32 = 1;

/// Everything that can go wrong while decoding a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The header names a format version this reader does not speak.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The buffer ended before a field could be read in full.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were actually left.
        remaining: usize,
    },
    /// The container decoded cleanly but bytes were left over.
    TrailingBytes(usize),
    /// A section's stored checksum does not match its bytes.
    ChecksumMismatch {
        /// Tag of the corrupted section.
        section: u8,
    },
    /// A section the consumer requires is absent.
    MissingSection {
        /// Tag of the absent section.
        section: u8,
    },
    /// An unrecognized enum tag inside a section payload.
    UnknownTag {
        /// Which field carried the tag.
        context: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A structurally valid but semantically impossible value (an element
    /// count larger than the remaining bytes, bad UTF-8, an inconsistent
    /// cross-reference, …).
    Malformed(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not an eclipse snapshot (bad magic)"),
            PersistError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot format version {found} (this reader speaks {FORMAT_VERSION})"
                )
            }
            PersistError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated snapshot: needed {needed} bytes, {remaining} left"
                )
            }
            PersistError::TrailingBytes(n) => write!(f, "{n} trailing bytes after snapshot"),
            PersistError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section:#04x}")
            }
            PersistError::MissingSection { section } => {
                write!(f, "required section {section:#04x} is missing")
            }
            PersistError::UnknownTag { context, tag } => {
                write!(f, "unknown {context} tag {tag:#04x}")
            }
            PersistError::Malformed(reason) => write!(f, "malformed snapshot: {reason}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Result alias for decode operations.
pub type PersistResult<T> = std::result::Result<T, PersistError>;

/// FNV-1a over a byte slice — the (non-cryptographic) integrity check of
/// every snapshot section.  Deliberately simple: it catches the accidental
/// corruption this format defends against (truncated writes, bit rot, stray
/// edits), while crafted-but-checksummed input is handled by the consumers'
/// structural validation.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continues an FNV-1a hash over more bytes (`state` is a previous return
/// value, or the FNV offset basis to start).
pub fn fnv1a_extend(state: u64, bytes: &[u8]) -> u64 {
    let mut hash = state;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The checksum stored with a section: FNV-1a over the tag byte followed by
/// the payload, so tag flips are caught too.
pub fn section_checksum(tag: u8, payload: &[u8]) -> u64 {
    fnv1a_extend(fnv1a(&[tag]), payload)
}

/// The version-bound section checksum used from format version 3 on: the
/// container version is hashed ahead of the tag and payload, so a bit flip
/// in the header's version field (which would otherwise silently re-route
/// decoding through an older layout) fails verification on every section.
/// Versions 1 and 2 keep the historical version-free checksum.
pub fn section_checksum_versioned(version: u32, tag: u8, payload: &[u8]) -> u64 {
    if version >= 3 {
        fnv1a_extend(fnv1a_extend(fnv1a(&version.to_le_bytes()), &[tag]), payload)
    } else {
        section_checksum(tag, payload)
    }
}

/// Little-endian encoding primitives (the writer side of [`Cursor`]).
pub mod enc {
    /// Appends one byte.
    pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
        buf.push(v);
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64` little-endian.
    pub fn put_usize(buf: &mut Vec<u8>, v: usize) {
        put_u64(buf, v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern in `u64le` — infinities,
    /// NaN payloads and signed zeros round-trip bit-exactly.
    pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
        put_u64(buf, v.to_bits());
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    ///
    /// # Panics
    /// Panics if the string is longer than `u32::MAX` bytes.
    pub fn put_str(buf: &mut Vec<u8>, s: &str) {
        put_u32(
            buf,
            u32::try_from(s.len()).expect("string fits a u32 length"),
        );
        buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked cursor over a section payload.  Every read either returns
/// the decoded value or a typed [`PersistError`]; nothing panics and no read
/// allocates more than the bytes actually present.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes the next `n` bytes.
    ///
    /// # Errors
    /// [`PersistError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> PersistResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// [`PersistError::Truncated`] at end of payload.
    pub fn u8(&mut self) -> PersistResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32le`.
    ///
    /// # Errors
    /// [`PersistError::Truncated`] at end of payload.
    pub fn u32(&mut self) -> PersistResult<u32> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
    }

    /// Reads a `u64le`.
    ///
    /// # Errors
    /// [`PersistError::Truncated`] at end of payload.
    pub fn u64(&mut self) -> PersistResult<u64> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    /// Reads a `u64le` and converts it to `usize`.
    ///
    /// # Errors
    /// [`PersistError::Truncated`] at end of payload;
    /// [`PersistError::Malformed`] when the value exceeds `usize`.
    pub fn usize64(&mut self) -> PersistResult<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| {
            PersistError::Malformed(format!("value {v} exceeds usize on this platform"))
        })
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    /// [`PersistError::Truncated`] at end of payload.
    pub fn f64(&mut self) -> PersistResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an element count (`u64le`) and validates it against the bytes
    /// actually remaining (`min_elem_bytes` per element, which must be ≥ 1),
    /// so a hostile count can never trigger an oversized allocation.
    ///
    /// # Errors
    /// [`PersistError::Malformed`] when the claimed count cannot fit in the
    /// remaining payload.
    pub fn count(&mut self, min_elem_bytes: usize) -> PersistResult<usize> {
        debug_assert!(min_elem_bytes >= 1, "elements occupy at least one byte");
        let count = self.u64()?;
        let needed = count.saturating_mul(min_elem_bytes as u64);
        if needed > self.remaining() as u64 {
            return Err(PersistError::Malformed(format!(
                "element count {count} needs at least {needed} bytes, {} left",
                self.remaining()
            )));
        }
        Ok(count as usize)
    }

    /// Reads exactly `n` `f64`s.
    ///
    /// # Errors
    /// [`PersistError::Truncated`] when fewer than `8·n` bytes remain.
    pub fn f64_vec(&mut self, n: usize) -> PersistResult<Vec<f64>> {
        let bytes = self.take(n.checked_mul(8).ok_or_else(|| {
            PersistError::Malformed(format!("f64 run of {n} elements overflows"))
        })?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))))
            .collect())
    }

    /// Reads exactly `n` `u32`s.
    ///
    /// # Errors
    /// [`PersistError::Truncated`] when fewer than `4·n` bytes remain.
    pub fn u32_vec(&mut self, n: usize) -> PersistResult<Vec<u32>> {
        let bytes = self.take(n.checked_mul(4).ok_or_else(|| {
            PersistError::Malformed(format!("u32 run of {n} elements overflows"))
        })?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect())
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// [`PersistError::Truncated`] / [`PersistError::Malformed`] on short or
    /// non-UTF-8 payloads.
    pub fn str(&mut self) -> PersistResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Malformed("string is not valid UTF-8".to_string()))
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    /// [`PersistError::TrailingBytes`] when bytes remain.
    pub fn finish(self) -> PersistResult<()> {
        if self.remaining() != 0 {
            return Err(PersistError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// Builds a snapshot container: sections are appended with
/// [`SnapshotWriter::section`] and the finished byte buffer (magic, version,
/// section table) is produced by [`SnapshotWriter::finish`].
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    sections: Vec<(u8, Vec<u8>)>,
}

impl SnapshotWriter {
    /// An empty container.
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    /// Appends one section.  Tags should be unique within a snapshot —
    /// [`SnapshotReader::parse`] rejects duplicates.
    pub fn section(&mut self, tag: u8, payload: Vec<u8>) {
        self.sections.push((tag, payload));
    }

    /// Serializes the container.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        enc::put_u32(&mut out, FORMAT_VERSION);
        enc::put_u32(
            &mut out,
            u32::try_from(self.sections.len()).expect("section count fits a u32"),
        );
        for (tag, payload) in &self.sections {
            enc::put_u8(&mut out, *tag);
            enc::put_u64(&mut out, payload.len() as u64);
            enc::put_u64(
                &mut out,
                section_checksum_versioned(FORMAT_VERSION, *tag, payload),
            );
            out.extend_from_slice(payload);
        }
        out
    }
}

/// Minimum serialized size of one section (tag + length + checksum), used to
/// validate the header's section count before walking the table.
const SECTION_HEADER_BYTES: usize = 1 + 8 + 8;

/// A parsed snapshot container: magic, version and every checksum verified,
/// section payloads exposed as zero-copy slices looked up by tag.
#[derive(Debug, PartialEq, Eq)]
pub struct SnapshotReader<'a> {
    version: u32,
    sections: Vec<(u8, &'a [u8])>,
}

impl<'a> SnapshotReader<'a> {
    /// Parses and fully verifies a container: magic, format version, the
    /// section table (every length validated against the bytes actually
    /// present before it is used), every section checksum, no duplicate
    /// tags, and exact consumption of the buffer.
    ///
    /// # Errors
    /// A typed [`PersistError`] for every possible defect; arbitrary input
    /// never panics and never allocates beyond the section table.
    pub fn parse(bytes: &'a [u8]) -> PersistResult<Self> {
        let mut cur = Cursor::new(bytes);
        let magic = cur.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = cur.u32()?;
        if !(MIN_SUPPORTED_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(PersistError::UnsupportedVersion { found: version });
        }
        let count = cur.u32()? as usize;
        if count.saturating_mul(SECTION_HEADER_BYTES) > cur.remaining() {
            return Err(PersistError::Malformed(format!(
                "section count {count} cannot fit in {} remaining bytes",
                cur.remaining()
            )));
        }
        let mut sections: Vec<(u8, &'a [u8])> = Vec::with_capacity(count);
        for _ in 0..count {
            let tag = cur.u8()?;
            let len = cur.u64()?;
            let checksum = cur.u64()?;
            if len > cur.remaining() as u64 {
                return Err(PersistError::Truncated {
                    needed: len.min(usize::MAX as u64) as usize,
                    remaining: cur.remaining(),
                });
            }
            let payload = cur.take(len as usize)?;
            if section_checksum_versioned(version, tag, payload) != checksum {
                return Err(PersistError::ChecksumMismatch { section: tag });
            }
            if sections.iter().any(|&(t, _)| t == tag) {
                return Err(PersistError::Malformed(format!(
                    "duplicate section tag {tag:#04x}"
                )));
            }
            sections.push((tag, payload));
        }
        cur.finish()?;
        Ok(SnapshotReader { version, sections })
    }

    /// The format version the container was written with (between
    /// [`MIN_SUPPORTED_VERSION`] and [`FORMAT_VERSION`] inclusive), so
    /// consumers can decode section payloads of older snapshots.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The payload of the section with the given tag.
    ///
    /// # Errors
    /// [`PersistError::MissingSection`] when absent.
    pub fn section(&self, tag: u8) -> PersistResult<&'a [u8]> {
        self.sections
            .iter()
            .find(|&&(t, _)| t == tag)
            .map(|&(_, payload)| payload)
            .ok_or(PersistError::MissingSection { section: tag })
    }

    /// Whether a section with the given tag is present.
    pub fn has(&self, tag: u8) -> bool {
        self.sections.iter().any(|&(t, _)| t == tag)
    }

    /// All sections in file order (unknown tags included).
    pub fn sections(&self) -> impl Iterator<Item = (u8, &'a [u8])> + '_ {
        self.sections.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        let mut a = Vec::new();
        enc::put_u32(&mut a, 7);
        enc::put_f64(&mut a, -0.0);
        enc::put_f64(&mut a, f64::INFINITY);
        enc::put_str(&mut a, "véctor ∞");
        w.section(0x01, a);
        w.section(0x7f, vec![1, 2, 3]);
        w.finish()
    }

    #[test]
    fn container_round_trips() {
        let bytes = sample();
        let r = SnapshotReader::parse(&bytes).unwrap();
        assert!(r.has(0x01) && r.has(0x7f) && !r.has(0x02));
        assert_eq!(r.sections().count(), 2);
        let mut cur = Cursor::new(r.section(0x01).unwrap());
        assert_eq!(cur.u32().unwrap(), 7);
        let z = cur.f64().unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits(), "signed zero survives");
        assert_eq!(cur.f64().unwrap(), f64::INFINITY);
        assert_eq!(cur.str().unwrap(), "véctor ∞");
        cur.finish().unwrap();
        assert_eq!(r.section(0x7f).unwrap(), &[1, 2, 3]);
        assert_eq!(
            r.section(0x02),
            Err(PersistError::MissingSection { section: 0x02 })
        );
    }

    #[test]
    fn every_truncation_errors_cleanly() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let err = SnapshotReader::parse(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes must not parse");
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[pos] ^= 1 << bit;
                assert!(
                    SnapshotReader::parse(&flipped).is_err(),
                    "flip at byte {pos} bit {bit} must be detected"
                );
            }
        }
    }

    #[test]
    fn bad_magic_and_versions_are_rejected() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert_eq!(SnapshotReader::parse(&bytes), Err(PersistError::BadMagic));

        let mut bytes = sample();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            SnapshotReader::parse(&bytes),
            Err(PersistError::UnsupportedVersion { found: 99 })
        );

        // Version 0 predates the format entirely.
        let mut bytes = sample();
        bytes[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            SnapshotReader::parse(&bytes),
            Err(PersistError::UnsupportedVersion { found: 0 })
        );
    }

    /// Re-stamps a container at `version`, recomputing every section
    /// checksum under that version's rule (checksums are version-bound from
    /// v3 on, so a bare header edit would no longer verify).
    fn restamp(bytes: &[u8], version: u32) -> Vec<u8> {
        let r = SnapshotReader::parse(bytes).unwrap();
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        enc::put_u32(&mut out, version);
        enc::put_u32(&mut out, r.sections.len() as u32);
        for &(tag, payload) in &r.sections {
            enc::put_u8(&mut out, tag);
            enc::put_u64(&mut out, payload.len() as u64);
            enc::put_u64(&mut out, section_checksum_versioned(version, tag, payload));
            out.extend_from_slice(payload);
        }
        out
    }

    #[test]
    fn every_supported_version_parses_and_is_reported() {
        for version in MIN_SUPPORTED_VERSION..=FORMAT_VERSION {
            let bytes = restamp(&sample(), version);
            let r = SnapshotReader::parse(&bytes)
                .unwrap_or_else(|e| panic!("version {version} must parse: {e}"));
            assert_eq!(r.version(), version);
            assert!(r.has(0x01));
        }
        // A freshly written container reports the current version.
        let bytes = sample();
        let r = SnapshotReader::parse(&bytes).unwrap();
        assert_eq!(r.version(), FORMAT_VERSION);
    }

    #[test]
    fn version_field_flips_fail_section_checksums() {
        // From v3 on the version participates in every section checksum, so
        // rewriting the header version without re-checksumming must fail —
        // this is what keeps single-bit flips of the version byte detectable
        // now that 3 has in-range single-bit neighbours (1 and 2).
        for other in MIN_SUPPORTED_VERSION..FORMAT_VERSION {
            let mut bytes = sample();
            bytes[8..12].copy_from_slice(&other.to_le_bytes());
            assert!(
                matches!(
                    SnapshotReader::parse(&bytes),
                    Err(PersistError::ChecksumMismatch { .. })
                ),
                "re-stamping v{FORMAT_VERSION} as v{other} without re-checksumming must fail"
            );
        }
    }

    #[test]
    fn hostile_section_counts_and_lengths_are_rejected_before_allocation() {
        // A header claiming u32::MAX sections in a tiny buffer.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        enc::put_u32(&mut bytes, FORMAT_VERSION);
        enc::put_u32(&mut bytes, u32::MAX);
        assert!(matches!(
            SnapshotReader::parse(&bytes),
            Err(PersistError::Malformed(_))
        ));

        // A section claiming u64::MAX payload bytes.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        enc::put_u32(&mut bytes, FORMAT_VERSION);
        enc::put_u32(&mut bytes, 1);
        enc::put_u8(&mut bytes, 0x01);
        enc::put_u64(&mut bytes, u64::MAX);
        enc::put_u64(&mut bytes, 0);
        assert!(matches!(
            SnapshotReader::parse(&bytes),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn duplicate_tags_and_trailing_bytes_are_rejected() {
        let mut w = SnapshotWriter::new();
        w.section(0x01, vec![]);
        w.section(0x01, vec![]);
        assert!(matches!(
            SnapshotReader::parse(&w.finish()),
            Err(PersistError::Malformed(m)) if m.contains("duplicate")
        ));

        let mut bytes = SnapshotWriter::new().finish();
        bytes.push(0);
        assert_eq!(
            SnapshotReader::parse(&bytes),
            Err(PersistError::TrailingBytes(1))
        );
    }

    #[test]
    fn cursor_counts_are_bounded_by_remaining_bytes() {
        let mut payload = Vec::new();
        enc::put_u64(&mut payload, u64::MAX); // hostile element count
        let mut cur = Cursor::new(&payload);
        assert!(matches!(cur.count(8), Err(PersistError::Malformed(_))));

        let mut payload = Vec::new();
        enc::put_u64(&mut payload, 2);
        enc::put_f64(&mut payload, 1.0);
        enc::put_f64(&mut payload, 2.0);
        let mut cur = Cursor::new(&payload);
        let n = cur.count(8).unwrap();
        assert_eq!(cur.f64_vec(n).unwrap(), vec![1.0, 2.0]);
        cur.finish().unwrap();
    }

    #[test]
    fn cursor_reads_are_total() {
        let mut cur = Cursor::new(&[1, 2]);
        assert!(matches!(cur.u32(), Err(PersistError::Truncated { .. })));
        let mut cur = Cursor::new(&[0xff, 0xff, 0xff, 0xff, b'a']);
        // String length far beyond the buffer.
        assert!(matches!(cur.str(), Err(PersistError::Truncated { .. })));
        // Non-UTF-8 string bytes.
        let mut payload = Vec::new();
        enc::put_u32(&mut payload, 2);
        payload.extend_from_slice(&[0xc3, 0x28]);
        let mut cur = Cursor::new(&payload);
        assert!(matches!(cur.str(), Err(PersistError::Malformed(_))));
    }

    #[test]
    fn fnv1a_is_stable() {
        // Reference vectors for the 64-bit FNV-1a parameters.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(section_checksum(0x01, b"xy"), {
            fnv1a_extend(fnv1a(&[0x01]), b"xy")
        });
    }

    #[test]
    fn errors_render() {
        for e in [
            PersistError::BadMagic,
            PersistError::UnsupportedVersion { found: 9 },
            PersistError::Truncated {
                needed: 8,
                remaining: 1,
            },
            PersistError::TrailingBytes(3),
            PersistError::ChecksumMismatch { section: 2 },
            PersistError::MissingSection { section: 4 },
            PersistError::UnknownTag {
                context: "backend",
                tag: 0x42,
            },
            PersistError::Malformed("x".to_string()),
        ] {
            assert!(!e.to_string().is_empty());
        }
        fn is_std_error(_: &dyn std::error::Error) {}
        is_std_error(&PersistError::BadMagic);
    }
}
