//! `eclipse-serve` — the batched query-serving layer of the eclipse
//! workspace.
//!
//! The ROADMAP's heavy-traffic north star needs the eclipse operator behind
//! a network boundary, not just in-process.  This crate provides the three
//! pieces:
//!
//! * [`protocol`] — a length-prefixed binary wire protocol with a tiny
//!   hand-rolled codec (std only, no serde): `LoadDataset`, `BuildIndex`,
//!   `QueryBatch`, `CountBatch`, `SaveIndex`, `RestoreIndex`, `Ping` and
//!   `Stats` requests with their responses.  Two framings share the
//!   envelope: v1 (bare body, responses in request order) and v2 (a
//!   `request_id`/`deadline_ms` header per frame, responses multiplexed
//!   out of order), negotiated by a `Hello` handshake on the first frame —
//!   connections that skip it stay on v1 unchanged.  Decoding is total —
//!   garbage bytes become [`protocol::ProtocolError`] values, never panics
//!   or oversized allocations;
//! * [`server`] — a readiness-driven event-loop server (non-blocking
//!   sockets, one loop thread, a FIFO worker pool; std only, no async
//!   runtime) holding one [`eclipse_core::EclipseEngine`] per registered
//!   dataset, all sharing one `eclipse-exec` pool.  Datasets are warmed
//!   (index built) at registration, and batches route through the engine's
//!   zero-allocation batched probe paths (`eclipse_query_batch` /
//!   `eclipse_count_batch`).  Flow control is typed end to end: per-request
//!   deadlines answered with `Timeout`, per-connection and global in-flight
//!   caps answered with `Overloaded`, and graceful shutdown that drains
//!   admitted requests before closing ([`ServerConfig`] holds the knobs).
//!   With a snapshot directory configured (`--snapshot-dir`), `SaveIndex`
//!   persists versioned dataset+index snapshots and a restarted server
//!   warm-loads them instead of rebuilding;
//! * [`client`] — the pipelining [`PipelinedClient`] (protocol v2, up to
//!   `pipe_size` requests in flight, replies correlated by request id) and
//!   the blocking [`Client`], a depth-1 v1 wrapper over the same machinery
//!   used by the integration tests, the examples and the
//!   `experiments -- serve` throughput sweeps.
//!
//! The `eclipse-serve` binary (this crate's `src/main.rs`) wraps
//! [`server::Server`] with address/thread/flow-control/preload flags.
//!
//! # Example (in-process round trip)
//!
//! ```
//! use eclipse_core::exec::ExecutionContext;
//! use eclipse_core::point::Point;
//! use eclipse_core::WeightRatioBox;
//! use eclipse_serve::client::Client;
//! use eclipse_serve::protocol::IndexKind;
//! use eclipse_serve::server::Server;
//!
//! let server = Server::bind("127.0.0.1:0", ExecutionContext::serial())?;
//! let handle = server.spawn()?;
//!
//! let mut client = Client::connect(handle.addr())?;
//! let hotels = vec![
//!     Point::new(vec![1.0, 6.0]),
//!     Point::new(vec![4.0, 4.0]),
//!     Point::new(vec![6.0, 1.0]),
//!     Point::new(vec![8.0, 5.0]),
//! ];
//! client.load_dataset("hotels", &hotels, IndexKind::Quadtree)?;
//! let results = client.query_batch(
//!     "hotels",
//!     &[WeightRatioBox::uniform(2, 0.25, 2.0)?],
//! )?;
//! assert_eq!(results, vec![vec![0, 1, 2]]);
//! handle.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod client;
mod event_loop;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, PipelinedClient};
pub use protocol::{IndexKind, MutationAck, MutationKind, Request, Response, StatsReport};
pub use server::{Server, ServerConfig, ServerHandle, SnapshotScan};
