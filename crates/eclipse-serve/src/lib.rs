//! `eclipse-serve` — the batched query-serving layer of the eclipse
//! workspace.
//!
//! The ROADMAP's heavy-traffic north star needs the eclipse operator behind
//! a network boundary, not just in-process.  This crate provides the three
//! pieces:
//!
//! * [`protocol`] — a length-prefixed binary wire protocol with a tiny
//!   hand-rolled codec (std only, no serde): `LoadDataset`, `BuildIndex`,
//!   `QueryBatch`, `CountBatch`, `SaveIndex`, `RestoreIndex`, `Ping` and
//!   `Stats` requests with their responses.  Decoding is total — garbage
//!   bytes become [`protocol::ProtocolError`] values, never panics or
//!   oversized allocations;
//! * [`server`] — a framed-TCP server holding one
//!   [`eclipse_core::EclipseEngine`] per registered dataset, all sharing one
//!   `eclipse-exec` pool.  Datasets are warmed (index built) at
//!   registration, and batches route through the engine's zero-allocation
//!   batched probe paths (`eclipse_query_batch` / `eclipse_count_batch`).
//!   With a snapshot directory configured (`--snapshot-dir`), `SaveIndex`
//!   persists versioned dataset+index snapshots and a restarted server
//!   warm-loads them instead of rebuilding;
//! * [`client`] — a small blocking client used by the integration tests,
//!   the examples and the `experiments -- serve` throughput sweep.
//!
//! The `eclipse-serve` binary (this crate's `src/main.rs`) wraps
//! [`server::Server`] with address/thread/preload flags.
//!
//! # Example (in-process round trip)
//!
//! ```
//! use eclipse_core::exec::ExecutionContext;
//! use eclipse_core::point::Point;
//! use eclipse_core::WeightRatioBox;
//! use eclipse_serve::client::Client;
//! use eclipse_serve::protocol::IndexKind;
//! use eclipse_serve::server::Server;
//!
//! let server = Server::bind("127.0.0.1:0", ExecutionContext::serial())?;
//! let handle = server.spawn()?;
//!
//! let mut client = Client::connect(handle.addr())?;
//! let hotels = vec![
//!     Point::new(vec![1.0, 6.0]),
//!     Point::new(vec![4.0, 4.0]),
//!     Point::new(vec![6.0, 1.0]),
//!     Point::new(vec![8.0, 5.0]),
//! ];
//! client.load_dataset("hotels", &hotels, IndexKind::Quadtree)?;
//! let results = client.query_batch(
//!     "hotels",
//!     &[WeightRatioBox::uniform(2, 0.25, 2.0)?],
//! )?;
//! assert_eq!(results, vec![vec![0, 1, 2]]);
//! handle.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use protocol::{IndexKind, Request, Response, StatsReport};
pub use server::{Server, ServerHandle, SnapshotScan};
