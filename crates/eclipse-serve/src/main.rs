//! The `eclipse-serve` binary: a framed-TCP eclipse query server.
//!
//! ```text
//! eclipse-serve [--addr HOST:PORT] [--threads N] [--snapshot-dir DIR]
//!               [--max-pipeline N] [--max-inflight N] [--idle-timeout-ms N]
//!               [--max-memory-mb N] [--preload NAME=FAMILY:N:D:SEED]...
//! ```
//!
//! * `--addr` — listen address, default `127.0.0.1:7878` (use port 0 for an
//!   ephemeral port; the bound address is printed on startup);
//! * `--threads` — size of the shared query pool (default: the
//!   `ECLIPSE_THREADS` environment variable, then the hardware);
//! * `--snapshot-dir` — enables the snapshot surface: `SaveIndex` persists
//!   dataset+index snapshots into DIR, and at startup every `*.eclsnap`
//!   file found there is warm-loaded (dataset registered, index restored)
//!   instead of rebuilt, so a process bounce skips construction cost;
//! * `--preload` — registers a synthetic dataset before serving, e.g.
//!   `--preload inde=inde:8192:3:42` (families: `corr`, `inde`, `anti`).
//!   Repeatable.  Remote clients can always register datasets with
//!   `LoadDataset`;
//! * `--max-pipeline` — per-connection in-flight cap (the largest pipeline
//!   depth a `Hello` can negotiate; default 128);
//! * `--max-inflight` — global in-flight cap across all connections
//!   (default 1024).  Requests over either cap are rejected with a typed
//!   `Overloaded` response instead of queueing unboundedly;
//! * `--idle-timeout-ms` — how long a freshly accepted connection may sit
//!   without sending a single complete frame before it is reaped (default
//!   30000; 0 disables reaping).  Connections that have spoken are never
//!   idle-reaped;
//! * `--max-memory-mb` — global memory budget for dataset engines (default:
//!   unbounded).  When accounted bytes exceed the budget the least-recently
//!   used datasets are snapshotted (requires `--snapshot-dir`) and evicted;
//!   the next request touching an evicted dataset restores it transparently.

use std::process::ExitCode;

use eclipse_core::exec::ExecutionContext;
use eclipse_data::synthetic::{Distribution, SyntheticConfig};
use eclipse_serve::protocol::IndexKind;
use eclipse_serve::server::{Server, ServerConfig};

struct Options {
    addr: String,
    threads: Option<usize>,
    snapshot_dir: Option<std::path::PathBuf>,
    max_pipeline: Option<u32>,
    max_in_flight: Option<u32>,
    idle_timeout_ms: Option<u64>,
    max_memory_mb: Option<u64>,
    preloads: Vec<(String, Distribution, usize, usize, u64)>,
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let exec = match opts.threads {
        Some(threads) => ExecutionContext::with_threads(threads),
        None => ExecutionContext::default(),
    };
    let threads = exec.threads();
    let mut config = ServerConfig::default();
    if let Some(cap) = opts.max_pipeline {
        config.max_pipeline = cap;
    }
    if let Some(cap) = opts.max_in_flight {
        config.max_in_flight = cap;
    }
    if let Some(ms) = opts.idle_timeout_ms {
        config.idle_timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
    }
    if let Some(mb) = opts.max_memory_mb {
        if opts.snapshot_dir.is_none() {
            eprintln!("eclipse-serve: --max-memory-mb requires --snapshot-dir (eviction persists datasets as snapshots)");
            return ExitCode::FAILURE;
        }
        config.max_memory_bytes = Some(mb * 1024 * 1024);
    }
    let server = match Server::bind_with_config(&opts.addr, exec, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("eclipse-serve: cannot bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &opts.snapshot_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("eclipse-serve: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        server.set_snapshot_dir(dir);
        match server.load_snapshots() {
            Ok(scan) => {
                for (name, summary) in &scan.restored {
                    eprintln!(
                        "eclipse-serve: warm-loaded {name:?} from snapshot \
                         ({} points, d = {}, u = {}, {} intersections)",
                        summary.points, summary.dim, summary.skyline_len, summary.intersections
                    );
                }
                for (path, e) in &scan.skipped {
                    eprintln!("eclipse-serve: skipped snapshot {}: {e}", path.display());
                }
            }
            Err(e) => {
                eprintln!("eclipse-serve: snapshot warm-load failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    for (name, dist, n, d, seed) in &opts.preloads {
        let points = SyntheticConfig::new(*n, *d, *dist, *seed).generate();
        match server.register_dataset(name, points, IndexKind::default()) {
            Ok(summary) => eprintln!(
                "eclipse-serve: preloaded {name:?} ({} points, d = {}, u = {}, {} intersections)",
                summary.points, summary.dim, summary.skyline_len, summary.intersections
            ),
            Err(e) => {
                eprintln!("eclipse-serve: preload {name:?} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match server.local_addr() {
        Ok(addr) => eprintln!("eclipse-serve: listening on {addr} ({threads} query threads)"),
        Err(e) => eprintln!("eclipse-serve: listening (address unavailable: {e})"),
    }
    if let Err(e) = server.run() {
        eprintln!("eclipse-serve: accept loop failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:7878".to_string(),
        threads: None,
        snapshot_dir: None,
        max_pipeline: None,
        max_in_flight: None,
        idle_timeout_ms: None,
        max_memory_mb: None,
        preloads: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                opts.addr = args.next().ok_or("--addr needs a HOST:PORT value")?;
            }
            "--threads" => {
                let raw = args.next().ok_or("--threads needs a positive integer")?;
                let threads: usize = raw
                    .parse()
                    .map_err(|_| format!("--threads: {raw:?} is not an integer"))?;
                if threads == 0 {
                    return Err("--threads must be positive".to_string());
                }
                opts.threads = Some(threads);
            }
            "--snapshot-dir" => {
                let dir = args.next().ok_or("--snapshot-dir needs a directory")?;
                opts.snapshot_dir = Some(std::path::PathBuf::from(dir));
            }
            "--max-pipeline" => {
                let raw = args
                    .next()
                    .ok_or("--max-pipeline needs a positive integer")?;
                let cap: u32 = raw
                    .parse()
                    .map_err(|_| format!("--max-pipeline: {raw:?} is not an integer"))?;
                if cap == 0 {
                    return Err("--max-pipeline must be positive".to_string());
                }
                opts.max_pipeline = Some(cap);
            }
            "--max-inflight" => {
                let raw = args
                    .next()
                    .ok_or("--max-inflight needs a positive integer")?;
                let cap: u32 = raw
                    .parse()
                    .map_err(|_| format!("--max-inflight: {raw:?} is not an integer"))?;
                if cap == 0 {
                    return Err("--max-inflight must be positive".to_string());
                }
                opts.max_in_flight = Some(cap);
            }
            "--idle-timeout-ms" => {
                let raw = args
                    .next()
                    .ok_or("--idle-timeout-ms needs a millisecond count")?;
                let ms: u64 = raw
                    .parse()
                    .map_err(|_| format!("--idle-timeout-ms: {raw:?} is not an integer"))?;
                opts.idle_timeout_ms = Some(ms);
            }
            "--max-memory-mb" => {
                let raw = args
                    .next()
                    .ok_or("--max-memory-mb needs a positive integer")?;
                let mb: u64 = raw
                    .parse()
                    .map_err(|_| format!("--max-memory-mb: {raw:?} is not an integer"))?;
                if mb == 0 {
                    return Err("--max-memory-mb must be positive".to_string());
                }
                opts.max_memory_mb = Some(mb);
            }
            "--preload" => {
                let spec = args.next().ok_or("--preload needs NAME=FAMILY:N:D:SEED")?;
                opts.preloads.push(parse_preload(&spec)?);
            }
            "--help" | "-h" => {
                return Err("usage: eclipse-serve [--addr HOST:PORT] [--threads N] \
                     [--snapshot-dir DIR] [--max-pipeline N] [--max-inflight N] \
                     [--idle-timeout-ms N] [--max-memory-mb N] \
                     [--preload NAME=FAMILY:N:D:SEED]..."
                    .to_string());
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(opts)
}

fn parse_preload(spec: &str) -> Result<(String, Distribution, usize, usize, u64), String> {
    let bad = || format!("--preload: {spec:?} is not NAME=FAMILY:N:D:SEED");
    let (name, rest) = spec.split_once('=').ok_or_else(bad)?;
    let parts: Vec<&str> = rest.split(':').collect();
    let [family, n, d, seed] = parts[..] else {
        return Err(bad());
    };
    let dist = match family {
        "corr" => Distribution::Correlated,
        "inde" => Distribution::Independent,
        "anti" => Distribution::AntiCorrelated,
        _ => return Err(format!("--preload: unknown family {family:?}")),
    };
    Ok((
        name.to_string(),
        dist,
        n.parse().map_err(|_| bad())?,
        d.parse().map_err(|_| bad())?,
        seed.parse().map_err(|_| bad())?,
    ))
}
