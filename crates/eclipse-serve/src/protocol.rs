//! The wire protocol: length-prefixed binary frames with a hand-rolled
//! codec (no serde, no external dependencies).
//!
//! # Framing
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! frame      := len:u32le payload[len]
//! payload    := body                                        (protocol v1)
//! payload    := request_id:u64le deadline_ms:u32le body     (protocol v2)
//! body       := tag:u8 fields
//! ```
//!
//! `len` counts the payload bytes only and must not exceed
//! [`MAX_FRAME_LEN`].  Within a payload the primitives are fixed-width
//! little-endian: `u8`, `u32le`, `u64le`, and `f64` as its IEEE-754 bit
//! pattern in `u64le` (so infinities and signed zeros round-trip exactly).
//! A `string` is `u32le` length + UTF-8 bytes; every list is `u32le`
//! element count + elements.
//!
//! # Versions and the handshake
//!
//! A connection starts in **protocol v1**: frames carry a bare body, one
//! request is answered by one response, and responses arrive in request
//! order.  A client that wants to pipeline sends [`Request::Hello`] as its
//! **first** frame (still v1-framed); the server answers
//! [`Response::HelloAck`] with the negotiated version and pipeline depth.
//! When the negotiated version is [`PROTOCOL_V2`], every subsequent frame in
//! both directions carries a 12-byte [`FrameHeader`] before the body:
//!
//! * `request_id` — chosen by the client, echoed verbatim in the response,
//!   so responses may return **out of order** and the client correlates by
//!   id (ids must be unique among a connection's in-flight requests);
//! * `deadline_ms` — a relative per-request deadline in milliseconds
//!   (0 = none), measured from frame receipt and enforced server-side: a
//!   request still waiting when its deadline passes is answered with
//!   [`Response::Timeout`] instead of being executed.  Responses always
//!   carry 0.
//!
//! A client that never sends `Hello` keeps speaking v1 indefinitely — the
//! server detects the mode from the first frame, and v1 responses are
//! delivered strictly in request order even when the server completes them
//! out of order internally.
//!
//! # Robustness
//!
//! Decoding is total: truncated frames, trailing bytes, unknown tags,
//! non-UTF-8 strings and absurd element counts all surface as
//! [`ProtocolError`] values — never a panic, and never an allocation larger
//! than the received frame (list counts are validated against the bytes
//! actually remaining before any buffer is reserved).  The property suite in
//! `tests/protocol_roundtrip.rs` fuzzes both directions.

use std::fmt;
use std::io::{self, Read, Write};

use eclipse_core::index::IntersectionIndexKind;

/// Hard upper bound on a frame payload (64 MiB): a corrupted or hostile
/// length prefix is rejected before any buffer is allocated.
pub const MAX_FRAME_LEN: u32 = 1 << 26;

/// The original protocol: bare bodies, strictly ordered responses.
pub const PROTOCOL_V1: u32 = 1;

/// The pipelined protocol: every frame carries a [`FrameHeader`]
/// (request id + deadline) and responses may return out of order.
pub const PROTOCOL_V2: u32 = 2;

/// The newest protocol version this build speaks.
pub const MAX_PROTOCOL_VERSION: u32 = PROTOCOL_V2;

/// Byte length of the v2 per-frame header.
pub const V2_HEADER_LEN: usize = 12;

/// The per-frame header of a [`PROTOCOL_V2`] payload: the client-chosen
/// request id (echoed in the response) and the relative request deadline in
/// milliseconds (0 = no deadline; always 0 in responses).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameHeader {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub request_id: u64,
    /// Relative deadline in milliseconds from frame receipt; 0 disables.
    pub deadline_ms: u32,
}

impl FrameHeader {
    /// Appends the 12 header bytes to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.request_id.to_le_bytes());
        buf.extend_from_slice(&self.deadline_ms.to_le_bytes());
    }

    /// Splits a v2 payload into its header and the body bytes.
    ///
    /// # Errors
    /// [`ProtocolError::Truncated`] when the payload is shorter than the
    /// header.
    pub fn split(payload: &[u8]) -> ProtocolResult<(FrameHeader, &[u8])> {
        if payload.len() < V2_HEADER_LEN {
            return Err(ProtocolError::Truncated {
                needed: V2_HEADER_LEN,
                remaining: payload.len(),
            });
        }
        let request_id = u64::from_le_bytes(payload[..8].try_into().expect("8-byte slice"));
        let deadline_ms = u32::from_le_bytes(payload[8..12].try_into().expect("4-byte slice"));
        Ok((
            FrameHeader {
                request_id,
                deadline_ms,
            },
            &payload[V2_HEADER_LEN..],
        ))
    }

    /// Encodes a full v2 payload: this header followed by `body`.
    pub fn with_body(&self, body: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(V2_HEADER_LEN + body.len());
        self.encode_into(&mut buf);
        buf.extend_from_slice(body);
        buf
    }
}

/// Everything that can go wrong while framing or decoding a message.
#[derive(Debug)]
pub enum ProtocolError {
    /// An underlying socket/stream error.
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge(u32),
    /// The payload ended before a field could be read in full.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were actually left.
        remaining: usize,
    },
    /// The payload decoded cleanly but bytes were left over.
    TrailingBytes(usize),
    /// An unrecognized message or enum tag.
    UnknownTag {
        /// Which field carried the tag.
        context: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A structurally valid but semantically impossible value (bad UTF-8, a
    /// list count larger than the remaining bytes, …).
    Malformed(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o error: {e}"),
            ProtocolError::FrameTooLarge(len) => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME_LEN} cap")
            }
            ProtocolError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated payload: needed {needed} bytes, {remaining} left"
                )
            }
            ProtocolError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            ProtocolError::UnknownTag { context, tag } => {
                write!(f, "unknown {context} tag {tag:#04x}")
            }
            ProtocolError::Malformed(reason) => write!(f, "malformed payload: {reason}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Result alias for codec operations.
pub type ProtocolResult<T> = std::result::Result<T, ProtocolError>;

/// Which Intersection Index backs an engine's warm-up / explicit build, as
/// spoken on the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexKind {
    /// The line quadtree / hyperplane octree (the paper's QUAD).
    #[default]
    Quadtree,
    /// The randomized cutting tree (the paper's CUTTING).
    CuttingTree,
}

impl IndexKind {
    fn to_wire(self) -> u8 {
        match self {
            IndexKind::Quadtree => 0,
            IndexKind::CuttingTree => 1,
        }
    }

    fn from_wire(tag: u8) -> ProtocolResult<Self> {
        match tag {
            0 => Ok(IndexKind::Quadtree),
            1 => Ok(IndexKind::CuttingTree),
            other => Err(ProtocolError::UnknownTag {
                context: "index kind",
                tag: other,
            }),
        }
    }
}

impl From<IndexKind> for IntersectionIndexKind {
    fn from(kind: IndexKind) -> Self {
        match kind {
            IndexKind::Quadtree => IntersectionIndexKind::Quadtree,
            IndexKind::CuttingTree => IntersectionIndexKind::CuttingTree,
        }
    }
}

impl From<IntersectionIndexKind> for IndexKind {
    fn from(kind: IntersectionIndexKind) -> Self {
        match kind {
            IntersectionIndexKind::Quadtree => IndexKind::Quadtree,
            IntersectionIndexKind::CuttingTree => IndexKind::CuttingTree,
        }
    }
}

/// A weight-ratio box on the wire: one `(lo, hi)` pair per ratio.
pub type WireBox = Vec<(f64, f64)>;

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Version/pipelining handshake; must be the **first** frame of a
    /// connection (v1-framed).  The server answers [`Response::HelloAck`]
    /// with `version = min(max_version, MAX_PROTOCOL_VERSION)` and the
    /// granted pipeline depth; every later frame then uses the negotiated
    /// framing.  A `Hello` after the first frame is answered with an error
    /// and the connection keeps its established mode.
    Hello {
        /// Highest protocol version the client speaks.
        max_version: u32,
        /// Pipeline depth (in-flight requests) the client would like; the
        /// server clamps it to its own per-connection limit.
        pipe_size: u32,
    },
    /// Liveness check.
    Ping,
    /// Registers (or replaces) a dataset: `coords` is row-major with `dim`
    /// values per point.  The server builds an [`eclipse_core::EclipseEngine`]
    /// and warms the `warm` index before acknowledging, so the first query
    /// batch already hits a built index.
    LoadDataset {
        /// Dataset name (the key of every subsequent request).
        name: String,
        /// Dimensionality of every point.
        dim: u32,
        /// Row-major coordinates, `dim` per point.
        coords: Vec<f64>,
        /// Which Intersection Index to build at registration.
        warm: IndexKind,
    },
    /// Eagerly builds (and caches) the index of the given kind.
    BuildIndex {
        /// Dataset name.
        name: String,
        /// Which index to build.
        kind: IndexKind,
    },
    /// A batch of eclipse queries, answered through the engine's batched
    /// probe path; results are dataset point indices in ascending order.
    QueryBatch {
        /// Dataset name.
        name: String,
        /// One weight-ratio box per probe.
        boxes: Vec<WireBox>,
    },
    /// A batch of count-only eclipse queries: the result cardinality per
    /// box, with no per-probe result vectors materialized on the server.
    CountBatch {
        /// Dataset name.
        name: String,
        /// One weight-ratio box per probe.
        boxes: Vec<WireBox>,
    },
    /// Writes a versioned snapshot of the dataset plus its built index of
    /// the given kind into the server's `--snapshot-dir` (building the
    /// index first if needed).  Answered with [`Response::SnapshotSaved`];
    /// an error if the server has no snapshot directory.
    SaveIndex {
        /// Dataset name.
        name: String,
        /// Which index to snapshot.
        kind: IndexKind,
    },
    /// Restores a previously saved index of the given kind from the
    /// server's `--snapshot-dir` into the named dataset's engine.  The
    /// snapshot is validated against the registered dataset first — a
    /// snapshot of different data or an incompatible configuration is
    /// answered with an [`Response::Error`] instead of serving wrong
    /// results.  Answered with [`Response::IndexBuilt`].
    RestoreIndex {
        /// Dataset name.
        name: String,
        /// Which index to restore.
        kind: IndexKind,
    },
    /// Scans the server's `--snapshot-dir` and restores **every** stored
    /// dataset + index found there — the re-warm operation a router issues
    /// against a standby (or restarted) backend before readmitting it.
    /// Per-file fault-tolerant: a corrupt or stale snapshot is skipped and
    /// reported in [`Response::SnapshotsLoaded`], never aborting the scan.
    LoadSnapshots,
    /// Opts this connection in (or out) of **degraded reads**: when the
    /// answering process is a shard router and some shards are down, an
    /// opted-in connection receives typed [`Response::PartialResults`] /
    /// [`Response::PartialCounts`] from the surviving shards instead of a
    /// hard error.  A single-process server acknowledges the flag but always
    /// serves complete answers.  Answered with [`Response::PartialAck`].
    AllowPartial {
        /// Whether degraded reads are acceptable on this connection.
        enabled: bool,
    },
    /// Server and per-dataset statistics.
    Stats,
    /// Appends one point to the named dataset, maintaining the skyline and
    /// any built indexes incrementally and bumping the dataset epoch.
    /// **Not idempotent**: a retry after an ambiguous transport failure
    /// could apply the insert twice, so routers never auto-retry it.
    /// Answered with [`Response::Mutated`].
    Insert {
        /// Dataset name.
        name: String,
        /// Coordinates of the new point (must match the dataset's `dim`).
        coords: Vec<f64>,
    },
    /// Deletes the point with the given id from the named dataset (ids above
    /// it shift down by one, exactly as if the dataset had been reloaded
    /// without the point).  **Not idempotent**: a blind retry could delete a
    /// different point once ids have shifted.  Answered with
    /// [`Response::Mutated`].
    Delete {
        /// Dataset name.
        name: String,
        /// Index of the point to delete.
        id: u64,
    },
}

/// How a mutation changed the skyline, as spoken on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationKind {
    /// An inserted point was dominated by the skyline: absorbed in place.
    InsertedDominated,
    /// An inserted point entered the skyline (possibly evicting members).
    InsertedSkyline,
    /// A deleted point was not a skyline member.
    DeletedNonSkyline,
    /// A deleted point was a skyline member (exclusively-dominated points
    /// were promoted).
    DeletedSkyline,
}

impl MutationKind {
    fn to_wire(self) -> u8 {
        match self {
            MutationKind::InsertedDominated => 0,
            MutationKind::InsertedSkyline => 1,
            MutationKind::DeletedNonSkyline => 2,
            MutationKind::DeletedSkyline => 3,
        }
    }

    fn from_wire(tag: u8) -> ProtocolResult<Self> {
        match tag {
            0 => Ok(MutationKind::InsertedDominated),
            1 => Ok(MutationKind::InsertedSkyline),
            2 => Ok(MutationKind::DeletedNonSkyline),
            3 => Ok(MutationKind::DeletedSkyline),
            other => Err(ProtocolError::UnknownTag {
                context: "mutation kind",
                tag: other,
            }),
        }
    }
}

/// The decoded contents of a [`Response::Mutated`], as returned by the
/// client's `insert`/`delete` helpers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MutationAck {
    /// How the skyline changed.
    pub kind: MutationKind,
    /// The dataset epoch after the mutation.
    pub epoch: u64,
    /// The dataset size after the mutation.
    pub len: u64,
}

impl From<eclipse_core::MutationOutcome> for MutationKind {
    fn from(outcome: eclipse_core::MutationOutcome) -> Self {
        match outcome {
            eclipse_core::MutationOutcome::InsertedDominated => MutationKind::InsertedDominated,
            eclipse_core::MutationOutcome::InsertedSkyline => MutationKind::InsertedSkyline,
            eclipse_core::MutationOutcome::DeletedNonSkyline => MutationKind::DeletedNonSkyline,
            eclipse_core::MutationOutcome::DeletedSkyline => MutationKind::DeletedSkyline,
        }
    }
}

/// The acknowledgement of a [`Request::LoadDataset`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatasetSummary {
    /// Number of points registered.
    pub points: u64,
    /// Dimensionality.
    pub dim: u32,
    /// Skyline size of the warmed index.
    pub skyline_len: u64,
    /// Indexed intersection hyperplanes (`C(u, 2)`).
    pub intersections: u64,
}

/// The acknowledgement of a [`Request::BuildIndex`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexSummary {
    /// Which index was built (or found cached).
    pub kind: IndexKind,
    /// Skyline size.
    pub skyline_len: u64,
    /// Indexed intersection hyperplanes.
    pub intersections: u64,
    /// Arena node count of the backing tree.
    pub nodes: u64,
    /// Depth of the backing tree.
    pub depth: u32,
}

/// Per-dataset statistics inside a [`StatsReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of points.
    pub points: u64,
    /// Dimensionality.
    pub dim: u32,
    /// Skyline size (0 if no index has been built yet).
    pub skyline_len: u64,
    /// Indexed intersection hyperplanes.
    pub intersections: u64,
    /// How many of those actually cross the indexed region of ratio space
    /// (computed with the count-only tree traversal).
    pub root_crossings: u64,
    /// Whether the quadtree index is built.
    pub quad_built: bool,
    /// Whether the cutting-tree index is built.
    pub cutting_built: bool,
    /// Mutation epoch of the dataset: 0 at registration, +1 per applied
    /// insert/delete.
    pub epoch: u64,
    /// Accounted heap bytes of the dataset's engine (points, cached indexes,
    /// skyline cache); 0 while evicted.
    pub bytes: u64,
    /// `false` when the dataset is currently evicted to its snapshot under
    /// the server's memory budget (the next request touching it restores it
    /// transparently).
    pub resident: bool,
}

/// The reply to a [`Request::Stats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsReport {
    /// `QueryBatch` requests answered successfully.
    pub query_batches: u64,
    /// `CountBatch` requests answered successfully.
    pub count_batches: u64,
    /// Total probes (boxes) answered across both batch kinds.
    pub probes: u64,
    /// Requests that ended in an error response.
    pub errors: u64,
    /// Requests admitted but not yet answered at the time of the stats call
    /// (includes the stats request itself when it went through the queue).
    pub in_flight: u64,
    /// Requests answered with [`Response::Timeout`] because their deadline
    /// passed before execution started.
    pub timeouts: u64,
    /// Requests rejected with [`Response::Overloaded`] by the per-connection
    /// or global in-flight caps.
    pub rejected: u64,
    /// In-flight queue depth of every open connection at the time of the
    /// stats call, sorted descending.
    pub conn_queue_depths: Vec<u32>,
    /// Accounted heap bytes across all *resident* datasets (the figure the
    /// memory budget is enforced against).
    pub total_bytes: u64,
    /// The configured memory budget in bytes; 0 when unbounded.
    pub memory_budget: u64,
    /// Datasets evicted to their snapshots since the server started.
    pub evictions: u64,
    /// Evicted datasets transparently restored from their snapshots since
    /// the server started.
    pub reloads: u64,
    /// One entry per registered dataset, sorted by name.
    pub datasets: Vec<DatasetStats>,
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Hello`]: the negotiated protocol version, the
    /// granted pipeline depth, and the server's frame cap.
    HelloAck {
        /// Negotiated version: `min(client max, MAX_PROTOCOL_VERSION)`.
        version: u32,
        /// Granted per-connection pipeline depth (in-flight requests).
        pipe_size: u32,
        /// The server's [`MAX_FRAME_LEN`].
        max_frame_len: u32,
    },
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::LoadDataset`].
    DatasetLoaded(DatasetSummary),
    /// Reply to [`Request::BuildIndex`].
    IndexBuilt(IndexSummary),
    /// Reply to [`Request::QueryBatch`], in input order.
    QueryResults(Vec<Vec<u64>>),
    /// Reply to [`Request::CountBatch`], in input order.
    Counts(Vec<u64>),
    /// Reply to [`Request::SaveIndex`].
    SnapshotSaved {
        /// Size of the written snapshot file in bytes.
        bytes: u64,
    },
    /// Reply to [`Request::LoadSnapshots`]: what the snapshot-directory scan
    /// restored and which files it had to skip (corrupt, stale, or
    /// inconsistent — each with its rendered error).
    SnapshotsLoaded {
        /// `(dataset name, summary)` per successfully restored snapshot, in
        /// deterministic (path-sorted) order.
        restored: Vec<(String, DatasetSummary)>,
        /// `(path, error)` per snapshot file that could not be restored.
        skipped: Vec<(String, String)>,
    },
    /// Reply to [`Request::AllowPartial`], echoing the granted setting.
    PartialAck {
        /// Whether degraded reads are now enabled on this connection.
        enabled: bool,
    },
    /// Degraded reply to a `QueryBatch` when some shards are unavailable:
    /// one entry per probe in input order, `None` where every responsible
    /// shard was down.  Sent only on connections that opted in with
    /// [`Request::AllowPartial`].
    PartialResults(Vec<Option<Vec<u64>>>),
    /// Degraded reply to a `CountBatch`; see [`Response::PartialResults`].
    PartialCounts(Vec<Option<u64>>),
    /// Reply to [`Request::Stats`].
    Stats(StatsReport),
    /// The request's `deadline_ms` passed before execution started; the
    /// request was **not** executed and the connection stays usable.
    Timeout {
        /// The deadline the request carried.
        deadline_ms: u32,
    },
    /// The request was rejected by admission control (per-connection or
    /// global in-flight cap); nothing was executed and the connection stays
    /// usable — back off and resubmit.
    Overloaded {
        /// In-flight requests counted against the breached cap.
        in_flight: u32,
        /// The cap that was breached.
        limit: u32,
    },
    /// The named dataset is registered but currently **evicted** under the
    /// server's memory budget, and could not be restored from its snapshot
    /// (missing or unreadable snapshot file, or no snapshot directory).
    /// Nothing was executed and the connection stays usable — like
    /// [`Response::Overloaded`], this is a typed condition, not a protocol
    /// failure.
    DatasetUnavailable {
        /// The dataset that could not be made resident.
        name: String,
        /// Why the restore failed.
        reason: String,
    },
    /// Reply to [`Request::Insert`] / [`Request::Delete`]: what the mutation
    /// did to the skyline, plus the dataset's new epoch and size.
    Mutated {
        /// How the skyline changed.
        kind: MutationKind,
        /// The dataset epoch after the mutation.
        epoch: u64,
        /// The dataset size after the mutation.
        len: u64,
    },
    /// Any request that failed; the connection stays usable.
    Error(String),
}

// --- framing ---------------------------------------------------------------

/// Writes one frame (length prefix + payload).  The caller flushes.
///
/// # Errors
/// Propagates stream errors; rejects payloads over [`MAX_FRAME_LEN`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&len| len <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("payload of {} bytes exceeds the frame cap", payload.len()),
            )
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame, returning `Ok(None)` on a clean end-of-stream (the peer
/// closed between frames).
///
/// # Errors
/// Surfaces oversized length prefixes as [`ProtocolError::FrameTooLarge`]
/// and mid-frame stream ends as [`ProtocolError::Io`].
pub fn read_frame<R: Read>(r: &mut R) -> ProtocolResult<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_buf.len() {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None); // clean close between frames
            }
            return Err(ProtocolError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream closed inside a frame length prefix",
            )));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// --- encoding --------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    put_u8(buf, u8::from(v));
}

fn put_boxes(buf: &mut Vec<u8>, boxes: &[WireBox]) {
    put_u32(buf, boxes.len() as u32);
    for b in boxes {
        put_u32(buf, b.len() as u32);
        for &(lo, hi) in b {
            put_f64(buf, lo);
            put_f64(buf, hi);
        }
    }
}

// --- decoding --------------------------------------------------------------

/// Bounds-checked cursor over a received payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> ProtocolResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(ProtocolError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> ProtocolResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> ProtocolResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(ProtocolError::Malformed(format!(
                "boolean byte must be 0 or 1, got {other}"
            ))),
        }
    }

    fn u32(&mut self) -> ProtocolResult<u32> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> ProtocolResult<u64> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    fn f64(&mut self) -> ProtocolResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> ProtocolResult<String> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtocolError::Malformed("string is not valid UTF-8".to_string()))
    }

    /// Reads a list count and validates it against the bytes actually left
    /// (`min_elem_bytes` per element), so a garbage count can never trigger
    /// an oversized allocation.
    fn count(&mut self, min_elem_bytes: usize) -> ProtocolResult<usize> {
        let count = self.u32()? as usize;
        let needed = count.saturating_mul(min_elem_bytes);
        if needed > self.remaining() {
            return Err(ProtocolError::Malformed(format!(
                "element count {count} needs at least {needed} bytes, {} left",
                self.remaining()
            )));
        }
        Ok(count)
    }

    fn boxes(&mut self) -> ProtocolResult<Vec<WireBox>> {
        let n = self.count(4)?;
        let mut boxes = Vec::with_capacity(n);
        for _ in 0..n {
            let ranges = self.count(16)?;
            let mut b = Vec::with_capacity(ranges);
            for _ in 0..ranges {
                let lo = self.f64()?;
                let hi = self.f64()?;
                b.push((lo, hi));
            }
            boxes.push(b);
        }
        Ok(boxes)
    }

    fn finish(self) -> ProtocolResult<()> {
        if self.remaining() != 0 {
            return Err(ProtocolError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

// --- request codec ---------------------------------------------------------

const REQ_PING: u8 = 0x00;
const REQ_LOAD_DATASET: u8 = 0x01;
const REQ_BUILD_INDEX: u8 = 0x02;
const REQ_QUERY_BATCH: u8 = 0x03;
const REQ_COUNT_BATCH: u8 = 0x04;
const REQ_STATS: u8 = 0x05;
const REQ_SAVE_INDEX: u8 = 0x06;
const REQ_RESTORE_INDEX: u8 = 0x07;
const REQ_HELLO: u8 = 0x08;
const REQ_LOAD_SNAPSHOTS: u8 = 0x09;
const REQ_ALLOW_PARTIAL: u8 = 0x0a;
const REQ_INSERT: u8 = 0x0b;
const REQ_DELETE: u8 = 0x0c;

impl Request {
    /// Serializes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Hello {
                max_version,
                pipe_size,
            } => {
                put_u8(&mut buf, REQ_HELLO);
                put_u32(&mut buf, *max_version);
                put_u32(&mut buf, *pipe_size);
            }
            Request::Ping => put_u8(&mut buf, REQ_PING),
            Request::LoadDataset {
                name,
                dim,
                coords,
                warm,
            } => {
                put_u8(&mut buf, REQ_LOAD_DATASET);
                put_str(&mut buf, name);
                put_u32(&mut buf, *dim);
                put_u32(&mut buf, coords.len() as u32);
                for &c in coords {
                    put_f64(&mut buf, c);
                }
                put_u8(&mut buf, warm.to_wire());
            }
            Request::BuildIndex { name, kind } => {
                put_u8(&mut buf, REQ_BUILD_INDEX);
                put_str(&mut buf, name);
                put_u8(&mut buf, kind.to_wire());
            }
            Request::QueryBatch { name, boxes } => {
                put_u8(&mut buf, REQ_QUERY_BATCH);
                put_str(&mut buf, name);
                put_boxes(&mut buf, boxes);
            }
            Request::CountBatch { name, boxes } => {
                put_u8(&mut buf, REQ_COUNT_BATCH);
                put_str(&mut buf, name);
                put_boxes(&mut buf, boxes);
            }
            Request::SaveIndex { name, kind } => {
                put_u8(&mut buf, REQ_SAVE_INDEX);
                put_str(&mut buf, name);
                put_u8(&mut buf, kind.to_wire());
            }
            Request::RestoreIndex { name, kind } => {
                put_u8(&mut buf, REQ_RESTORE_INDEX);
                put_str(&mut buf, name);
                put_u8(&mut buf, kind.to_wire());
            }
            Request::LoadSnapshots => put_u8(&mut buf, REQ_LOAD_SNAPSHOTS),
            Request::AllowPartial { enabled } => {
                put_u8(&mut buf, REQ_ALLOW_PARTIAL);
                put_bool(&mut buf, *enabled);
            }
            Request::Stats => put_u8(&mut buf, REQ_STATS),
            Request::Insert { name, coords } => {
                put_u8(&mut buf, REQ_INSERT);
                put_str(&mut buf, name);
                put_u32(&mut buf, coords.len() as u32);
                for &c in coords {
                    put_f64(&mut buf, c);
                }
            }
            Request::Delete { name, id } => {
                put_u8(&mut buf, REQ_DELETE);
                put_str(&mut buf, name);
                put_u64(&mut buf, *id);
            }
        }
        buf
    }

    /// Parses a frame payload into a request.
    ///
    /// # Errors
    /// Any structural defect surfaces as a [`ProtocolError`]; this function
    /// never panics on arbitrary input.
    pub fn decode(payload: &[u8]) -> ProtocolResult<Request> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            REQ_HELLO => Request::Hello {
                max_version: r.u32()?,
                pipe_size: r.u32()?,
            },
            REQ_PING => Request::Ping,
            REQ_LOAD_DATASET => {
                let name = r.str()?;
                let dim = r.u32()?;
                let n = r.count(8)?;
                let mut coords = Vec::with_capacity(n);
                for _ in 0..n {
                    coords.push(r.f64()?);
                }
                let warm = IndexKind::from_wire(r.u8()?)?;
                Request::LoadDataset {
                    name,
                    dim,
                    coords,
                    warm,
                }
            }
            REQ_BUILD_INDEX => Request::BuildIndex {
                name: r.str()?,
                kind: IndexKind::from_wire(r.u8()?)?,
            },
            REQ_QUERY_BATCH => Request::QueryBatch {
                name: r.str()?,
                boxes: r.boxes()?,
            },
            REQ_COUNT_BATCH => Request::CountBatch {
                name: r.str()?,
                boxes: r.boxes()?,
            },
            REQ_SAVE_INDEX => Request::SaveIndex {
                name: r.str()?,
                kind: IndexKind::from_wire(r.u8()?)?,
            },
            REQ_RESTORE_INDEX => Request::RestoreIndex {
                name: r.str()?,
                kind: IndexKind::from_wire(r.u8()?)?,
            },
            REQ_LOAD_SNAPSHOTS => Request::LoadSnapshots,
            REQ_ALLOW_PARTIAL => Request::AllowPartial { enabled: r.bool()? },
            REQ_STATS => Request::Stats,
            REQ_INSERT => {
                let name = r.str()?;
                let n = r.count(8)?;
                let mut coords = Vec::with_capacity(n);
                for _ in 0..n {
                    coords.push(r.f64()?);
                }
                Request::Insert { name, coords }
            }
            REQ_DELETE => Request::Delete {
                name: r.str()?,
                id: r.u64()?,
            },
            other => {
                return Err(ProtocolError::UnknownTag {
                    context: "request",
                    tag: other,
                })
            }
        };
        r.finish()?;
        Ok(req)
    }
}

// --- response codec --------------------------------------------------------

const RESP_PONG: u8 = 0x80;
const RESP_DATASET_LOADED: u8 = 0x81;
const RESP_INDEX_BUILT: u8 = 0x82;
const RESP_QUERY_RESULTS: u8 = 0x83;
const RESP_COUNTS: u8 = 0x84;
const RESP_STATS: u8 = 0x85;
const RESP_SNAPSHOT_SAVED: u8 = 0x86;
const RESP_HELLO_ACK: u8 = 0x87;
const RESP_TIMEOUT: u8 = 0x88;
const RESP_OVERLOADED: u8 = 0x89;
const RESP_SNAPSHOTS_LOADED: u8 = 0x8a;
const RESP_PARTIAL_ACK: u8 = 0x8b;
const RESP_PARTIAL_QUERY: u8 = 0x8c;
const RESP_PARTIAL_COUNTS: u8 = 0x8d;
const RESP_MUTATED: u8 = 0x8e;
const RESP_DATASET_UNAVAILABLE: u8 = 0x8f;
const RESP_ERROR: u8 = 0xff;

impl Response {
    /// Serializes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::HelloAck {
                version,
                pipe_size,
                max_frame_len,
            } => {
                put_u8(&mut buf, RESP_HELLO_ACK);
                put_u32(&mut buf, *version);
                put_u32(&mut buf, *pipe_size);
                put_u32(&mut buf, *max_frame_len);
            }
            Response::Pong => put_u8(&mut buf, RESP_PONG),
            Response::DatasetLoaded(s) => {
                put_u8(&mut buf, RESP_DATASET_LOADED);
                put_u64(&mut buf, s.points);
                put_u32(&mut buf, s.dim);
                put_u64(&mut buf, s.skyline_len);
                put_u64(&mut buf, s.intersections);
            }
            Response::IndexBuilt(s) => {
                put_u8(&mut buf, RESP_INDEX_BUILT);
                put_u8(&mut buf, s.kind.to_wire());
                put_u64(&mut buf, s.skyline_len);
                put_u64(&mut buf, s.intersections);
                put_u64(&mut buf, s.nodes);
                put_u32(&mut buf, s.depth);
            }
            Response::QueryResults(results) => {
                put_u8(&mut buf, RESP_QUERY_RESULTS);
                put_u32(&mut buf, results.len() as u32);
                for ids in results {
                    put_u32(&mut buf, ids.len() as u32);
                    for &id in ids {
                        put_u64(&mut buf, id);
                    }
                }
            }
            Response::Counts(counts) => {
                put_u8(&mut buf, RESP_COUNTS);
                put_u32(&mut buf, counts.len() as u32);
                for &c in counts {
                    put_u64(&mut buf, c);
                }
            }
            Response::SnapshotSaved { bytes } => {
                put_u8(&mut buf, RESP_SNAPSHOT_SAVED);
                put_u64(&mut buf, *bytes);
            }
            Response::SnapshotsLoaded { restored, skipped } => {
                put_u8(&mut buf, RESP_SNAPSHOTS_LOADED);
                put_u32(&mut buf, restored.len() as u32);
                for (name, s) in restored {
                    put_str(&mut buf, name);
                    put_u64(&mut buf, s.points);
                    put_u32(&mut buf, s.dim);
                    put_u64(&mut buf, s.skyline_len);
                    put_u64(&mut buf, s.intersections);
                }
                put_u32(&mut buf, skipped.len() as u32);
                for (path, error) in skipped {
                    put_str(&mut buf, path);
                    put_str(&mut buf, error);
                }
            }
            Response::PartialAck { enabled } => {
                put_u8(&mut buf, RESP_PARTIAL_ACK);
                put_bool(&mut buf, *enabled);
            }
            Response::PartialResults(results) => {
                put_u8(&mut buf, RESP_PARTIAL_QUERY);
                put_u32(&mut buf, results.len() as u32);
                for row in results {
                    match row {
                        None => put_bool(&mut buf, false),
                        Some(ids) => {
                            put_bool(&mut buf, true);
                            put_u32(&mut buf, ids.len() as u32);
                            for &id in ids {
                                put_u64(&mut buf, id);
                            }
                        }
                    }
                }
            }
            Response::PartialCounts(counts) => {
                put_u8(&mut buf, RESP_PARTIAL_COUNTS);
                put_u32(&mut buf, counts.len() as u32);
                for c in counts {
                    match c {
                        None => put_bool(&mut buf, false),
                        Some(c) => {
                            put_bool(&mut buf, true);
                            put_u64(&mut buf, *c);
                        }
                    }
                }
            }
            Response::Timeout { deadline_ms } => {
                put_u8(&mut buf, RESP_TIMEOUT);
                put_u32(&mut buf, *deadline_ms);
            }
            Response::Overloaded { in_flight, limit } => {
                put_u8(&mut buf, RESP_OVERLOADED);
                put_u32(&mut buf, *in_flight);
                put_u32(&mut buf, *limit);
            }
            Response::Stats(report) => {
                put_u8(&mut buf, RESP_STATS);
                put_u64(&mut buf, report.query_batches);
                put_u64(&mut buf, report.count_batches);
                put_u64(&mut buf, report.probes);
                put_u64(&mut buf, report.errors);
                put_u64(&mut buf, report.in_flight);
                put_u64(&mut buf, report.timeouts);
                put_u64(&mut buf, report.rejected);
                put_u32(&mut buf, report.conn_queue_depths.len() as u32);
                for &depth in &report.conn_queue_depths {
                    put_u32(&mut buf, depth);
                }
                put_u64(&mut buf, report.total_bytes);
                put_u64(&mut buf, report.memory_budget);
                put_u64(&mut buf, report.evictions);
                put_u64(&mut buf, report.reloads);
                put_u32(&mut buf, report.datasets.len() as u32);
                for d in &report.datasets {
                    put_str(&mut buf, &d.name);
                    put_u64(&mut buf, d.points);
                    put_u32(&mut buf, d.dim);
                    put_u64(&mut buf, d.skyline_len);
                    put_u64(&mut buf, d.intersections);
                    put_u64(&mut buf, d.root_crossings);
                    put_bool(&mut buf, d.quad_built);
                    put_bool(&mut buf, d.cutting_built);
                    put_u64(&mut buf, d.epoch);
                    put_u64(&mut buf, d.bytes);
                    put_bool(&mut buf, d.resident);
                }
            }
            Response::Mutated { kind, epoch, len } => {
                put_u8(&mut buf, RESP_MUTATED);
                put_u8(&mut buf, kind.to_wire());
                put_u64(&mut buf, *epoch);
                put_u64(&mut buf, *len);
            }
            Response::DatasetUnavailable { name, reason } => {
                put_u8(&mut buf, RESP_DATASET_UNAVAILABLE);
                put_str(&mut buf, name);
                put_str(&mut buf, reason);
            }
            Response::Error(message) => {
                put_u8(&mut buf, RESP_ERROR);
                put_str(&mut buf, message);
            }
        }
        buf
    }

    /// Parses a frame payload into a response.
    ///
    /// # Errors
    /// Any structural defect surfaces as a [`ProtocolError`]; this function
    /// never panics on arbitrary input.
    pub fn decode(payload: &[u8]) -> ProtocolResult<Response> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            RESP_HELLO_ACK => Response::HelloAck {
                version: r.u32()?,
                pipe_size: r.u32()?,
                max_frame_len: r.u32()?,
            },
            RESP_TIMEOUT => Response::Timeout {
                deadline_ms: r.u32()?,
            },
            RESP_OVERLOADED => Response::Overloaded {
                in_flight: r.u32()?,
                limit: r.u32()?,
            },
            RESP_PONG => Response::Pong,
            RESP_DATASET_LOADED => Response::DatasetLoaded(DatasetSummary {
                points: r.u64()?,
                dim: r.u32()?,
                skyline_len: r.u64()?,
                intersections: r.u64()?,
            }),
            RESP_INDEX_BUILT => Response::IndexBuilt(IndexSummary {
                kind: IndexKind::from_wire(r.u8()?)?,
                skyline_len: r.u64()?,
                intersections: r.u64()?,
                nodes: r.u64()?,
                depth: r.u32()?,
            }),
            RESP_QUERY_RESULTS => {
                let n = r.count(4)?;
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    let ids = r.count(8)?;
                    let mut row = Vec::with_capacity(ids);
                    for _ in 0..ids {
                        row.push(r.u64()?);
                    }
                    results.push(row);
                }
                Response::QueryResults(results)
            }
            RESP_COUNTS => {
                let n = r.count(8)?;
                let mut counts = Vec::with_capacity(n);
                for _ in 0..n {
                    counts.push(r.u64()?);
                }
                Response::Counts(counts)
            }
            RESP_SNAPSHOT_SAVED => Response::SnapshotSaved { bytes: r.u64()? },
            RESP_SNAPSHOTS_LOADED => {
                let n = r.count(32)?;
                let mut restored = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.str()?;
                    restored.push((
                        name,
                        DatasetSummary {
                            points: r.u64()?,
                            dim: r.u32()?,
                            skyline_len: r.u64()?,
                            intersections: r.u64()?,
                        },
                    ));
                }
                let n = r.count(8)?;
                let mut skipped = Vec::with_capacity(n);
                for _ in 0..n {
                    let path = r.str()?;
                    let error = r.str()?;
                    skipped.push((path, error));
                }
                Response::SnapshotsLoaded { restored, skipped }
            }
            RESP_PARTIAL_ACK => Response::PartialAck { enabled: r.bool()? },
            RESP_PARTIAL_QUERY => {
                let n = r.count(1)?;
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    if r.bool()? {
                        let ids = r.count(8)?;
                        let mut row = Vec::with_capacity(ids);
                        for _ in 0..ids {
                            row.push(r.u64()?);
                        }
                        results.push(Some(row));
                    } else {
                        results.push(None);
                    }
                }
                Response::PartialResults(results)
            }
            RESP_PARTIAL_COUNTS => {
                let n = r.count(1)?;
                let mut counts = Vec::with_capacity(n);
                for _ in 0..n {
                    if r.bool()? {
                        counts.push(Some(r.u64()?));
                    } else {
                        counts.push(None);
                    }
                }
                Response::PartialCounts(counts)
            }
            RESP_STATS => {
                let query_batches = r.u64()?;
                let count_batches = r.u64()?;
                let probes = r.u64()?;
                let errors = r.u64()?;
                let in_flight = r.u64()?;
                let timeouts = r.u64()?;
                let rejected = r.u64()?;
                let depths = r.count(4)?;
                let mut conn_queue_depths = Vec::with_capacity(depths);
                for _ in 0..depths {
                    conn_queue_depths.push(r.u32()?);
                }
                let total_bytes = r.u64()?;
                let memory_budget = r.u64()?;
                let evictions = r.u64()?;
                let reloads = r.u64()?;
                let n = r.count(32)?;
                let mut datasets = Vec::with_capacity(n);
                for _ in 0..n {
                    datasets.push(DatasetStats {
                        name: r.str()?,
                        points: r.u64()?,
                        dim: r.u32()?,
                        skyline_len: r.u64()?,
                        intersections: r.u64()?,
                        root_crossings: r.u64()?,
                        quad_built: r.bool()?,
                        cutting_built: r.bool()?,
                        epoch: r.u64()?,
                        bytes: r.u64()?,
                        resident: r.bool()?,
                    });
                }
                Response::Stats(StatsReport {
                    query_batches,
                    count_batches,
                    probes,
                    errors,
                    in_flight,
                    timeouts,
                    rejected,
                    conn_queue_depths,
                    total_bytes,
                    memory_budget,
                    evictions,
                    reloads,
                    datasets,
                })
            }
            RESP_MUTATED => Response::Mutated {
                kind: MutationKind::from_wire(r.u8()?)?,
                epoch: r.u64()?,
                len: r.u64()?,
            },
            RESP_DATASET_UNAVAILABLE => Response::DatasetUnavailable {
                name: r.str()?,
                reason: r.str()?,
            },
            RESP_ERROR => Response::Error(r.str()?),
            other => {
                return Err(ProtocolError::UnknownTag {
                    context: "response",
                    tag: other,
                })
            }
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_messages_round_trip() {
        for req in [
            Request::Ping,
            Request::Stats,
            Request::Hello {
                max_version: MAX_PROTOCOL_VERSION,
                pipe_size: 64,
            },
            Request::BuildIndex {
                name: "hotels".to_string(),
                kind: IndexKind::CuttingTree,
            },
            Request::QueryBatch {
                name: "n".to_string(),
                boxes: vec![
                    vec![(0.25, 2.0)],
                    vec![],
                    vec![(0.0, f64::INFINITY), (1.0, 1.0)],
                ],
            },
            Request::SaveIndex {
                name: "hotels".to_string(),
                kind: IndexKind::Quadtree,
            },
            Request::RestoreIndex {
                name: "hotels".to_string(),
                kind: IndexKind::CuttingTree,
            },
            Request::LoadSnapshots,
            Request::AllowPartial { enabled: true },
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
        for resp in [
            Response::Pong,
            Response::QueryResults(vec![vec![0, 1, 2], vec![]]),
            Response::Counts(vec![3, 0, 7]),
            Response::SnapshotSaved { bytes: 4096 },
            Response::SnapshotsLoaded {
                restored: vec![(
                    "hotels".to_string(),
                    DatasetSummary {
                        points: 10,
                        dim: 2,
                        skyline_len: 4,
                        intersections: 6,
                    },
                )],
                skipped: vec![("bad.eclsnap".to_string(), "checksum mismatch".to_string())],
            },
            Response::PartialAck { enabled: true },
            Response::PartialResults(vec![Some(vec![1, 2]), None, Some(vec![])]),
            Response::PartialCounts(vec![Some(5), None, Some(0)]),
            Response::HelloAck {
                version: PROTOCOL_V2,
                pipe_size: 32,
                max_frame_len: MAX_FRAME_LEN,
            },
            Response::Timeout { deadline_ms: 25 },
            Response::Overloaded {
                in_flight: 64,
                limit: 64,
            },
            Response::Error("boom".to_string()),
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn v2_headers_round_trip_and_reject_short_payloads() {
        let header = FrameHeader {
            request_id: 0xdead_beef_0042,
            deadline_ms: 1500,
        };
        let body = Request::Ping.encode();
        let payload = header.with_body(&body);
        assert_eq!(payload.len(), V2_HEADER_LEN + body.len());
        let (decoded, rest) = FrameHeader::split(&payload).unwrap();
        assert_eq!(decoded, header);
        assert_eq!(rest, &body[..]);

        // Shorter than the header: a typed truncation, never a panic.
        for cut in 0..V2_HEADER_LEN {
            assert!(matches!(
                FrameHeader::split(&payload[..cut]),
                Err(ProtocolError::Truncated { .. })
            ));
        }
        // Header with an empty body splits cleanly (the body decode then
        // reports its own truncation).
        let (decoded, rest) = FrameHeader::split(&payload[..V2_HEADER_LEN]).unwrap();
        assert_eq!(decoded, header);
        assert!(rest.is_empty());
    }

    #[test]
    fn stats_report_round_trips_flow_control_fields() {
        let resp = Response::Stats(StatsReport {
            query_batches: 10,
            count_batches: 3,
            probes: 999,
            errors: 2,
            in_flight: 17,
            timeouts: 4,
            rejected: 9,
            conn_queue_depths: vec![16, 5, 0],
            total_bytes: 123_456_789,
            memory_budget: 1 << 30,
            evictions: 12,
            reloads: 11,
            datasets: vec![],
        });
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn framing_round_trips_and_rejects_oversize() {
        let payload = Request::Ping.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut cursor = &wire[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(payload));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);

        // A hostile length prefix is rejected before allocation.
        let huge = (MAX_FRAME_LEN + 1).to_le_bytes();
        let mut cursor = &huge[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtocolError::FrameTooLarge(_))
        ));

        // A stream that dies inside the prefix is an I/O error, not a hang.
        let mut cursor = &[0x01u8, 0x02][..];
        assert!(matches!(read_frame(&mut cursor), Err(ProtocolError::Io(_))));
    }

    #[test]
    fn garbage_counts_do_not_allocate() {
        // QueryResults claiming u32::MAX rows in a 9-byte payload.
        let mut payload = vec![RESP_QUERY_RESULTS];
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        payload.extend_from_slice(&[0u8; 4]);
        assert!(matches!(
            Response::decode(&payload),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Request::Ping.encode();
        payload.push(0);
        assert!(matches!(
            Request::decode(&payload),
            Err(ProtocolError::TrailingBytes(1))
        ));
    }

    #[test]
    fn kind_conversions_are_inverse() {
        for kind in [IndexKind::Quadtree, IndexKind::CuttingTree] {
            assert_eq!(IndexKind::from_wire(kind.to_wire()).unwrap(), kind);
            assert_eq!(IndexKind::from(IntersectionIndexKind::from(kind)), kind);
        }
        assert!(IndexKind::from_wire(7).is_err());
    }

    #[test]
    fn errors_render_and_wrap() {
        let e = ProtocolError::from(io::Error::other("x"));
        assert!(e.to_string().contains("i/o error"));
        assert!(ProtocolError::FrameTooLarge(u32::MAX)
            .to_string()
            .contains("cap"));
        assert!(ProtocolError::Truncated {
            needed: 8,
            remaining: 2
        }
        .to_string()
        .contains("truncated"));
        assert!(ProtocolError::UnknownTag {
            context: "request",
            tag: 0x42
        }
        .to_string()
        .contains("0x42"));
    }
}
