//! Clients for the eclipse-serve protocol: the pipelining
//! [`PipelinedClient`] (protocol v2, up to `pipe_size` requests in flight,
//! replies correlated by request id) and the original blocking [`Client`],
//! now a depth-1 v1 wrapper over the same machinery — every pre-pipelining
//! test and example keeps compiling and keeps exercising the server's v1
//! fallback path.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use eclipse_core::point::Point;
use eclipse_core::WeightRatioBox;

use crate::protocol::{
    read_frame, write_frame, DatasetSummary, FrameHeader, IndexKind, IndexSummary, MutationAck,
    ProtocolError, Request, Response, StatsReport, WireBox, MAX_PROTOCOL_VERSION, PROTOCOL_V1,
    PROTOCOL_V2,
};

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's bytes did not decode.
    Protocol(ProtocolError),
    /// The server answered with an error response.
    Server(String),
    /// The request was rejected client-side before anything was sent.
    InvalidRequest(String),
    /// The server answered with a well-formed response of the wrong kind.
    UnexpectedResponse(&'static str),
    /// The server closed the connection instead of answering — covers a
    /// clean EOF between frames, a mid-frame EOF, and a reset socket (the
    /// mid-batch server-death cases).
    ConnectionClosed,
    /// A socket-level timeout fired (connect, read or write) before the
    /// peer answered.  After a *read* timeout the connection must be
    /// discarded: the reply may still arrive later and would desynchronize
    /// the framing if the stream were reused.
    SocketTimeout,
    /// The request's deadline passed server-side before execution started;
    /// it was not executed and the connection stays usable.
    TimedOut {
        /// The deadline the request carried, in milliseconds.
        deadline_ms: u32,
    },
    /// The server's admission control rejected the request; nothing was
    /// executed and the connection stays usable — back off and resubmit.
    Overloaded {
        /// In-flight requests counted against the breached cap.
        in_flight: u32,
        /// The cap that was breached.
        limit: u32,
    },
    /// The dataset is registered but evicted under the server's memory
    /// budget and could not be restored from its snapshot; nothing was
    /// executed and the connection stays usable.
    DatasetUnavailable {
        /// The dataset that could not be made resident.
        name: String,
        /// Why the restore failed.
        reason: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            ClientError::UnexpectedResponse(expected) => {
                write!(f, "unexpected response (expected {expected})")
            }
            ClientError::ConnectionClosed => write!(f, "connection closed by server"),
            ClientError::SocketTimeout => write!(f, "socket timed out waiting for the peer"),
            ClientError::TimedOut { deadline_ms } => {
                write!(
                    f,
                    "request timed out server-side ({deadline_ms} ms deadline)"
                )
            }
            ClientError::Overloaded { in_flight, limit } => {
                write!(
                    f,
                    "server overloaded ({in_flight} in flight, limit {limit})"
                )
            }
            ClientError::DatasetUnavailable { name, reason } => {
                write!(f, "dataset {name:?} unavailable: {reason}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe => ClientError::ConnectionClosed,
            // Both kinds occur in the wild for an expired socket timeout
            // (unix reports WouldBlock, windows TimedOut).
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ClientError::SocketTimeout,
            _ => ClientError::Io(e),
        }
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        match e {
            ProtocolError::Io(io) => ClientError::from(io),
            other => ClientError::Protocol(other),
        }
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// A pipelining connection: up to `pipe_size` requests in flight before the
/// first response is read, replies correlated by request id.
///
/// [`PipelinedClient::connect`] performs the `Hello` handshake and speaks
/// protocol v2 (out-of-order responses, per-request deadlines);
/// [`PipelinedClient::connect_v1`] skips the handshake and pipelines over
/// protocol v1, correlating FIFO — the server guarantees v1 responses in
/// request order.
///
/// # Example
///
/// ```no_run
/// use eclipse_serve::client::PipelinedClient;
/// use eclipse_serve::protocol::Request;
///
/// let mut client = PipelinedClient::connect("127.0.0.1:7878", 8)?;
/// let a = client.submit(&Request::Ping)?;
/// let b = client.submit(&Request::Ping)?; // in flight alongside `a`
/// client.recv(b)?; // out-of-order receipt is fine
/// client.recv(a)?;
/// # Ok::<(), eclipse_serve::ClientError>(())
/// ```
pub struct PipelinedClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    version: u32,
    pipe_size: u32,
    next_id: u64,
    /// Ids in flight, in send order (v1 correlates FIFO against this).
    pending: VecDeque<u64>,
    /// Responses read while waiting for a different id.
    ready: HashMap<u64, Response>,
    /// Frames written but not yet flushed.
    needs_flush: bool,
}

impl PipelinedClient {
    /// Connects and performs the `Hello` handshake, requesting `pipe_size`
    /// in-flight requests.  The server may clamp the depth; the granted
    /// value is [`PipelinedClient::pipe_size`].
    ///
    /// # Errors
    /// Propagates socket errors; [`ClientError::UnexpectedResponse`] when
    /// the peer does not acknowledge the handshake.
    pub fn connect(addr: impl ToSocketAddrs, pipe_size: u32) -> ClientResult<PipelinedClient> {
        let mut client = Self::from_stream(TcpStream::connect(addr)?, 1)?;
        client.handshake(pipe_size)?;
        Ok(client)
    }

    /// [`PipelinedClient::connect`] with timeouts: the TCP connect itself,
    /// the `Hello` handshake, and every subsequent read/write give up after
    /// `timeout` with [`ClientError::SocketTimeout`] instead of blocking
    /// indefinitely on an unresponsive peer (clear the I/O deadline
    /// afterwards with [`PipelinedClient::set_io_timeout`] if unwanted).
    ///
    /// # Errors
    /// As [`PipelinedClient::connect`], plus
    /// [`ClientError::SocketTimeout`]; an address that does not resolve is
    /// [`ClientError::Io`].
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        pipe_size: u32,
        timeout: Duration,
    ) -> ClientResult<PipelinedClient> {
        let mut client = Self::from_stream(connect_stream_timeout(addr, timeout)?, 1)?;
        client.set_io_timeout(Some(timeout))?;
        client.handshake(pipe_size)?;
        Ok(client)
    }

    /// Connects without a handshake: protocol v1, FIFO correlation, still
    /// pipelined up to `pipe_size` — exercises the server's v1 fallback.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn connect_v1(addr: impl ToSocketAddrs, pipe_size: u32) -> ClientResult<PipelinedClient> {
        Self::from_stream(TcpStream::connect(addr)?, pipe_size.max(1))
    }

    /// [`PipelinedClient::connect_v1`] with connect + read/write timeouts
    /// (see [`PipelinedClient::connect_timeout`]).
    ///
    /// # Errors
    /// As [`PipelinedClient::connect_v1`], plus
    /// [`ClientError::SocketTimeout`].
    pub fn connect_v1_timeout(
        addr: impl ToSocketAddrs,
        pipe_size: u32,
        timeout: Duration,
    ) -> ClientResult<PipelinedClient> {
        let mut client =
            Self::from_stream(connect_stream_timeout(addr, timeout)?, pipe_size.max(1))?;
        client.set_io_timeout(Some(timeout))?;
        Ok(client)
    }

    fn from_stream(stream: TcpStream, pipe_size: u32) -> ClientResult<PipelinedClient> {
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(PipelinedClient {
            reader,
            writer: BufWriter::new(stream),
            version: PROTOCOL_V1,
            pipe_size,
            next_id: 0,
            pending: VecDeque::new(),
            ready: HashMap::new(),
            needs_flush: false,
        })
    }

    /// Performs the `Hello` exchange on a fresh connection, upgrading it to
    /// the negotiated version and granted depth.
    fn handshake(&mut self, pipe_size: u32) -> ClientResult<()> {
        write_frame(
            &mut self.writer,
            &Request::Hello {
                max_version: MAX_PROTOCOL_VERSION,
                pipe_size,
            }
            .encode(),
        )?;
        self.writer.flush()?;
        match read_frame(&mut self.reader).map_err(ClientError::from)? {
            None => Err(ClientError::ConnectionClosed),
            Some(payload) => match Response::decode(&payload)? {
                Response::HelloAck {
                    version,
                    pipe_size: granted,
                    ..
                } => {
                    self.version = version;
                    self.pipe_size = granted.max(1);
                    Ok(())
                }
                Response::Error(m) => Err(ClientError::Server(m)),
                _ => Err(ClientError::UnexpectedResponse("HelloAck")),
            },
        }
    }

    /// Sets (or with `None` clears) the read/write timeout on the
    /// underlying socket.  A read that expires surfaces as
    /// [`ClientError::SocketTimeout`] — after which the connection must be
    /// dropped, because a late reply would desynchronize the framing.
    ///
    /// # Errors
    /// Propagates socket errors (`Some(Duration::ZERO)` is rejected by the
    /// OS).
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> ClientResult<()> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        self.writer.get_ref().set_write_timeout(timeout)?;
        Ok(())
    }

    /// The negotiated protocol version ([`PROTOCOL_V1`] or [`PROTOCOL_V2`]).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The granted pipeline depth.
    pub fn pipe_size(&self) -> u32 {
        self.pipe_size
    }

    /// Requests submitted but not yet received.
    pub fn in_flight(&self) -> usize {
        self.pending.len() + self.ready.len()
    }

    /// Submits a request without reading its response, returning the id to
    /// [`PipelinedClient::recv`] later.  When the pipeline is full, blocks
    /// until one in-flight response arrives (stashed for its own `recv`).
    ///
    /// # Errors
    /// Propagates transport errors.
    pub fn submit(&mut self, request: &Request) -> ClientResult<u64> {
        self.submit_with_deadline(request, 0)
    }

    /// [`PipelinedClient::submit`] with a relative server-side deadline in
    /// milliseconds (0 = none): a request still queued server-side when the
    /// deadline passes is answered with a typed timeout instead of running.
    ///
    /// # Errors
    /// [`ClientError::InvalidRequest`] on a v1 connection with a nonzero
    /// deadline (v1 frames have no deadline field); transport errors.
    pub fn submit_with_deadline(
        &mut self,
        request: &Request,
        deadline_ms: u32,
    ) -> ClientResult<u64> {
        if deadline_ms > 0 && self.version < PROTOCOL_V2 {
            return Err(ClientError::InvalidRequest(
                "deadlines need protocol v2 (connect with a handshake)".to_string(),
            ));
        }
        while self.pending.len() >= self.pipe_size as usize {
            let (id, response) = self.read_one()?;
            self.ready.insert(id, response);
        }
        let id = self.next_id;
        self.next_id += 1;
        let payload = if self.version >= PROTOCOL_V2 {
            FrameHeader {
                request_id: id,
                deadline_ms,
            }
            .with_body(&request.encode())
        } else {
            request.encode()
        };
        write_frame(&mut self.writer, &payload)?;
        self.needs_flush = true;
        self.pending.push_back(id);
        Ok(id)
    }

    /// Pushes buffered request frames to the socket without reading
    /// anything.  [`PipelinedClient::recv`] flushes implicitly; this is for
    /// getting requests onto the wire before doing something else.
    ///
    /// # Errors
    /// Propagates transport errors.
    pub fn flush(&mut self) -> ClientResult<()> {
        self.writer.flush()?;
        self.needs_flush = false;
        Ok(())
    }

    /// Blocks until the response for `id` is available and returns it.
    /// Typed failure responses surface as their [`ClientError`] variants
    /// ([`ClientError::Server`], [`ClientError::TimedOut`],
    /// [`ClientError::Overloaded`]); the connection stays usable after any
    /// of them.
    ///
    /// # Errors
    /// As above, plus transport errors.
    pub fn recv(&mut self, id: u64) -> ClientResult<Response> {
        let response = loop {
            if let Some(response) = self.ready.remove(&id) {
                break response;
            }
            if !self.pending.contains(&id) {
                return Err(ClientError::InvalidRequest(format!(
                    "request id {id} is not in flight"
                )));
            }
            let (got, response) = self.read_one()?;
            if got == id {
                break response;
            }
            self.ready.insert(got, response);
        };
        match response {
            Response::Error(m) => Err(ClientError::Server(m)),
            Response::Timeout { deadline_ms } => Err(ClientError::TimedOut { deadline_ms }),
            Response::Overloaded { in_flight, limit } => {
                Err(ClientError::Overloaded { in_flight, limit })
            }
            Response::DatasetUnavailable { name, reason } => {
                Err(ClientError::DatasetUnavailable { name, reason })
            }
            response => Ok(response),
        }
    }

    /// Reads the next response frame off the socket (flushing pending
    /// writes first) and removes its id from the in-flight queue.
    fn read_one(&mut self) -> ClientResult<(u64, Response)> {
        if self.needs_flush {
            self.writer.flush()?;
            self.needs_flush = false;
        }
        match read_frame(&mut self.reader).map_err(ClientError::from)? {
            None => Err(ClientError::ConnectionClosed),
            Some(payload) => {
                let (id, response) = if self.version >= PROTOCOL_V2 {
                    let (header, body) = FrameHeader::split(&payload)?;
                    (header.request_id, Response::decode(body)?)
                } else {
                    let id = self.pending.front().copied().ok_or_else(|| {
                        ClientError::InvalidRequest(
                            "response received with no request in flight".to_string(),
                        )
                    })?;
                    (id, Response::decode(&payload)?)
                };
                if let Some(pos) = self.pending.iter().position(|&p| p == id) {
                    self.pending.remove(pos);
                }
                Ok((id, response))
            }
        }
    }

    /// One request/response round trip through the pipeline machinery.
    ///
    /// # Errors
    /// As [`PipelinedClient::recv`].
    pub fn call(&mut self, request: &Request) -> ClientResult<Response> {
        let id = self.submit(request)?;
        self.recv(id)
    }

    /// Answers eclipse queries for every box, pipelining `chunk`-sized
    /// `QueryBatch` requests up to the connection's depth; results come
    /// back in input order regardless of server-side completion order.
    ///
    /// # Errors
    /// As [`PipelinedClient::recv`].
    pub fn query_many(
        &mut self,
        name: &str,
        boxes: &[WeightRatioBox],
        chunk: usize,
    ) -> ClientResult<Vec<Vec<usize>>> {
        let chunk = chunk.max(1);
        let mut ids = Vec::with_capacity(boxes.len().div_ceil(chunk));
        for probe_chunk in boxes.chunks(chunk) {
            ids.push(self.submit(&Request::QueryBatch {
                name: name.to_string(),
                boxes: wire_boxes(probe_chunk),
            })?);
        }
        let mut out = Vec::with_capacity(boxes.len());
        for id in ids {
            match self.recv(id)? {
                Response::QueryResults(results) => out.extend(
                    results
                        .into_iter()
                        .map(|ids| ids.into_iter().map(|i| i as usize).collect::<Vec<_>>()),
                ),
                _ => return Err(ClientError::UnexpectedResponse("QueryResults")),
            }
        }
        Ok(out)
    }

    /// Count-only sibling of [`PipelinedClient::query_many`].
    ///
    /// # Errors
    /// As [`PipelinedClient::recv`].
    pub fn count_many(
        &mut self,
        name: &str,
        boxes: &[WeightRatioBox],
        chunk: usize,
    ) -> ClientResult<Vec<usize>> {
        let chunk = chunk.max(1);
        let mut ids = Vec::with_capacity(boxes.len().div_ceil(chunk));
        for probe_chunk in boxes.chunks(chunk) {
            ids.push(self.submit(&Request::CountBatch {
                name: name.to_string(),
                boxes: wire_boxes(probe_chunk),
            })?);
        }
        let mut out = Vec::with_capacity(boxes.len());
        for id in ids {
            match self.recv(id)? {
                Response::Counts(counts) => {
                    out.extend(counts.into_iter().map(|c| c as usize));
                }
                _ => return Err(ClientError::UnexpectedResponse("Counts")),
            }
        }
        Ok(out)
    }
}

impl fmt::Debug for PipelinedClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelinedClient")
            .field("peer", &self.reader.get_ref().peer_addr().ok())
            .field("version", &self.version)
            .field("pipe_size", &self.pipe_size)
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

/// A blocking connection to an eclipse-serve server: one request in flight
/// at a time, responses in request order — a depth-1 protocol-v1 wrapper
/// over [`PipelinedClient`], kept so every pre-pipelining caller compiles
/// unchanged (and keeps the server's v1 fallback path covered).
pub struct Client {
    inner: PipelinedClient,
}

impl Client {
    /// Connects to a server (no handshake: the connection speaks v1).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        Ok(Client {
            inner: PipelinedClient::connect_v1(addr, 1)?,
        })
    }

    /// [`Client::connect`] with timeouts: the TCP connect and every
    /// subsequent read/write give up after `timeout` with
    /// [`ClientError::SocketTimeout`] instead of blocking indefinitely on
    /// an unresponsive peer.
    ///
    /// # Errors
    /// Propagates socket errors, plus [`ClientError::SocketTimeout`].
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> ClientResult<Client> {
        Ok(Client {
            inner: PipelinedClient::connect_v1_timeout(addr, 1, timeout)?,
        })
    }

    /// Sets (or clears) the read/write timeout on the underlying socket —
    /// see [`PipelinedClient::set_io_timeout`].
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> ClientResult<()> {
        self.inner.set_io_timeout(timeout)
    }

    /// One request/response round trip.  Error responses surface as
    /// [`ClientError::Server`]; the connection stays usable afterwards.
    fn call(&mut self, request: &Request) -> ClientResult<Response> {
        self.inner.call(request)
    }

    /// Liveness check.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn ping(&mut self) -> ClientResult<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("Pong")),
        }
    }

    /// Registers (or replaces) a dataset from in-memory points; the server
    /// warms the `warm` index before acknowledging.
    ///
    /// # Errors
    /// Mixed dimensionalities are rejected client-side (the flat wire format
    /// could otherwise silently regroup the coordinates into different
    /// points); empty datasets and non-finite coordinates are rejected
    /// server-side.
    pub fn load_dataset(
        &mut self,
        name: &str,
        points: &[Point],
        warm: IndexKind,
    ) -> ClientResult<DatasetSummary> {
        let dim = points.first().map_or(0, Point::dim);
        if let Some(p) = points.iter().find(|p| p.dim() != dim) {
            return Err(ClientError::InvalidRequest(format!(
                "mixed dimensionalities: first point has {dim}, another has {}",
                p.dim()
            )));
        }
        let mut coords = Vec::with_capacity(points.len() * dim);
        for p in points {
            coords.extend_from_slice(p.coords());
        }
        let request = Request::LoadDataset {
            name: name.to_string(),
            dim: dim as u32,
            coords,
            warm,
        };
        match self.call(&request)? {
            Response::DatasetLoaded(summary) => Ok(summary),
            _ => Err(ClientError::UnexpectedResponse("DatasetLoaded")),
        }
    }

    /// Eagerly builds (and caches) the index of the given kind.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn build_index(&mut self, name: &str, kind: IndexKind) -> ClientResult<IndexSummary> {
        let request = Request::BuildIndex {
            name: name.to_string(),
            kind,
        };
        match self.call(&request)? {
            Response::IndexBuilt(summary) => Ok(summary),
            _ => Err(ClientError::UnexpectedResponse("IndexBuilt")),
        }
    }

    /// Appends one point to the named dataset; the skyline and any built
    /// indexes are maintained incrementally and the dataset epoch advances.
    ///
    /// Inserts are **not idempotent**: after an ambiguous transport failure
    /// the caller must check `Stats` (dataset epoch/size) before resending.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn insert(&mut self, name: &str, coords: &[f64]) -> ClientResult<MutationAck> {
        let request = Request::Insert {
            name: name.to_string(),
            coords: coords.to_vec(),
        };
        match self.call(&request)? {
            Response::Mutated { kind, epoch, len } => Ok(MutationAck { kind, epoch, len }),
            _ => Err(ClientError::UnexpectedResponse("Mutated")),
        }
    }

    /// Deletes the point with the given id from the named dataset (ids above
    /// it shift down by one).  Not idempotent — see [`Client::insert`].
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn delete(&mut self, name: &str, id: u64) -> ClientResult<MutationAck> {
        let request = Request::Delete {
            name: name.to_string(),
            id,
        };
        match self.call(&request)? {
            Response::Mutated { kind, epoch, len } => Ok(MutationAck { kind, epoch, len }),
            _ => Err(ClientError::UnexpectedResponse("Mutated")),
        }
    }

    /// Answers a batch of eclipse queries; results are dataset point indices
    /// in ascending order, one vector per box, in input order.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn query_batch(
        &mut self,
        name: &str,
        boxes: &[WeightRatioBox],
    ) -> ClientResult<Vec<Vec<usize>>> {
        let request = Request::QueryBatch {
            name: name.to_string(),
            boxes: wire_boxes(boxes),
        };
        match self.call(&request)? {
            Response::QueryResults(results) => Ok(results
                .into_iter()
                .map(|ids| ids.into_iter().map(|i| i as usize).collect())
                .collect()),
            _ => Err(ClientError::UnexpectedResponse("QueryResults")),
        }
    }

    /// Answers a batch of count-only eclipse queries: one result cardinality
    /// per box, in input order.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn count_batch(
        &mut self,
        name: &str,
        boxes: &[WeightRatioBox],
    ) -> ClientResult<Vec<usize>> {
        let request = Request::CountBatch {
            name: name.to_string(),
            boxes: wire_boxes(boxes),
        };
        match self.call(&request)? {
            Response::Counts(counts) => Ok(counts.into_iter().map(|c| c as usize).collect()),
            _ => Err(ClientError::UnexpectedResponse("Counts")),
        }
    }

    /// Persists the named dataset plus its built index of the given kind
    /// into the server's snapshot directory, returning the snapshot size in
    /// bytes.
    ///
    /// # Errors
    /// [`ClientError::Server`] when the server runs without a snapshot
    /// directory; transport errors otherwise.
    pub fn save_index(&mut self, name: &str, kind: IndexKind) -> ClientResult<u64> {
        let request = Request::SaveIndex {
            name: name.to_string(),
            kind,
        };
        match self.call(&request)? {
            Response::SnapshotSaved { bytes } => Ok(bytes),
            _ => Err(ClientError::UnexpectedResponse("SnapshotSaved")),
        }
    }

    /// Restores a previously saved index of the given kind from the
    /// server's snapshot directory into the named dataset's engine.  The
    /// server validates the snapshot against the registered dataset; a
    /// mismatch is a server error, not wrong results.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn restore_index(&mut self, name: &str, kind: IndexKind) -> ClientResult<IndexSummary> {
        let request = Request::RestoreIndex {
            name: name.to_string(),
            kind,
        };
        match self.call(&request)? {
            Response::IndexBuilt(summary) => Ok(summary),
            _ => Err(ClientError::UnexpectedResponse("IndexBuilt")),
        }
    }

    /// Directs the server to scan its snapshot directory and restore every
    /// snapshot in it (the failover re-warm primitive).  Returns the
    /// restored `(name, summary)` pairs and the `(path, error)` pairs of
    /// files that were skipped as corrupt/stale — a skip is not an error,
    /// so one bad file cannot block a re-warm.
    ///
    /// # Errors
    /// [`ClientError::Server`] when the server runs without a snapshot
    /// directory; transport errors otherwise.
    #[allow(clippy::type_complexity)]
    pub fn load_snapshots(
        &mut self,
    ) -> ClientResult<(Vec<(String, DatasetSummary)>, Vec<(String, String)>)> {
        match self.call(&Request::LoadSnapshots)? {
            Response::SnapshotsLoaded { restored, skipped } => Ok((restored, skipped)),
            _ => Err(ClientError::UnexpectedResponse("SnapshotsLoaded")),
        }
    }

    /// Opts this connection into degraded reads: when the serving side
    /// cannot reach every shard, it may answer probes with
    /// per-box-nullable partial results instead of a hard error.  A
    /// single-process server acknowledges but always serves complete
    /// results.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn allow_partial(&mut self, enabled: bool) -> ClientResult<bool> {
        match self.call(&Request::AllowPartial { enabled })? {
            Response::PartialAck { enabled } => Ok(enabled),
            _ => Err(ClientError::UnexpectedResponse("PartialAck")),
        }
    }

    /// [`Client::query_batch`] for degraded-opted-in connections: each box
    /// answers `Some(ids)`, or `None` when every shard owning it was down.
    /// A complete [`Response::QueryResults`] answer is accepted too (all
    /// `Some`), so the same helper works against plain servers.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn query_batch_degraded(
        &mut self,
        name: &str,
        boxes: &[WeightRatioBox],
    ) -> ClientResult<Vec<Option<Vec<usize>>>> {
        let request = Request::QueryBatch {
            name: name.to_string(),
            boxes: wire_boxes(boxes),
        };
        match self.call(&request)? {
            Response::QueryResults(results) => Ok(results
                .into_iter()
                .map(|ids| Some(ids.into_iter().map(|i| i as usize).collect()))
                .collect()),
            Response::PartialResults(results) => Ok(results
                .into_iter()
                .map(|row| row.map(|ids| ids.into_iter().map(|i| i as usize).collect()))
                .collect()),
            _ => Err(ClientError::UnexpectedResponse("QueryResults")),
        }
    }

    /// Count-only sibling of [`Client::query_batch_degraded`].
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn count_batch_degraded(
        &mut self,
        name: &str,
        boxes: &[WeightRatioBox],
    ) -> ClientResult<Vec<Option<usize>>> {
        let request = Request::CountBatch {
            name: name.to_string(),
            boxes: wire_boxes(boxes),
        };
        match self.call(&request)? {
            Response::Counts(counts) => Ok(counts.into_iter().map(|c| Some(c as usize)).collect()),
            Response::PartialCounts(counts) => {
                Ok(counts.into_iter().map(|c| c.map(|c| c as usize)).collect())
            }
            _ => Err(ClientError::UnexpectedResponse("Counts")),
        }
    }

    /// Fetches server and per-dataset statistics.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn stats(&mut self) -> ClientResult<StatsReport> {
        match self.call(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            _ => Err(ClientError::UnexpectedResponse("Stats")),
        }
    }
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.inner.reader.get_ref().peer_addr().ok())
            .finish()
    }
}

/// Resolves `addr` and makes a timed TCP connect to each candidate in turn,
/// returning the first stream that comes up (std's plain `connect` does the
/// same sweep, but `TcpStream::connect_timeout` only takes one resolved
/// address).
fn connect_stream_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> ClientResult<TcpStream> {
    let mut last: Option<io::Error> = None;
    for candidate in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&candidate, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
    }
    Err(last.map(ClientError::from).unwrap_or_else(|| {
        ClientError::InvalidRequest("address resolved to no socket addresses".to_string())
    }))
}

/// Lowers weight-ratio boxes to their wire form.
fn wire_boxes(boxes: &[WeightRatioBox]) -> Vec<WireBox> {
    boxes
        .iter()
        .map(|b| b.ranges().iter().map(|r| (r.lo(), r.hi())).collect())
        .collect()
}
