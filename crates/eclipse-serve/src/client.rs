//! A small blocking client for the eclipse-serve protocol — used by the
//! integration tests, the examples, and the `experiments -- serve`
//! throughput sweep.

use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use eclipse_core::point::Point;
use eclipse_core::WeightRatioBox;

use crate::protocol::{
    read_frame, write_frame, DatasetSummary, IndexKind, IndexSummary, ProtocolError, Request,
    Response, StatsReport, WireBox,
};

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's bytes did not decode.
    Protocol(ProtocolError),
    /// The server answered with an error response.
    Server(String),
    /// The request was rejected client-side before anything was sent.
    InvalidRequest(String),
    /// The server answered with a well-formed response of the wrong kind.
    UnexpectedResponse(&'static str),
    /// The server closed the connection instead of answering.
    ConnectionClosed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            ClientError::UnexpectedResponse(expected) => {
                write!(f, "unexpected response (expected {expected})")
            }
            ClientError::ConnectionClosed => write!(f, "connection closed by server"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// A blocking connection to an eclipse-serve server.  One request is in
/// flight at a time; responses arrive in request order.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// One request/response round trip.  Error responses surface as
    /// [`ClientError::Server`]; the connection stays usable afterwards.
    fn call(&mut self, request: &Request) -> ClientResult<Response> {
        write_frame(&mut self.writer, &request.encode())?;
        self.writer.flush()?;
        match read_frame(&mut self.reader)? {
            None => Err(ClientError::ConnectionClosed),
            Some(payload) => match Response::decode(&payload)? {
                Response::Error(message) => Err(ClientError::Server(message)),
                response => Ok(response),
            },
        }
    }

    /// Liveness check.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn ping(&mut self) -> ClientResult<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("Pong")),
        }
    }

    /// Registers (or replaces) a dataset from in-memory points; the server
    /// warms the `warm` index before acknowledging.
    ///
    /// # Errors
    /// Mixed dimensionalities are rejected client-side (the flat wire format
    /// could otherwise silently regroup the coordinates into different
    /// points); empty datasets and non-finite coordinates are rejected
    /// server-side.
    pub fn load_dataset(
        &mut self,
        name: &str,
        points: &[Point],
        warm: IndexKind,
    ) -> ClientResult<DatasetSummary> {
        let dim = points.first().map_or(0, Point::dim);
        if let Some(p) = points.iter().find(|p| p.dim() != dim) {
            return Err(ClientError::InvalidRequest(format!(
                "mixed dimensionalities: first point has {dim}, another has {}",
                p.dim()
            )));
        }
        let mut coords = Vec::with_capacity(points.len() * dim);
        for p in points {
            coords.extend_from_slice(p.coords());
        }
        let request = Request::LoadDataset {
            name: name.to_string(),
            dim: dim as u32,
            coords,
            warm,
        };
        match self.call(&request)? {
            Response::DatasetLoaded(summary) => Ok(summary),
            _ => Err(ClientError::UnexpectedResponse("DatasetLoaded")),
        }
    }

    /// Eagerly builds (and caches) the index of the given kind.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn build_index(&mut self, name: &str, kind: IndexKind) -> ClientResult<IndexSummary> {
        let request = Request::BuildIndex {
            name: name.to_string(),
            kind,
        };
        match self.call(&request)? {
            Response::IndexBuilt(summary) => Ok(summary),
            _ => Err(ClientError::UnexpectedResponse("IndexBuilt")),
        }
    }

    /// Answers a batch of eclipse queries; results are dataset point indices
    /// in ascending order, one vector per box, in input order.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn query_batch(
        &mut self,
        name: &str,
        boxes: &[WeightRatioBox],
    ) -> ClientResult<Vec<Vec<usize>>> {
        let request = Request::QueryBatch {
            name: name.to_string(),
            boxes: wire_boxes(boxes),
        };
        match self.call(&request)? {
            Response::QueryResults(results) => Ok(results
                .into_iter()
                .map(|ids| ids.into_iter().map(|i| i as usize).collect())
                .collect()),
            _ => Err(ClientError::UnexpectedResponse("QueryResults")),
        }
    }

    /// Answers a batch of count-only eclipse queries: one result cardinality
    /// per box, in input order.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn count_batch(
        &mut self,
        name: &str,
        boxes: &[WeightRatioBox],
    ) -> ClientResult<Vec<usize>> {
        let request = Request::CountBatch {
            name: name.to_string(),
            boxes: wire_boxes(boxes),
        };
        match self.call(&request)? {
            Response::Counts(counts) => Ok(counts.into_iter().map(|c| c as usize).collect()),
            _ => Err(ClientError::UnexpectedResponse("Counts")),
        }
    }

    /// Persists the named dataset plus its built index of the given kind
    /// into the server's snapshot directory, returning the snapshot size in
    /// bytes.
    ///
    /// # Errors
    /// [`ClientError::Server`] when the server runs without a snapshot
    /// directory; transport errors otherwise.
    pub fn save_index(&mut self, name: &str, kind: IndexKind) -> ClientResult<u64> {
        let request = Request::SaveIndex {
            name: name.to_string(),
            kind,
        };
        match self.call(&request)? {
            Response::SnapshotSaved { bytes } => Ok(bytes),
            _ => Err(ClientError::UnexpectedResponse("SnapshotSaved")),
        }
    }

    /// Restores a previously saved index of the given kind from the
    /// server's snapshot directory into the named dataset's engine.  The
    /// server validates the snapshot against the registered dataset; a
    /// mismatch is a server error, not wrong results.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn restore_index(&mut self, name: &str, kind: IndexKind) -> ClientResult<IndexSummary> {
        let request = Request::RestoreIndex {
            name: name.to_string(),
            kind,
        };
        match self.call(&request)? {
            Response::IndexBuilt(summary) => Ok(summary),
            _ => Err(ClientError::UnexpectedResponse("IndexBuilt")),
        }
    }

    /// Fetches server and per-dataset statistics.
    ///
    /// # Errors
    /// Propagates transport and server errors.
    pub fn stats(&mut self) -> ClientResult<StatsReport> {
        match self.call(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            _ => Err(ClientError::UnexpectedResponse("Stats")),
        }
    }
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.reader.get_ref().peer_addr().ok())
            .finish()
    }
}

/// Lowers weight-ratio boxes to their wire form.
fn wire_boxes(boxes: &[WeightRatioBox]) -> Vec<WireBox> {
    boxes
        .iter()
        .map(|b| b.ranges().iter().map(|r| (r.lo(), r.hi())).collect())
        .collect()
}
