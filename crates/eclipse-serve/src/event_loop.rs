//! The readiness-driven server core: one thread owning every socket,
//! non-blocking I/O, and a completion queue fed by dispatcher workers.
//!
//! The previous serving core was thread-per-connection with strictly
//! serialized request/response pairs — pipelining was structurally
//! impossible.  This loop replaces it:
//!
//! * the listener and every connection socket are **non-blocking**; the loop
//!   polls them round-robin, with an adaptive backoff (spin → yield →
//!   `park_timeout`) when nothing is ready, and dispatcher workers `unpark`
//!   the loop the moment a response is ready (std only — no `epoll`, no
//!   external crates, no `unsafe`);
//! * decoded requests are handed to an [`eclipse_exec::Dispatcher`] whose
//!   workers run [`ServerState::respond`] and push the fully framed response
//!   bytes onto a [`Completions`] queue; the loop drains that queue into the
//!   per-connection write buffers.  When the server is otherwise idle, a
//!   cheap request (`Ping`/`QueryBatch`/`CountBatch`) is answered **inline**
//!   on the loop thread instead, so the unpipelined round trip pays no
//!   handoff latency;
//! * **admission control**: a per-connection in-flight cap (the negotiated
//!   pipeline depth) and a global cap; a request over either limit is
//!   answered immediately with [`Response::Overloaded`] — typed, counted,
//!   connection stays usable;
//! * **deadlines**: a v2 frame's `deadline_ms` is measured from the read
//!   that delivered its bytes; a request whose deadline has passed when
//!   execution would start (inline, at admission, or on the worker) is
//!   answered with [`Response::Timeout`] instead of being run;
//! * **v1 ordering**: v1 clients are promised responses in request order, so
//!   each v1 request carries an internal sequence number and completions
//!   pass through a reorder buffer before entering the write buffer.  v2
//!   responses are written in completion order and correlated by the echoed
//!   request id;
//! * **graceful drain**: on shutdown the loop closes the listener, stops
//!   reading, lets every admitted request complete, flushes the write
//!   buffers, and only then exits (bounded by the configured drain timeout).
//!   The hard-stop path (`abort`) skips the drain.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use eclipse_exec::Dispatcher;

use crate::protocol::{
    FrameHeader, Request, Response, MAX_FRAME_LEN, MAX_PROTOCOL_VERSION, PROTOCOL_V2,
};
use crate::server::{ServerConfig, ServerState};

/// Idle iterations spent on `yield_now` before the loop starts parking.
/// Yields keep wake-up latency in the microseconds while any peer thread is
/// runnable; parking only kicks in once the server has been genuinely idle.
const IDLE_SPINS_BEFORE_PARK: u32 = 4096;

/// Longest single park; completions `unpark` the loop early, so this bounds
/// only the latency of events with no waker (new connections, new request
/// bytes).
const MAX_PARK: Duration = Duration::from_millis(1);

/// Stop reading from a connection whose un-flushed responses exceed this —
/// natural backpressure against a peer that sends but does not read.
const WBUF_SOFT_CAP: usize = 4 << 20;

/// Compact a buffer once its consumed prefix exceeds this.
const COMPACT_AT: usize = 64 << 10;

/// A finished request: the fully framed wire bytes plus enough routing to
/// deliver them (connection, v1 sequence number, v2 request id).
struct Completion {
    conn_id: u64,
    seq: u64,
    request_id: u64,
    wire: Vec<u8>,
}

/// The queue dispatcher workers push finished responses onto, plus the
/// loop's thread handle so a push can `unpark` it out of its backoff.
pub(crate) struct Completions {
    queue: Mutex<Vec<Completion>>,
    loop_thread: Mutex<Option<std::thread::Thread>>,
}

impl Completions {
    fn new() -> Completions {
        Completions {
            queue: Mutex::new(Vec::new()),
            loop_thread: Mutex::new(None),
        }
    }

    fn push(&self, done: Completion) {
        self.queue
            .lock()
            .expect("completion queue poisoned")
            .push(done);
        if let Some(thread) = &*self.loop_thread.lock().expect("loop thread slot poisoned") {
            thread.unpark();
        }
    }

    fn take(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.queue.lock().expect("completion queue poisoned"))
    }
}

/// Which framing a connection has settled on.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// No frame seen yet: the first frame decides (a `Hello` negotiates,
    /// anything else locks the connection to v1).
    Fresh,
    /// Bare bodies, responses strictly in request order.
    V1,
    /// 12-byte [`FrameHeader`] per frame, responses in completion order.
    V2,
}

/// Per-connection state owned by the loop thread.
struct Conn {
    stream: TcpStream,
    mode: Mode,
    /// Negotiated per-connection in-flight cap.
    pipe_limit: u32,
    /// Read buffer: bytes `[rpos..]` are un-parsed.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Timestamp of the read that most recently appended to `rbuf`; v2
    /// deadlines are measured from here.
    read_at: Instant,
    /// When the connection was accepted; half-open hygiene measures the
    /// first-frame idle window from here.
    created: Instant,
    /// Write buffer: bytes `[wpos..]` are un-sent.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Requests admitted but not yet answered into `wbuf`.
    in_flight: u32,
    /// Mirror of `in_flight` readable by `Stats` workers.
    depth_gauge: Arc<AtomicU32>,
    /// v2: ids currently in flight (duplicates are rejected).
    live_ids: HashSet<u64>,
    /// v1: next sequence number to assign to an arriving request.
    next_seq: u64,
    /// v1: next sequence number the write buffer is waiting for.
    next_to_send: u64,
    /// v1: completions that finished ahead of their turn.
    reorder: BTreeMap<u64, Vec<u8>>,
    /// No more requests will be read (EOF, broken framing, or drain).
    closed_read: bool,
    /// Remove the connection at the next sweep.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, depth_gauge: Arc<AtomicU32>) -> Conn {
        Conn {
            stream,
            mode: Mode::Fresh,
            pipe_limit: 1,
            rbuf: Vec::new(),
            rpos: 0,
            read_at: Instant::now(),
            created: Instant::now(),
            wbuf: Vec::new(),
            wpos: 0,
            in_flight: 0,
            depth_gauge,
            live_ids: HashSet::new(),
            next_seq: 0,
            next_to_send: 0,
            reorder: BTreeMap::new(),
            closed_read: false,
            dead: false,
        }
    }

    fn flushed(&self) -> bool {
        self.wpos == self.wbuf.len()
    }

    /// True once nothing can ever be written to this connection again.
    fn finished(&self) -> bool {
        self.closed_read && self.in_flight == 0 && self.reorder.is_empty() && self.flushed()
    }

    fn set_in_flight(&mut self, n: u32) {
        self.in_flight = n;
        self.depth_gauge.store(n, Ordering::Relaxed);
    }
}

/// How to frame a response for its connection.
#[derive(Clone, Copy)]
enum Route {
    /// v1 (and handshake) frames: bare body, delivered through the sequence
    /// reorder buffer when `seq` ordering applies.
    V1,
    /// v2 frames: prepend a [`FrameHeader`] echoing the request id.
    V2 { request_id: u64 },
}

/// Frames one response into complete wire bytes (length prefix included).
/// A response too large for one frame is replaced by a typed error — the
/// client must not lose the connection over an oversized batch result.
fn encode_wire(route: Route, response: &Response, state: &ServerState) -> Vec<u8> {
    let header_len = match route {
        Route::V1 => 0,
        Route::V2 { .. } => crate::protocol::V2_HEADER_LEN,
    };
    let mut body = response.encode();
    if header_len + body.len() > MAX_FRAME_LEN as usize {
        state.errors.fetch_add(1, Ordering::Relaxed);
        body = Response::Error(format!(
            "response of {} bytes exceeds the {MAX_FRAME_LEN} byte frame cap; \
             split the batch into smaller requests",
            body.len()
        ))
        .encode();
    }
    let payload_len = (header_len + body.len()) as u32;
    let mut wire = Vec::with_capacity(4 + payload_len as usize);
    wire.extend_from_slice(&payload_len.to_le_bytes());
    if let Route::V2 { request_id } = route {
        FrameHeader {
            request_id,
            deadline_ms: 0,
        }
        .encode_into(&mut wire);
    }
    wire.extend_from_slice(&body);
    wire
}

/// Appends a v1 completion in sequence order: the frame for `seq` enters the
/// write buffer only after every earlier sequence number has.
fn push_in_order(conn: &mut Conn, seq: u64, wire: Vec<u8>) {
    if seq == conn.next_to_send {
        conn.wbuf.extend_from_slice(&wire);
        conn.next_to_send += 1;
        while let Some(next) = conn.reorder.remove(&conn.next_to_send) {
            conn.wbuf.extend_from_slice(&next);
            conn.next_to_send += 1;
        }
    } else {
        conn.reorder.insert(seq, wire);
    }
}

/// Delivers a response produced on the loop thread (handshakes, rejections,
/// inline executions): v1 responses consume the next sequence number so they
/// stay ordered relative to dispatched requests, v2 responses append.
fn deliver_now(conn: &mut Conn, route: Route, response: &Response, state: &ServerState) {
    let wire = encode_wire(route, response, state);
    match route {
        Route::V1 if conn.mode != Mode::Fresh => {
            let seq = conn.next_seq;
            conn.next_seq += 1;
            push_in_order(conn, seq, wire);
        }
        _ => conn.wbuf.extend_from_slice(&wire),
    }
}

/// Everything the per-connection handlers need besides the connection map —
/// split out so the loop can borrow `conns` mutably alongside it.
struct LoopCtx {
    state: Arc<ServerState>,
    config: ServerConfig,
    dispatcher: Dispatcher,
    completions: Arc<Completions>,
}

/// The server core: owns the listener, every connection, and the dispatcher.
pub(crate) struct EventLoop {
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    next_conn_id: u64,
    ctx: LoopCtx,
}

impl EventLoop {
    pub(crate) fn new(
        listener: TcpListener,
        state: Arc<ServerState>,
        config: ServerConfig,
    ) -> EventLoop {
        let workers = if config.workers == 0 {
            state.exec().threads()
        } else {
            config.workers
        };
        EventLoop {
            listener: Some(listener),
            conns: HashMap::new(),
            next_conn_id: 0,
            ctx: LoopCtx {
                state,
                config,
                dispatcher: Dispatcher::new(workers),
                completions: Arc::new(Completions::new()),
            },
        }
    }

    /// Runs until `stop` (graceful drain) or `hard_stop` (abort) is set.
    pub(crate) fn run(mut self, stop: &AtomicBool, hard_stop: &AtomicBool) {
        *self
            .ctx
            .completions
            .loop_thread
            .lock()
            .expect("loop thread slot poisoned") = Some(std::thread::current());
        let mut scratch = vec![0u8; 64 << 10];
        let mut draining = false;
        let mut drain_deadline = Instant::now();
        let mut idle_iters: u32 = 0;
        let mut park = Duration::from_micros(50);
        loop {
            if hard_stop.load(Ordering::Acquire) {
                break;
            }
            if !draining && stop.load(Ordering::Acquire) {
                draining = true;
                drain_deadline = Instant::now() + self.ctx.config.drain_timeout;
                // Closing the listener refuses new connections at the OS
                // level; existing connections stop being read below.
                self.listener = None;
                for conn in self.conns.values_mut() {
                    conn.closed_read = true;
                }
            }
            let mut progress = false;

            // 1. Finished requests → write buffers (v1 via the reorder
            //    buffer, v2 straight through).
            for done in self.ctx.completions.take() {
                progress = true;
                self.ctx.state.in_flight.fetch_sub(1, Ordering::Relaxed);
                if let Some(conn) = self.conns.get_mut(&done.conn_id) {
                    conn.set_in_flight(conn.in_flight.saturating_sub(1));
                    match conn.mode {
                        Mode::V2 => {
                            conn.live_ids.remove(&done.request_id);
                            conn.wbuf.extend_from_slice(&done.wire);
                        }
                        _ => push_in_order(conn, done.seq, done.wire),
                    }
                }
            }

            // 2. New connections.
            if let Some(listener) = &self.listener {
                while self.conns.len() < self.ctx.config.max_connections {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            progress = true;
                            if stream.set_nonblocking(true).is_err()
                                || stream.set_nodelay(true).is_err()
                            {
                                continue;
                            }
                            let id = self.next_conn_id;
                            self.next_conn_id += 1;
                            let gauge = self.ctx.state.register_conn(id);
                            self.conns.insert(id, Conn::new(stream, gauge));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }

            // 3. Per-connection I/O: read + parse + admit, then flush.
            let ctx = &self.ctx;
            for (&id, conn) in self.conns.iter_mut() {
                progress |= service_conn(ctx, id, conn, &mut scratch);
            }

            // 4. Reap connections with nothing left to do — plus half-open
            //    hygiene: a connection still waiting for its *first*
            //    complete frame past the idle window is dropped so a peer
            //    that accepts and goes silent cannot hold a slot (of
            //    max_connections) forever.  A connection past its first
            //    frame (mode settled) is never idle-reaped.
            let state = &self.ctx.state;
            let idle_timeout = self.ctx.config.idle_timeout;
            let now = Instant::now();
            self.conns.retain(|id, conn| {
                let half_open_expired = conn.mode == Mode::Fresh
                    && idle_timeout.is_some_and(|t| now.duration_since(conn.created) >= t);
                let keep = !conn.dead && !conn.finished() && !half_open_expired;
                if !keep {
                    state.unregister_conn(*id);
                }
                keep
            });

            // 5. Drain exit: every admitted request answered and flushed.
            if draining {
                let quiet = self.ctx.state.in_flight.load(Ordering::Relaxed) == 0
                    && self.conns.values().all(Conn::flushed);
                if quiet || Instant::now() >= drain_deadline {
                    break;
                }
            }

            // 6. Backoff: spin while traffic is hot, park when idle.
            if progress {
                idle_iters = 0;
                park = Duration::from_micros(50);
            } else {
                idle_iters = idle_iters.saturating_add(1);
                if idle_iters < IDLE_SPINS_BEFORE_PARK {
                    std::thread::yield_now();
                } else {
                    std::thread::park_timeout(park);
                    park = (park * 2).min(MAX_PARK);
                }
            }
        }
        // Teardown: close sockets first so clients see EOF promptly, then
        // stop the workers (graceful drain already emptied the queue; the
        // hard path drops whatever is left).
        self.conns.clear();
        self.ctx.dispatcher.shutdown_now();
    }
}

/// One connection's turn: pull bytes, parse complete frames, admit or
/// reject each request, then push out whatever is writable.  Returns
/// whether anything happened (for the loop's backoff).
fn service_conn(ctx: &LoopCtx, id: u64, conn: &mut Conn, scratch: &mut [u8]) -> bool {
    let mut progress = false;
    if !conn.closed_read && !conn.dead && conn.wbuf.len() - conn.wpos < WBUF_SOFT_CAP {
        progress |= read_some(conn, scratch);
        loop {
            match take_frame(conn) {
                Ok(Some(payload)) => handle_frame(ctx, id, conn, &payload),
                Ok(None) => break,
                Err(len) => {
                    // The length prefix itself is garbage: the byte stream
                    // can no longer be trusted.  Best-effort typed error,
                    // then close once it (and any pending work) flushes.
                    ctx.state.errors.fetch_add(1, Ordering::Relaxed);
                    let response = Response::Error(format!("frame of {len} bytes exceeds the cap"));
                    let route = match conn.mode {
                        Mode::V2 => Route::V2 { request_id: 0 },
                        _ => Route::V1,
                    };
                    deliver_now(conn, route, &response, &ctx.state);
                    conn.closed_read = true;
                    break;
                }
            }
        }
    }
    progress |= flush_some(conn);
    progress
}

/// Non-blocking read into the connection's buffer until the socket would
/// block.  EOF and errors mark the read side closed.
fn read_some(conn: &mut Conn, scratch: &mut [u8]) -> bool {
    let mut any = false;
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.closed_read = true;
                break;
            }
            Ok(n) => {
                any = true;
                conn.rbuf.extend_from_slice(&scratch[..n]);
                if n < scratch.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if any {
        conn.read_at = Instant::now();
    }
    any
}

/// Writes as much of the pending output as the socket accepts.
fn flush_some(conn: &mut Conn) -> bool {
    let mut any = false;
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                any = true;
                conn.wpos += n;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if conn.wpos > COMPACT_AT {
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
    any
}

/// Extracts the next complete frame payload, or `Err(len)` when the length
/// prefix exceeds the cap (framing is broken beyond recovery).
fn take_frame(conn: &mut Conn) -> Result<Option<Vec<u8>>, u64> {
    let avail = conn.rbuf.len() - conn.rpos;
    if avail < 4 {
        return Ok(None);
    }
    let len_bytes: [u8; 4] = conn.rbuf[conn.rpos..conn.rpos + 4]
        .try_into()
        .expect("4-byte slice");
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(u64::from(len));
    }
    let len = len as usize;
    if avail < 4 + len {
        return Ok(None);
    }
    let start = conn.rpos + 4;
    let payload = conn.rbuf[start..start + len].to_vec();
    conn.rpos = start + len;
    if conn.rpos == conn.rbuf.len() {
        conn.rbuf.clear();
        conn.rpos = 0;
    } else if conn.rpos > COMPACT_AT {
        conn.rbuf.drain(..conn.rpos);
        conn.rpos = 0;
    }
    Ok(Some(payload))
}

/// Decodes one frame under the connection's mode and admits the request.
fn handle_frame(ctx: &LoopCtx, id: u64, conn: &mut Conn, payload: &[u8]) {
    match conn.mode {
        Mode::Fresh => match Request::decode(payload) {
            Ok(Request::Hello {
                max_version,
                pipe_size,
            }) => {
                let version = max_version.clamp(1, MAX_PROTOCOL_VERSION);
                let granted = pipe_size.clamp(1, ctx.config.max_pipeline);
                conn.mode = if version >= PROTOCOL_V2 {
                    Mode::V2
                } else {
                    Mode::V1
                };
                conn.pipe_limit = granted;
                let ack = Response::HelloAck {
                    version,
                    pipe_size: granted,
                    max_frame_len: MAX_FRAME_LEN,
                };
                // The ack itself is always v1-framed: the client only
                // switches framing after reading it.
                conn.wbuf
                    .extend_from_slice(&encode_wire(Route::V1, &ack, &ctx.state));
            }
            decoded => {
                // Any non-Hello first frame locks the connection to v1.
                conn.mode = Mode::V1;
                conn.pipe_limit = ctx.config.max_pipeline;
                finish_decoded(ctx, id, conn, decoded, Route::V1, 0);
            }
        },
        Mode::V1 => finish_decoded(ctx, id, conn, Request::decode(payload), Route::V1, 0),
        Mode::V2 => match FrameHeader::split(payload) {
            Ok((header, body)) => {
                if !conn.live_ids.is_empty() && conn.live_ids.contains(&header.request_id) {
                    ctx.state.errors.fetch_add(1, Ordering::Relaxed);
                    let response = Response::Error(format!(
                        "request id {} is already in flight on this connection",
                        header.request_id
                    ));
                    deliver_now(
                        conn,
                        Route::V2 {
                            request_id: header.request_id,
                        },
                        &response,
                        &ctx.state,
                    );
                    return;
                }
                finish_decoded(
                    ctx,
                    id,
                    conn,
                    Request::decode(body),
                    Route::V2 {
                        request_id: header.request_id,
                    },
                    header.deadline_ms,
                );
            }
            Err(_) => {
                // Shorter than a v2 header: framing is out of sync; close.
                ctx.state.errors.fetch_add(1, Ordering::Relaxed);
                let response =
                    Response::Error("v2 frame shorter than its 12-byte header".to_string());
                deliver_now(conn, Route::V2 { request_id: 0 }, &response, &ctx.state);
                conn.closed_read = true;
            }
        },
    }
}

/// Admission for one decoded request: malformed → typed error; over a cap →
/// `Overloaded`; expired → `Timeout`; otherwise run inline (idle fast path)
/// or dispatch to a worker.
fn finish_decoded(
    ctx: &LoopCtx,
    id: u64,
    conn: &mut Conn,
    decoded: Result<Request, crate::protocol::ProtocolError>,
    route: Route,
    deadline_ms: u32,
) {
    let request = match decoded {
        Ok(request) => request,
        Err(e) => {
            ctx.state.errors.fetch_add(1, Ordering::Relaxed);
            let response = Response::Error(format!("malformed request: {e}"));
            deliver_now(conn, route, &response, &ctx.state);
            return;
        }
    };
    // Per-connection, then global admission control.
    if conn.in_flight >= conn.pipe_limit {
        ctx.state.rejected.fetch_add(1, Ordering::Relaxed);
        let response = Response::Overloaded {
            in_flight: conn.in_flight,
            limit: conn.pipe_limit,
        };
        deliver_now(conn, route, &response, &ctx.state);
        return;
    }
    let global = ctx.state.in_flight.load(Ordering::Relaxed);
    if global >= u64::from(ctx.config.max_in_flight) {
        ctx.state.rejected.fetch_add(1, Ordering::Relaxed);
        let response = Response::Overloaded {
            in_flight: global.min(u64::from(u32::MAX)) as u32,
            limit: ctx.config.max_in_flight,
        };
        deliver_now(conn, route, &response, &ctx.state);
        return;
    }
    let deadline =
        (deadline_ms > 0).then(|| conn.read_at + Duration::from_millis(u64::from(deadline_ms)));
    if deadline.is_some_and(|d| Instant::now() >= d) {
        ctx.state.timeouts.fetch_add(1, Ordering::Relaxed);
        let response = Response::Timeout { deadline_ms };
        deliver_now(conn, route, &response, &ctx.state);
        return;
    }
    // Liveness fast path: a Ping on a connection with nothing in flight is
    // always answered on the loop thread — per-connection FIFO is trivially
    // preserved, and a health probe measures *liveness* instead of queueing
    // behind a multi-second LoadDataset on a saturated worker pool (which
    // would read as a dead member to a fail-fast health checker).
    //
    // Idle fast path: with nothing in flight anywhere, answering cheap
    // probes on the loop thread skips two thread handoffs — this is what
    // keeps the unpipelined (depth-1) round trip as fast as the old
    // blocking core.
    let inline = match request {
        Request::Ping => conn.in_flight == 0,
        Request::QueryBatch { .. } | Request::CountBatch { .. } => {
            ctx.config.inline_fast_path && global == 0
        }
        _ => false,
    };
    if inline {
        let response = ctx.state.respond(request);
        deliver_now(conn, route, &response, &ctx.state);
        return;
    }
    // Dispatch: the worker frames the response and pushes it onto the
    // completion queue, which unparks the loop.
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let request_id = match route {
        Route::V1 => 0,
        Route::V2 { request_id } => {
            conn.live_ids.insert(request_id);
            request_id
        }
    };
    conn.set_in_flight(conn.in_flight + 1);
    ctx.state.in_flight.fetch_add(1, Ordering::Relaxed);
    let state = Arc::clone(&ctx.state);
    let completions = Arc::clone(&ctx.completions);
    let submitted = ctx.dispatcher.submit(move || {
        let response = match deadline {
            Some(d) if Instant::now() >= d => {
                state.timeouts.fetch_add(1, Ordering::Relaxed);
                Response::Timeout { deadline_ms }
            }
            _ => state.respond(request),
        };
        let wire = encode_wire(route, &response, &state);
        completions.push(Completion {
            conn_id: id,
            seq,
            request_id,
            wire,
        });
    });
    if !submitted {
        // Shutting down between the drain decision and this frame: answer
        // typed instead of going silent.
        ctx.state.in_flight.fetch_sub(1, Ordering::Relaxed);
        conn.set_in_flight(conn.in_flight.saturating_sub(1));
        if let Route::V2 { request_id } = route {
            conn.live_ids.remove(&request_id);
        }
        ctx.state.errors.fetch_add(1, Ordering::Relaxed);
        let wire = encode_wire(
            route,
            &Response::Error("server is shutting down".to_string()),
            &ctx.state,
        );
        match route {
            Route::V1 => push_in_order(conn, seq, wire),
            Route::V2 { .. } => conn.wbuf.extend_from_slice(&wire),
        }
    }
}
