//! The framed-TCP server: per-dataset [`EclipseEngine`] instances behind one
//! shared execution context, request dispatch, and connection plumbing.
//!
//! All sockets are owned by one readiness-driven event loop (see the
//! `event_loop` module) that parses frames, enforces admission control and
//! deadlines, and hands decoded requests to a pool of dispatcher workers.
//! Every engine shares one `eclipse-exec` pool (the [`ExecutionContext`] the
//! server was bound with), so a `QueryBatch` fans its probes out over the
//! same workers regardless of which connection it arrived on — the
//! steady-state request path is [`EclipseEngine::eclipse_query_batch`]
//! (locality-sorted probes, one `ProbeScratch` per worker, zero allocations
//! per probe) and [`EclipseEngine::eclipse_count_batch`] for cardinality-only
//! probes.
//!
//! Datasets are registered with [`Request::LoadDataset`] (or in-process with
//! [`Server::register_dataset`]) and warmed at registration: the requested
//! Intersection Index is built before the acknowledgement is sent, so the
//! first batch never pays construction latency.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use eclipse_core::exec::{ExecutionContext, QueryOptions};
use eclipse_core::index::IntersectionIndexKind;
use eclipse_core::point::Point;
use eclipse_core::{EclipseEngine, EclipseError, WeightRatioBox};

use crate::event_loop::EventLoop;
use crate::protocol::{
    DatasetStats, DatasetSummary, IndexKind, IndexSummary, Request, Response, StatsReport, WireBox,
};

/// One registered dataset in the residency tier: its engine while resident,
/// or a summary of it while evicted to its snapshot files.
struct DatasetSlot {
    name: String,
    /// Logical LRU stamp: the value of [`ServerState::lru_clock`] at the
    /// last request that touched this dataset.
    last_used: AtomicU64,
    state: Mutex<Residency>,
}

/// Residency state of a [`DatasetSlot`].
enum Residency {
    Resident(ResidentDataset),
    /// Evicted under the memory budget; the summary describes the dataset
    /// as it was at eviction so `Stats` can report it without restoring.
    Evicted(EvictedStats),
}

/// The resident half of a slot: the live engine plus what the snapshot
/// directory already holds for it.
struct ResidentDataset {
    engine: Arc<EclipseEngine>,
    /// The dataset epoch the on-disk snapshot of each index kind covers
    /// (`None`: no file written during this residency).  Eviction re-writes
    /// a built kind's snapshot unless its entry matches the current epoch —
    /// the snapshot-if-dirty check.
    saved_quad: Option<u64>,
    saved_cutting: Option<u64>,
}

impl ResidentDataset {
    fn fresh(engine: Arc<EclipseEngine>) -> Self {
        ResidentDataset {
            engine,
            saved_quad: None,
            saved_cutting: None,
        }
    }

    fn saved_mut(&mut self, kind: IndexKind) -> &mut Option<u64> {
        match kind {
            IndexKind::Quadtree => &mut self.saved_quad,
            IndexKind::CuttingTree => &mut self.saved_cutting,
        }
    }
}

/// What `Stats` reports about an evicted dataset.
#[derive(Clone)]
struct EvictedStats {
    points: u64,
    dim: u32,
    skyline_len: u64,
    intersections: u64,
    quad_built: bool,
    cutting_built: bool,
    epoch: u64,
}

/// Internal error type of the request handlers: either an engine error
/// (answered as [`Response::Error`]) or an already-typed response such as
/// [`Response::DatasetUnavailable`].
enum ServeError {
    Typed(Box<Response>),
    Engine(EclipseError),
}

impl From<EclipseError> for ServeError {
    fn from(e: EclipseError) -> Self {
        ServeError::Engine(e)
    }
}

/// Shared server state: the dataset registry, the execution context every
/// engine draws from, and the serving counters.
pub(crate) struct ServerState {
    exec: ExecutionContext,
    datasets: RwLock<HashMap<String, Arc<DatasetSlot>>>,
    /// Where `SaveIndex`/`RestoreIndex` persist snapshots; `None` disables
    /// the snapshot surface (requests answer with an error response) — and
    /// with it budget eviction, which needs somewhere to put cold datasets.
    snapshot_dir: RwLock<Option<PathBuf>>,
    /// Global budget on accounted dataset bytes ([`EclipseEngine::heap_bytes`]
    /// summed over resident datasets); `None` disables eviction.
    memory_budget: Option<u64>,
    /// Logical clock stamping [`DatasetSlot::last_used`] on every touch.
    lru_clock: AtomicU64,
    /// Datasets evicted to their snapshots since the server started.
    evictions: AtomicU64,
    /// Evicted datasets transparently restored since the server started.
    reloads: AtomicU64,
    /// Serializes budget-enforcement passes so concurrent admissions cannot
    /// race each other into evicting more than the overshoot.
    evict_guard: Mutex<()>,
    query_batches: AtomicU64,
    count_batches: AtomicU64,
    probes: AtomicU64,
    pub(crate) errors: AtomicU64,
    /// Requests admitted by the event loop but not yet answered.
    pub(crate) in_flight: AtomicU64,
    /// Requests answered with [`Response::Timeout`].
    pub(crate) timeouts: AtomicU64,
    /// Requests rejected with [`Response::Overloaded`].
    pub(crate) rejected: AtomicU64,
    /// Per-connection in-flight gauges, registered by the event loop so
    /// `Stats` (answered on a worker) can report live queue depths.
    conn_gauges: Mutex<HashMap<u64, Arc<AtomicU32>>>,
}

impl ServerState {
    fn new(exec: ExecutionContext) -> Self {
        ServerState {
            exec,
            datasets: RwLock::new(HashMap::new()),
            snapshot_dir: RwLock::new(None),
            memory_budget: None,
            lru_clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            evict_guard: Mutex::new(()),
            query_batches: AtomicU64::new(0),
            count_batches: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            conn_gauges: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn exec(&self) -> &ExecutionContext {
        &self.exec
    }

    pub(crate) fn register_conn(&self, id: u64) -> Arc<AtomicU32> {
        let gauge = Arc::new(AtomicU32::new(0));
        self.conn_gauges
            .lock()
            .expect("conn gauge registry poisoned")
            .insert(id, Arc::clone(&gauge));
        gauge
    }

    pub(crate) fn unregister_conn(&self, id: u64) {
        self.conn_gauges
            .lock()
            .expect("conn gauge registry poisoned")
            .remove(&id);
    }

    fn snapshot_dir(&self) -> Result<PathBuf, EclipseError> {
        self.snapshot_dir
            .read()
            .expect("snapshot dir lock poisoned")
            .clone()
            .ok_or_else(|| {
                EclipseError::Unsupported(
                    "this server was started without --snapshot-dir".to_string(),
                )
            })
    }

    fn slot(&self, name: &str) -> Result<Arc<DatasetSlot>, EclipseError> {
        self.datasets
            .read()
            .expect("dataset registry poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| EclipseError::Unsupported(format!("unknown dataset {name:?}")))
    }

    /// Stamps the slot as most-recently-used.
    fn touch(&self, slot: &DatasetSlot) {
        let stamp = self.lru_clock.fetch_add(1, Ordering::Relaxed) + 1;
        slot.last_used.store(stamp, Ordering::Relaxed);
    }

    /// The slot's engine, transparently restoring an evicted dataset from
    /// its snapshot files.  The caller must hold the slot's state lock —
    /// which is exactly what makes eviction safe against concurrent
    /// mutations (both sides take the same lock).
    fn make_resident(
        &self,
        slot: &DatasetSlot,
        st: &mut Residency,
    ) -> Result<Arc<EclipseEngine>, ServeError> {
        if let Residency::Resident(r) = st {
            return Ok(Arc::clone(&r.engine));
        }
        let restored = self.restore_evicted(&slot.name).map_err(|reason| {
            ServeError::Typed(Box::new(Response::DatasetUnavailable {
                name: slot.name.clone(),
                reason,
            }))
        })?;
        let engine = Arc::clone(&restored.engine);
        *st = Residency::Resident(restored);
        self.reloads.fetch_add(1, Ordering::Relaxed);
        Ok(engine)
    }

    /// Rebuilds a [`ResidentDataset`] for an evicted dataset from its
    /// snapshot files (both index kinds when both exist).  Failing this —
    /// no snapshot directory, no file, or undecodable bytes — is the one
    /// condition the residency tier cannot hide, reported as the `Err`
    /// reason of a [`Response::DatasetUnavailable`].
    fn restore_evicted(&self, name: &str) -> Result<ResidentDataset, String> {
        let Some(dir) = self
            .snapshot_dir
            .read()
            .expect("snapshot dir lock poisoned")
            .clone()
        else {
            return Err("evicted, and this server has no --snapshot-dir to restore from".into());
        };
        let mut resident: Option<ResidentDataset> = None;
        let mut attempts: Vec<String> = Vec::new();
        for kind in [IndexKind::Quadtree, IndexKind::CuttingTree] {
            let path = Self::snapshot_path(&dir, name, kind);
            let bytes = match std::fs::read(&path) {
                Ok(bytes) => bytes,
                Err(e) => {
                    attempts.push(format!("{}: {e}", path.display()));
                    continue;
                }
            };
            match &mut resident {
                None => match EclipseEngine::from_snapshot(&bytes) {
                    Ok((label, engine)) if label == name => {
                        let engine = engine.with_execution_context(self.exec.clone());
                        let epoch = engine.epoch();
                        let mut r = ResidentDataset::fresh(Arc::new(engine));
                        *r.saved_mut(kind) = Some(epoch);
                        resident = Some(r);
                    }
                    Ok((label, _)) => {
                        attempts.push(format!(
                            "{}: holds dataset {label:?}, not {name:?}",
                            path.display()
                        ));
                    }
                    Err(e) => attempts.push(format!("{}: {e}", path.display())),
                },
                Some(r) => {
                    // The second kind is best-effort: a stale companion file
                    // must not fail the restore of a healthy dataset.
                    if r.engine.restore_index_snapshot(&bytes).is_ok() {
                        *r.saved_mut(kind) = Some(r.engine.epoch());
                    }
                }
            }
        }
        resident.ok_or_else(|| format!("no restorable snapshot ({})", attempts.join("; ")))
    }

    /// Runs `f` against the named dataset's resident state, restoring it
    /// first when evicted; the slot's state lock is held across `f`, so use
    /// this for operations that must exclude eviction (mutations, snapshot
    /// writes) and [`ServerState::engine`] for read-only query traffic.
    fn with_resident<T>(
        &self,
        name: &str,
        f: impl FnOnce(&mut Residency, Arc<EclipseEngine>) -> Result<T, ServeError>,
    ) -> Result<T, ServeError> {
        let slot = self.slot(name)?;
        self.touch(&slot);
        let (result, reloaded) = {
            let mut st = slot.state.lock().expect("dataset slot poisoned");
            let reloaded = matches!(&*st, Residency::Evicted(_));
            let engine = self.make_resident(&slot, &mut st)?;
            (f(&mut st, engine), reloaded)
        };
        if reloaded {
            self.enforce_budget(Some(name));
        }
        result
    }

    /// The named dataset's engine for query traffic: touches the LRU stamp,
    /// restores the dataset if evicted, and holds the slot lock only long
    /// enough to clone the engine handle.
    fn engine(&self, name: &str) -> Result<Arc<EclipseEngine>, ServeError> {
        self.with_resident(name, |_, engine| Ok(engine))
    }

    /// Evicts resident datasets — coldest first, never `protect` — until the
    /// accounted total fits the budget or nothing evictable remains.  Dirty
    /// datasets (mutated or re-indexed since their last snapshot) are
    /// snapshotted before the engine is dropped, so eviction never loses an
    /// acknowledged mutation; a dataset that cannot be snapshotted (no
    /// snapshot directory, disk error) stops the pass rather than discarding
    /// state.
    ///
    /// Callers must not hold any slot's state lock (the pass takes them).
    fn enforce_budget(&self, protect: Option<&str>) {
        let Some(budget) = self.memory_budget else {
            return;
        };
        let _guard = self.evict_guard.lock().expect("evict guard poisoned");
        loop {
            let slots: Vec<Arc<DatasetSlot>> = self
                .datasets
                .read()
                .expect("dataset registry poisoned")
                .values()
                .cloned()
                .collect();
            let mut total: u64 = 0;
            let mut victim: Option<(u64, Arc<DatasetSlot>)> = None;
            for slot in &slots {
                let st = slot.state.lock().expect("dataset slot poisoned");
                if let Residency::Resident(r) = &*st {
                    total += r.engine.heap_bytes() as u64;
                    if protect != Some(slot.name.as_str()) {
                        let stamp = slot.last_used.load(Ordering::Relaxed);
                        if victim.as_ref().is_none_or(|(s, _)| stamp < *s) {
                            victim = Some((stamp, Arc::clone(slot)));
                        }
                    }
                }
            }
            if total <= budget {
                return;
            }
            let Some((_, victim)) = victim else {
                return;
            };
            if self.evict_slot(&victim).is_err() {
                return;
            }
        }
    }

    /// Snapshots (if dirty) and evicts one dataset.  Holding the slot's
    /// state lock across save-and-swap excludes concurrent mutations, so the
    /// file on disk is guaranteed to hold the dataset's final epoch.
    fn evict_slot(&self, slot: &DatasetSlot) -> Result<(), EclipseError> {
        let mut st = slot.state.lock().expect("dataset slot poisoned");
        let Residency::Resident(r) = &mut *st else {
            return Ok(());
        };
        let epoch = r.engine.epoch();
        let quad_built = r
            .engine
            .cached_index(IntersectionIndexKind::Quadtree)
            .is_some();
        let cutting_built = r
            .engine
            .cached_index(IntersectionIndexKind::CuttingTree)
            .is_some();
        if quad_built && r.saved_quad != Some(epoch) {
            self.write_snapshot(&r.engine, &slot.name, IndexKind::Quadtree)?;
            r.saved_quad = Some(epoch);
        }
        if cutting_built && r.saved_cutting != Some(epoch) {
            self.write_snapshot(&r.engine, &slot.name, IndexKind::CuttingTree)?;
            r.saved_cutting = Some(epoch);
        }
        if !quad_built && !cutting_built {
            // No index is warm for the current epoch (possible after
            // mutations left only stale slots): snapshot the engine's
            // default kind — `save_snapshot` builds it as needed.
            let kind = IndexKind::from(r.engine.index_config().kind);
            self.write_snapshot(&r.engine, &slot.name, kind)?;
            *r.saved_mut(kind) = Some(epoch);
        }
        let index = r
            .engine
            .cached_index(IntersectionIndexKind::Quadtree)
            .or_else(|| r.engine.cached_index(IntersectionIndexKind::CuttingTree));
        let (skyline_len, intersections) = index
            .map(|i| (i.skyline_len() as u64, i.num_intersections() as u64))
            .unwrap_or((0, 0));
        let stats = EvictedStats {
            points: r.engine.len() as u64,
            dim: r.engine.dim() as u32,
            skyline_len,
            intersections,
            quad_built: r
                .engine
                .cached_index(IntersectionIndexKind::Quadtree)
                .is_some(),
            cutting_built: r
                .engine
                .cached_index(IntersectionIndexKind::CuttingTree)
                .is_some(),
            epoch,
        };
        *st = Residency::Evicted(stats);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Builds an engine over `points`, warms the requested index, and
    /// registers it under `name` (replacing any previous dataset of that
    /// name once the new one is fully warm).
    fn register(
        &self,
        name: &str,
        points: Vec<Point>,
        warm: IndexKind,
    ) -> Result<DatasetSummary, EclipseError> {
        for p in &points {
            if p.coords().iter().any(|c| !c.is_finite()) {
                return Err(EclipseError::Unsupported(
                    "dataset coordinates must be finite".to_string(),
                ));
            }
        }
        let engine =
            Arc::new(EclipseEngine::new(points)?.with_execution_context(self.exec.clone()));
        let index = engine.build_index(warm.into())?;
        let summary = DatasetSummary {
            points: engine.len() as u64,
            dim: engine.dim() as u32,
            skyline_len: index.skyline_len() as u64,
            intersections: index.num_intersections() as u64,
        };
        let slot = Arc::new(DatasetSlot {
            name: name.to_string(),
            last_used: AtomicU64::new(0),
            state: Mutex::new(Residency::Resident(ResidentDataset::fresh(engine))),
        });
        self.touch(&slot);
        self.datasets
            .write()
            .expect("dataset registry poisoned")
            .insert(name.to_string(), slot);
        self.enforce_budget(Some(name));
        Ok(summary)
    }

    /// Answers one decoded request.  Infallible by construction: every
    /// failure becomes a [`Response::Error`], so the connection stays alive.
    pub(crate) fn respond(&self, request: Request) -> Response {
        let result = match request {
            Request::Hello { .. } => Err(ServeError::Engine(EclipseError::Unsupported(
                "Hello must be the first frame of a connection".to_string(),
            ))),
            Request::Ping => Ok(Response::Pong),
            Request::LoadDataset {
                name,
                dim,
                coords,
                warm,
            } => self.load_dataset(&name, dim, coords, warm),
            Request::BuildIndex { name, kind } => self.build_index(&name, kind),
            Request::QueryBatch { name, boxes } => self.query_batch(&name, &boxes),
            Request::CountBatch { name, boxes } => self.count_batch(&name, &boxes),
            Request::SaveIndex { name, kind } => self.save_index(&name, kind),
            Request::RestoreIndex { name, kind } => self.restore_index(&name, kind),
            Request::LoadSnapshots => self
                .load_snapshots()
                .map(|scan| Response::SnapshotsLoaded {
                    restored: scan.restored,
                    skipped: scan
                        .skipped
                        .into_iter()
                        .map(|(path, e)| (path.display().to_string(), e.to_string()))
                        .collect(),
                })
                .map_err(ServeError::from),
            // A single-process server always answers with complete results;
            // the ack still matters so a router (which *can* degrade) and a
            // plain server present one contract to opted-in clients.
            Request::AllowPartial { enabled } => Ok(Response::PartialAck { enabled }),
            Request::Stats => Ok(Response::Stats(self.stats())),
            Request::Insert { name, coords } => self.insert(&name, coords),
            Request::Delete { name, id } => self.delete(&name, id),
        };
        result.unwrap_or_else(|e| {
            self.errors.fetch_add(1, Ordering::Relaxed);
            match e {
                ServeError::Typed(response) => *response,
                ServeError::Engine(e) => Response::Error(e.to_string()),
            }
        })
    }

    fn load_dataset(
        &self,
        name: &str,
        dim: u32,
        coords: Vec<f64>,
        warm: IndexKind,
    ) -> Result<Response, ServeError> {
        let dim = dim as usize;
        if dim == 0 || !coords.len().is_multiple_of(dim) {
            return Err(EclipseError::Unsupported(format!(
                "{} coordinates do not form points of dimension {dim}",
                coords.len()
            ))
            .into());
        }
        let points: Vec<Point> = coords.chunks_exact(dim).map(Point::from_slice).collect();
        Ok(Response::DatasetLoaded(self.register(name, points, warm)?))
    }

    fn build_index(&self, name: &str, kind: IndexKind) -> Result<Response, ServeError> {
        let engine = self.engine(name)?;
        let index = engine.build_index(kind.into())?;
        // A second backend can double the dataset's footprint; re-check the
        // budget (the fresh build is protected as most-recently-used).
        self.enforce_budget(Some(name));
        Ok(Response::IndexBuilt(IndexSummary {
            kind,
            skyline_len: index.skyline_len() as u64,
            intersections: index.num_intersections() as u64,
            nodes: index.backend_nodes() as u64,
            depth: index.backend_depth() as u32,
        }))
    }

    fn insert(&self, name: &str, coords: Vec<f64>) -> Result<Response, ServeError> {
        if coords.iter().any(|c| !c.is_finite()) {
            return Err(EclipseError::Unsupported(
                "inserted coordinates must be finite".to_string(),
            )
            .into());
        }
        // Mutations run under the slot's state lock so eviction can never
        // snapshot-and-drop a dataset between a mutation's apply and its
        // acknowledgement.
        let summary = self.with_resident(name, |_, engine| {
            engine.insert(Point::new(coords)).map_err(ServeError::from)
        })?;
        Ok(Response::Mutated {
            kind: summary.outcome.into(),
            epoch: summary.epoch,
            len: summary.len as u64,
        })
    }

    fn delete(&self, name: &str, id: u64) -> Result<Response, ServeError> {
        let id = usize::try_from(id)
            .map_err(|_| EclipseError::Unsupported(format!("delete id {id} overflows usize")))?;
        let summary = self.with_resident(name, |_, engine| {
            engine.delete(id).map_err(ServeError::from)
        })?;
        Ok(Response::Mutated {
            kind: summary.outcome.into(),
            epoch: summary.epoch,
            len: summary.len as u64,
        })
    }

    fn parse_boxes(wire: &[WireBox]) -> Result<Vec<WeightRatioBox>, EclipseError> {
        wire.iter()
            .map(|b| WeightRatioBox::from_bounds(b))
            .collect()
    }

    fn query_batch(&self, name: &str, wire: &[WireBox]) -> Result<Response, ServeError> {
        let engine = self.engine(name)?;
        let boxes = Self::parse_boxes(wire)?;
        let results = engine.eclipse_query_batch(&boxes, &QueryOptions::default())?;
        self.query_batches.fetch_add(1, Ordering::Relaxed);
        self.probes.fetch_add(boxes.len() as u64, Ordering::Relaxed);
        Ok(Response::QueryResults(
            results
                .into_iter()
                .map(|ids| ids.into_iter().map(|i| i as u64).collect())
                .collect(),
        ))
    }

    fn count_batch(&self, name: &str, wire: &[WireBox]) -> Result<Response, ServeError> {
        let engine = self.engine(name)?;
        let boxes = Self::parse_boxes(wire)?;
        let counts = engine.eclipse_count_batch(&boxes, &QueryOptions::default())?;
        self.count_batches.fetch_add(1, Ordering::Relaxed);
        self.probes.fetch_add(boxes.len() as u64, Ordering::Relaxed);
        Ok(Response::Counts(
            counts.into_iter().map(|c| c as u64).collect(),
        ))
    }

    /// The on-disk file a dataset/kind pair snapshots to.  The dataset name
    /// is sanitized for the filesystem — and when sanitization had to change
    /// anything, a hash of the raw name is appended so distinct names (e.g.
    /// `a/b` vs `a_b`) can never collide onto one file.  The authoritative
    /// name lives inside the snapshot and is re-read on
    /// [`ServerState::load_snapshots`].
    fn snapshot_path(dir: &std::path::Path, name: &str, kind: IndexKind) -> PathBuf {
        let safe: String = name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let disambiguator = if safe == name {
            String::new()
        } else {
            format!("-{:08x}", eclipse_persist::fnv1a(name.as_bytes()) as u32)
        };
        let suffix = match kind {
            IndexKind::Quadtree => "quad",
            IndexKind::CuttingTree => "cutting",
        };
        dir.join(format!("{safe}{disambiguator}-{suffix}.eclsnap"))
    }

    /// Encodes and atomically writes one snapshot file, returning its size.
    fn write_snapshot(
        &self,
        engine: &EclipseEngine,
        name: &str,
        kind: IndexKind,
    ) -> Result<u64, EclipseError> {
        let dir = self.snapshot_dir()?;
        let bytes = engine.save_snapshot(name, kind.into())?;
        std::fs::create_dir_all(&dir)
            .map_err(|e| EclipseError::Snapshot(format!("create {}: {e}", dir.display())))?;
        let path = Self::snapshot_path(&dir, name, kind);
        // Write-then-rename so a crash mid-save can never leave a truncated
        // file at the canonical name (a torn snapshot would otherwise be
        // skipped — loudly — by every later warm restart).  The temp name is
        // unique per save so concurrent SaveIndex calls cannot interleave
        // into each other's half-written file.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &bytes)
            .map_err(|e| EclipseError::Snapshot(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| EclipseError::Snapshot(format!("rename to {}: {e}", path.display())))?;
        Ok(bytes.len() as u64)
    }

    fn save_index(&self, name: &str, kind: IndexKind) -> Result<Response, ServeError> {
        // Under the state lock mutations are excluded, so the epoch recorded
        // against the written file is exactly the epoch inside it.
        self.with_resident(name, |st, engine| {
            let bytes = self.write_snapshot(&engine, name, kind)?;
            if let Residency::Resident(r) = st {
                *r.saved_mut(kind) = Some(engine.epoch());
            }
            Ok(Response::SnapshotSaved { bytes })
        })
    }

    fn restore_index(&self, name: &str, kind: IndexKind) -> Result<Response, ServeError> {
        self.with_resident(name, |st, engine| {
            let dir = self.snapshot_dir()?;
            let path = Self::snapshot_path(&dir, name, kind);
            let bytes = std::fs::read(&path)
                .map_err(|e| EclipseError::Snapshot(format!("read {}: {e}", path.display())))?;
            let index = engine.restore_index_snapshot(&bytes)?;
            if IndexKind::from(index.config().kind) != kind {
                return Err(EclipseError::SnapshotMismatch {
                    reason: format!(
                        "snapshot at {} holds a {:?} index, {kind:?} was requested",
                        path.display(),
                        index.config().kind
                    ),
                }
                .into());
            }
            // The file just proved it matches the current dataset bits and
            // epoch, so the on-disk copy of this kind is clean.
            if let Residency::Resident(r) = st {
                *r.saved_mut(kind) = Some(engine.epoch());
            }
            Ok(Response::IndexBuilt(IndexSummary {
                kind,
                skyline_len: index.skyline_len() as u64,
                intersections: index.num_intersections() as u64,
                nodes: index.backend_nodes() as u64,
                depth: index.backend_depth() as u32,
            }))
        })
    }

    /// Scans the snapshot directory and registers every `*.eclsnap` file —
    /// the warm-restart path: datasets and their built indexes come back
    /// without paying construction cost or needing `LoadDataset` traffic.
    /// A second snapshot of an already-restored dataset (the other backend
    /// kind) is restored into the existing engine after the same
    /// dataset-identity validation the wire path uses; the label is peeked
    /// cheaply first so each file is fully decoded exactly once.
    ///
    /// Restoration is per-file fault-tolerant: a corrupt, stale or
    /// inconsistent snapshot is **skipped** (reported in
    /// [`SnapshotScan::skipped`]) instead of aborting the scan — one bad
    /// file must not keep every healthy dataset from coming back.
    fn load_snapshots(&self) -> Result<SnapshotScan, EclipseError> {
        let dir = self.snapshot_dir()?;
        let entries = std::fs::read_dir(&dir)
            .map_err(|e| EclipseError::Snapshot(format!("read {}: {e}", dir.display())))?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "eclsnap"))
            .collect();
        paths.sort();
        let mut scan = SnapshotScan::default();
        for path in paths {
            match self.load_one_snapshot(&path) {
                Ok(entry) => scan.restored.push(entry),
                Err(e) => scan.skipped.push((path, e)),
            }
        }
        // The scan may have restored far more than the budget holds; evict
        // back down (everything just restored is clean, so no re-writes).
        self.enforce_budget(None);
        Ok(scan)
    }

    /// Restores one snapshot file into the registry (see
    /// [`ServerState::load_snapshots`]).
    fn load_one_snapshot(
        &self,
        path: &std::path::Path,
    ) -> Result<(String, DatasetSummary), EclipseError> {
        let bytes = std::fs::read(path)
            .map_err(|e| EclipseError::Snapshot(format!("read {}: {e}", path.display())))?;
        let label = EclipseEngine::snapshot_label(&bytes)?;
        let existing = self
            .datasets
            .read()
            .expect("dataset registry poisoned")
            .get(&label)
            .cloned();
        let decode_fresh = |bytes: &[u8]| -> Result<ResidentDataset, EclipseError> {
            let (_, decoded) = EclipseEngine::from_snapshot(bytes)?;
            let engine = Arc::new(decoded.with_execution_context(self.exec.clone()));
            let epoch = engine.epoch();
            let mut r = ResidentDataset::fresh(engine);
            // Whatever kinds the file warm-loaded are, by construction, the
            // on-disk state for this epoch.
            if r.engine
                .cached_index(IntersectionIndexKind::Quadtree)
                .is_some()
            {
                r.saved_quad = Some(epoch);
            }
            if r.engine
                .cached_index(IntersectionIndexKind::CuttingTree)
                .is_some()
            {
                r.saved_cutting = Some(epoch);
            }
            Ok(r)
        };
        let engine = match existing {
            Some(slot) => {
                self.touch(&slot);
                let mut st = slot.state.lock().expect("dataset slot poisoned");
                match &mut *st {
                    Residency::Resident(r) => {
                        // A second snapshot of a known dataset (the other
                        // backend kind) restores into its engine instead of
                        // replacing it, after the same identity validation
                        // the wire path uses.
                        let index = r.engine.restore_index_snapshot(&bytes)?;
                        *r.saved_mut(IndexKind::from(index.config().kind)) = Some(r.engine.epoch());
                        Arc::clone(&r.engine)
                    }
                    Residency::Evicted(_) => {
                        let restored = decode_fresh(&bytes)?;
                        let engine = Arc::clone(&restored.engine);
                        *st = Residency::Resident(restored);
                        self.reloads.fetch_add(1, Ordering::Relaxed);
                        engine
                    }
                }
            }
            None => {
                let restored = decode_fresh(&bytes)?;
                let engine = Arc::clone(&restored.engine);
                let slot = Arc::new(DatasetSlot {
                    name: label.clone(),
                    last_used: AtomicU64::new(0),
                    state: Mutex::new(Residency::Resident(restored)),
                });
                self.touch(&slot);
                self.datasets
                    .write()
                    .expect("dataset registry poisoned")
                    .insert(label.clone(), slot);
                engine
            }
        };
        let kind = engine.index_config().kind;
        let index = engine
            .cached_index(kind)
            .or_else(|| engine.cached_index(IntersectionIndexKind::Quadtree))
            .or_else(|| engine.cached_index(IntersectionIndexKind::CuttingTree))
            .expect("a restored engine has a cached index");
        Ok((
            label,
            DatasetSummary {
                points: engine.len() as u64,
                dim: engine.dim() as u32,
                skyline_len: index.skyline_len() as u64,
                intersections: index.num_intersections() as u64,
            },
        ))
    }

    fn stats(&self) -> StatsReport {
        // Snapshot the registry first: the per-dataset numbers below walk
        // whole index trees, which must not happen under the read lock (it
        // would block concurrent dataset registrations for the duration).
        // Stats never restores an evicted dataset (it reports the summary
        // captured at eviction) and never touches the LRU stamps — a
        // monitoring poll must not perturb eviction order.
        let snapshot: Vec<Arc<DatasetSlot>> = self
            .datasets
            .read()
            .expect("dataset registry poisoned")
            .values()
            .cloned()
            .collect();
        let mut total_bytes: u64 = 0;
        let mut datasets: Vec<DatasetStats> = Vec::with_capacity(snapshot.len());
        for slot in &snapshot {
            // Clone what we need under the slot lock, then compute outside
            // it so a long tree walk never blocks mutations or eviction.
            enum Row {
                Engine(Arc<EclipseEngine>),
                Summary(EvictedStats),
            }
            let row = {
                let st = slot.state.lock().expect("dataset slot poisoned");
                match &*st {
                    Residency::Resident(r) => Row::Engine(Arc::clone(&r.engine)),
                    Residency::Evicted(stats) => Row::Summary(stats.clone()),
                }
            };
            datasets.push(match row {
                Row::Engine(engine) => {
                    let quad = engine.cached_index(IntersectionIndexKind::Quadtree);
                    let cutting = engine.cached_index(IntersectionIndexKind::CuttingTree);
                    let quad_built = quad.is_some();
                    let cutting_built = cutting.is_some();
                    let index = quad.or(cutting);
                    let (skyline_len, intersections, root_crossings) = match &index {
                        Some(idx) => {
                            // The whole indexed region of ratio space,
                            // counted through the count-only tree traversal
                            // (the root node takes the contained-subtree
                            // fast path).
                            let root = WeightRatioBox::uniform(
                                engine.dim(),
                                0.0,
                                engine.index_config().max_ratio,
                            )
                            .and_then(|b| idx.intersections_crossing(&b))
                            .unwrap_or(0);
                            (idx.skyline_len(), idx.num_intersections(), root)
                        }
                        None => (0, 0, 0),
                    };
                    let bytes = engine.heap_bytes() as u64;
                    total_bytes += bytes;
                    DatasetStats {
                        name: slot.name.clone(),
                        points: engine.len() as u64,
                        dim: engine.dim() as u32,
                        skyline_len: skyline_len as u64,
                        intersections: intersections as u64,
                        root_crossings: root_crossings as u64,
                        quad_built,
                        cutting_built,
                        epoch: engine.epoch(),
                        bytes,
                        resident: true,
                    }
                }
                Row::Summary(s) => DatasetStats {
                    name: slot.name.clone(),
                    points: s.points,
                    dim: s.dim,
                    skyline_len: s.skyline_len,
                    intersections: s.intersections,
                    // Computing crossings needs the tree; evicted rows
                    // report 0 rather than paying a restore.
                    root_crossings: 0,
                    quad_built: s.quad_built,
                    cutting_built: s.cutting_built,
                    epoch: s.epoch,
                    bytes: 0,
                    resident: false,
                },
            });
        }
        datasets.sort_by(|a, b| a.name.cmp(&b.name));
        let mut conn_queue_depths: Vec<u32> = self
            .conn_gauges
            .lock()
            .expect("conn gauge registry poisoned")
            .values()
            .map(|gauge| gauge.load(Ordering::Relaxed))
            .collect();
        conn_queue_depths.sort_unstable_by(|a, b| b.cmp(a));
        StatsReport {
            query_batches: self.query_batches.load(Ordering::Relaxed),
            count_batches: self.count_batches.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            conn_queue_depths,
            total_bytes,
            memory_budget: self.memory_budget.unwrap_or(0),
            evictions: self.evictions.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            datasets,
        }
    }
}

/// Outcome of a snapshot-directory scan ([`Server::load_snapshots`]): what
/// came back, and which files were skipped with which error.
#[derive(Debug, Default)]
pub struct SnapshotScan {
    /// `(dataset name, summary)` per successfully restored snapshot, in
    /// deterministic (path-sorted) order.
    pub restored: Vec<(String, DatasetSummary)>,
    /// Snapshot files that could not be restored — corrupt, stale, or
    /// inconsistent with an already-restored dataset — each with its typed
    /// error.  Skipping them keeps one bad file from taking every healthy
    /// dataset down with it.
    pub skipped: Vec<(PathBuf, EclipseError)>,
}

/// Tuning knobs of the serving core ([`Server::bind_with_config`]).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Per-connection in-flight cap: the largest pipeline depth a `Hello`
    /// can negotiate (v1 connections get the full cap).  Requests over the
    /// cap are answered with [`Response::Overloaded`].
    pub max_pipeline: u32,
    /// Global in-flight cap across all connections; requests over it are
    /// answered with [`Response::Overloaded`].
    pub max_in_flight: u32,
    /// Most connections held open at once; beyond it, accepting pauses.
    pub max_connections: usize,
    /// Dispatcher worker threads executing requests (0 = one per thread of
    /// the server's [`ExecutionContext`]).
    pub workers: usize,
    /// How long a graceful shutdown waits for admitted requests to finish
    /// and their responses to flush before giving up.
    pub drain_timeout: Duration,
    /// Answer cheap requests on the loop thread when the server is
    /// otherwise idle (skips two thread handoffs per round trip).  On by
    /// default; tests disable it to force every request through the
    /// dispatcher queue.
    pub inline_fast_path: bool,
    /// Half-open hygiene: a connection that completes the TCP accept but
    /// never delivers its *first* frame within this window is reaped, so a
    /// peer that connects and goes silent cannot hold an event-loop slot
    /// (of [`ServerConfig::max_connections`]) forever.  Connections that
    /// have sent at least one complete frame are never idle-reaped — a
    /// quiet but established client keeps its connection.  `None` disables
    /// reaping.
    pub idle_timeout: Option<Duration>,
    /// Global memory budget, in bytes, over the accounted heap bytes of all
    /// resident datasets.  When an admission (load, snapshot restore, index
    /// build, eviction reload) pushes the total over the budget, the
    /// coldest datasets are snapshotted-if-dirty and evicted until it fits
    /// again; evicted datasets restore transparently on their next request.
    /// Eviction requires a snapshot directory.  `None` (default) disables
    /// the budget.
    pub max_memory_bytes: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_pipeline: 128,
            max_in_flight: 1024,
            max_connections: 1024,
            workers: 0,
            drain_timeout: Duration::from_secs(5),
            inline_fast_path: true,
            idle_timeout: Some(Duration::from_secs(30)),
            max_memory_bytes: None,
        }
    }
}

/// A bound (but not yet serving) eclipse server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    config: ServerConfig,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) with the default
    /// [`ServerConfig`].  All engines registered on this server share
    /// `exec`'s thread pool.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind(addr: impl ToSocketAddrs, exec: ExecutionContext) -> io::Result<Server> {
        Server::bind_with_config(addr, exec, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit flow-control tuning.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn bind_with_config(
        addr: impl ToSocketAddrs,
        exec: ExecutionContext,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let mut state = ServerState::new(exec);
        state.memory_budget = config.max_memory_bytes;
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(state),
            config,
        })
    }

    /// The address the server is bound to.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Points the snapshot surface (`SaveIndex`/`RestoreIndex` and
    /// [`Server::load_snapshots`]) at a directory.  Without one, snapshot
    /// requests answer with an error response.
    pub fn set_snapshot_dir(&self, dir: impl Into<PathBuf>) {
        *self
            .state
            .snapshot_dir
            .write()
            .expect("snapshot dir lock poisoned") = Some(dir.into());
    }

    /// Scans the snapshot directory and registers every stored dataset with
    /// its built index — the warm-restart path, paying decode cost instead
    /// of index construction.  Unrestorable files (corrupt, stale,
    /// inconsistent) are skipped and reported in [`SnapshotScan::skipped`]
    /// rather than aborting the scan, so one bad file cannot keep the
    /// healthy datasets from coming back.
    ///
    /// # Errors
    /// [`EclipseError::Unsupported`] without a snapshot directory;
    /// [`EclipseError::Snapshot`] when the directory itself is unreadable.
    pub fn load_snapshots(&self) -> Result<SnapshotScan, EclipseError> {
        self.state.load_snapshots()
    }

    /// Registers a dataset in-process (the binary's `--preload` and the
    /// bench harness use this; remote clients use [`Request::LoadDataset`]).
    ///
    /// # Errors
    /// Propagates engine/index construction errors.
    pub fn register_dataset(
        &self,
        name: &str,
        points: Vec<Point>,
        warm: IndexKind,
    ) -> Result<DatasetSummary, EclipseError> {
        self.state.register(name, points, warm)
    }

    /// Serves connections forever on the calling thread (the binary's main
    /// loop).
    ///
    /// # Errors
    /// Propagates socket setup errors.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let event_loop = EventLoop::new(self.listener, self.state, self.config);
        event_loop.run(&AtomicBool::new(false), &AtomicBool::new(false));
        Ok(())
    }

    /// Serves connections on a background event-loop thread and returns a
    /// handle that drains and shuts the server down when dropped — the
    /// in-process flavour tests and benches use.
    ///
    /// # Errors
    /// Propagates socket setup errors.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        self.listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let hard_stop = Arc::new(AtomicBool::new(false));
        let event_loop = EventLoop::new(self.listener, self.state, self.config);
        let (loop_stop, loop_hard) = (Arc::clone(&stop), Arc::clone(&hard_stop));
        let thread = std::thread::spawn(move || event_loop.run(&loop_stop, &loop_hard));
        let loop_thread = thread.thread().clone();
        Ok(ServerHandle {
            addr,
            stop,
            hard_stop,
            loop_thread,
            thread: Some(thread),
        })
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .finish()
    }
}

/// Handle to a server spawned with [`Server::spawn`].
///
/// [`ServerHandle::shutdown`] (and drop) stop the server **gracefully**: the
/// listener closes, admitted requests finish, their responses flush, and
/// only then does the event loop exit (bounded by
/// [`ServerConfig::drain_timeout`]).  [`ServerHandle::abort`] skips the
/// drain — sockets close immediately and queued work is dropped.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    hard_stop: Arc<AtomicBool>,
    loop_thread: std::thread::Thread,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Gracefully stops the server: stop accepting, drain in-flight
    /// requests, flush responses, then join the event-loop thread.
    pub fn shutdown(mut self) {
        self.stop_and_join(false);
    }

    /// Hard-stops the server: close every socket immediately, dropping
    /// queued requests and un-flushed responses.  Clients observe the
    /// connection closing mid-conversation — the failure-injection path the
    /// disconnect tests use.
    pub fn abort(mut self) {
        self.stop_and_join(true);
    }

    fn stop_and_join(&mut self, hard: bool) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        if hard {
            self.hard_stop.store(true, Ordering::SeqCst);
        }
        self.stop.store(true, Ordering::SeqCst);
        // The loop may be parked in its idle backoff; wake it.
        self.loop_thread.unpark();
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_coords() -> Vec<f64> {
        vec![1.0, 6.0, 4.0, 4.0, 6.0, 1.0, 8.0, 5.0]
    }

    fn loaded_state() -> ServerState {
        let state = ServerState::new(ExecutionContext::serial());
        let resp = state.respond(Request::LoadDataset {
            name: "hotels".to_string(),
            dim: 2,
            coords: paper_coords(),
            warm: IndexKind::Quadtree,
        });
        assert!(matches!(resp, Response::DatasetLoaded(_)), "{resp:?}");
        state
    }

    #[test]
    fn load_warms_the_index_and_reports_sizes() {
        let state = loaded_state();
        let Response::Stats(report) = state.respond(Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(report.datasets.len(), 1);
        let d = &report.datasets[0];
        assert_eq!((d.points, d.dim), (4, 2));
        assert_eq!(d.skyline_len, 3);
        assert_eq!(d.intersections, 3);
        assert!(d.quad_built && !d.cutting_built);
        assert!(d.root_crossings <= d.intersections);
    }

    #[test]
    fn query_and_count_batches_answer_the_paper_example() {
        let state = loaded_state();
        let boxes = vec![vec![(0.25, 2.0)], vec![(2.0, 2.0)]];
        let resp = state.respond(Request::QueryBatch {
            name: "hotels".to_string(),
            boxes: boxes.clone(),
        });
        assert_eq!(resp, Response::QueryResults(vec![vec![0, 1, 2], vec![0]]));
        let resp = state.respond(Request::CountBatch {
            name: "hotels".to_string(),
            boxes,
        });
        assert_eq!(resp, Response::Counts(vec![3, 1]));
        let Response::Stats(report) = state.respond(Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(report.query_batches, 1);
        assert_eq!(report.count_batches, 1);
        assert_eq!(report.probes, 4);
        assert_eq!(report.errors, 0);
    }

    #[test]
    fn failures_become_error_responses_and_count() {
        let state = loaded_state();
        // Unknown dataset.
        let resp = state.respond(Request::QueryBatch {
            name: "nope".to_string(),
            boxes: vec![vec![(0.5, 1.0)]],
        });
        assert!(matches!(resp, Response::Error(m) if m.contains("unknown dataset")));
        // Invalid range (lo > hi).
        let resp = state.respond(Request::QueryBatch {
            name: "hotels".to_string(),
            boxes: vec![vec![(2.0, 0.5)]],
        });
        assert!(matches!(resp, Response::Error(_)));
        // Mismatched coordinate count.
        let resp = state.respond(Request::LoadDataset {
            name: "bad".to_string(),
            dim: 3,
            coords: vec![1.0, 2.0],
            warm: IndexKind::Quadtree,
        });
        assert!(matches!(resp, Response::Error(_)));
        // Non-finite coordinates are rejected at the boundary.
        let resp = state.respond(Request::LoadDataset {
            name: "bad".to_string(),
            dim: 2,
            coords: vec![1.0, f64::NAN],
            warm: IndexKind::Quadtree,
        });
        assert!(matches!(resp, Response::Error(m) if m.contains("finite")));
        let Response::Stats(report) = state.respond(Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(report.errors, 4);
        assert_eq!(report.datasets.len(), 1, "failed loads register nothing");
    }

    #[test]
    fn mutations_maintain_results_and_bump_the_stats_epoch() {
        let state = loaded_state();
        // A skyline-entering insert: (2.0, 3.0) dominates (4.0, 4.0).
        let resp = state.respond(Request::Insert {
            name: "hotels".to_string(),
            coords: vec![2.0, 3.0],
        });
        assert_eq!(
            resp,
            Response::Mutated {
                kind: crate::protocol::MutationKind::InsertedSkyline,
                epoch: 1,
                len: 5,
            }
        );
        // Delete the evicted point (id 1 = (4.0, 4.0), now non-skyline).
        let resp = state.respond(Request::Delete {
            name: "hotels".to_string(),
            id: 1,
        });
        assert_eq!(
            resp,
            Response::Mutated {
                kind: crate::protocol::MutationKind::DeletedNonSkyline,
                epoch: 2,
                len: 4,
            }
        );
        // Queries answer over the mutated dataset (ids shifted down): the
        // inserted (2.0, 3.0) eclipse-dominates (1.0, 6.0) over the whole
        // box, leaving (6.0, 1.0) (id 1) and itself (id 3).
        let resp = state.respond(Request::QueryBatch {
            name: "hotels".to_string(),
            boxes: vec![vec![(0.25, 2.0)]],
        });
        assert_eq!(resp, Response::QueryResults(vec![vec![1, 3]]));
        let Response::Stats(report) = state.respond(Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(report.datasets[0].epoch, 2);
        assert_eq!(report.datasets[0].points, 4);
        // Mutation failures are error responses: bad dim, bad id, NaN.
        for req in [
            Request::Insert {
                name: "hotels".to_string(),
                coords: vec![1.0, 2.0, 3.0],
            },
            Request::Insert {
                name: "hotels".to_string(),
                coords: vec![1.0, f64::NAN],
            },
            Request::Delete {
                name: "hotels".to_string(),
                id: 99,
            },
            Request::Delete {
                name: "nope".to_string(),
                id: 0,
            },
        ] {
            let resp = state.respond(req);
            assert!(matches!(resp, Response::Error(_)), "{resp:?}");
        }
    }

    #[test]
    fn build_index_adds_the_second_backend() {
        let state = loaded_state();
        let resp = state.respond(Request::BuildIndex {
            name: "hotels".to_string(),
            kind: IndexKind::CuttingTree,
        });
        let Response::IndexBuilt(summary) = resp else {
            panic!("expected index summary");
        };
        assert_eq!(summary.kind, IndexKind::CuttingTree);
        assert_eq!(summary.skyline_len, 3);
        assert!(summary.nodes >= 1);
        let Response::Stats(report) = state.respond(Request::Stats) else {
            panic!("expected stats");
        };
        assert!(report.datasets[0].cutting_built);
    }

    #[test]
    fn reloading_a_dataset_replaces_it() {
        let state = loaded_state();
        let resp = state.respond(Request::LoadDataset {
            name: "hotels".to_string(),
            dim: 2,
            coords: vec![1.0, 1.0, 2.0, 2.0],
            warm: IndexKind::CuttingTree,
        });
        let Response::DatasetLoaded(summary) = resp else {
            panic!("expected load ack");
        };
        assert_eq!(summary.points, 2);
        let resp = state.respond(Request::QueryBatch {
            name: "hotels".to_string(),
            boxes: vec![vec![(0.5, 2.0)]],
        });
        assert_eq!(resp, Response::QueryResults(vec![vec![0]]));
    }

    #[test]
    fn ping_pongs() {
        let state = ServerState::new(ExecutionContext::serial());
        assert_eq!(state.respond(Request::Ping), Response::Pong);
    }

    /// RAII temp directory for the snapshot tests.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(name: &str) -> Self {
            let mut path = std::env::temp_dir();
            path.push(format!("eclipse_serve_{}_{name}", std::process::id()));
            std::fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn save_and_restore_round_trip_through_the_state() {
        let dir = TempDir::new("roundtrip");
        let state = loaded_state();
        // Without a snapshot dir, the surface answers errors.
        let resp = state.respond(Request::SaveIndex {
            name: "hotels".to_string(),
            kind: IndexKind::Quadtree,
        });
        assert!(matches!(resp, Response::Error(m) if m.contains("--snapshot-dir")),);
        *state.snapshot_dir.write().unwrap() = Some(dir.0.clone());

        let resp = state.respond(Request::SaveIndex {
            name: "hotels".to_string(),
            kind: IndexKind::Quadtree,
        });
        let Response::SnapshotSaved { bytes } = resp else {
            panic!("expected a snapshot ack, got {resp:?}");
        };
        assert!(bytes > 0);
        assert!(dir.0.join("hotels-quad.eclsnap").exists());

        // Restore into a fresh state that re-registered the same dataset.
        let fresh = loaded_state();
        *fresh.snapshot_dir.write().unwrap() = Some(dir.0.clone());
        let resp = fresh.respond(Request::RestoreIndex {
            name: "hotels".to_string(),
            kind: IndexKind::Quadtree,
        });
        let Response::IndexBuilt(summary) = resp else {
            panic!("expected an index ack, got {resp:?}");
        };
        assert_eq!(summary.kind, IndexKind::Quadtree);
        assert_eq!(summary.skyline_len, 3);

        // Cold start: an empty state warm-loads the dataset from disk.
        let cold = ServerState::new(ExecutionContext::serial());
        *cold.snapshot_dir.write().unwrap() = Some(dir.0.clone());
        let scan = cold.load_snapshots().unwrap();
        assert!(scan.skipped.is_empty(), "{:?}", scan.skipped);
        assert_eq!(scan.restored.len(), 1);
        assert_eq!(scan.restored[0].0, "hotels");
        assert_eq!(scan.restored[0].1.points, 4);
        let resp = cold.respond(Request::QueryBatch {
            name: "hotels".to_string(),
            boxes: vec![vec![(0.25, 2.0)]],
        });
        assert_eq!(resp, Response::QueryResults(vec![vec![0, 1, 2]]));
    }

    #[test]
    fn restoring_into_a_different_dataset_is_a_typed_wire_error() {
        let dir = TempDir::new("mismatch");
        let state = loaded_state();
        *state.snapshot_dir.write().unwrap() = Some(dir.0.clone());
        let resp = state.respond(Request::SaveIndex {
            name: "hotels".to_string(),
            kind: IndexKind::Quadtree,
        });
        assert!(matches!(resp, Response::SnapshotSaved { .. }));

        // Replace the dataset under the same name with different points.
        let resp = state.respond(Request::LoadDataset {
            name: "hotels".to_string(),
            dim: 2,
            coords: vec![1.0, 1.0, 2.0, 2.0],
            warm: IndexKind::Quadtree,
        });
        assert!(matches!(resp, Response::DatasetLoaded(_)));
        let resp = state.respond(Request::RestoreIndex {
            name: "hotels".to_string(),
            kind: IndexKind::Quadtree,
        });
        assert!(
            matches!(&resp, Response::Error(m) if m.contains("mismatch")),
            "a stale snapshot must be rejected, got {resp:?}"
        );
        // The connection-level state still answers correctly afterwards.
        let resp = state.respond(Request::QueryBatch {
            name: "hotels".to_string(),
            boxes: vec![vec![(0.5, 2.0)]],
        });
        assert_eq!(resp, Response::QueryResults(vec![vec![0]]));
        // A missing snapshot file is an error response, not a panic.
        let resp = state.respond(Request::RestoreIndex {
            name: "hotels".to_string(),
            kind: IndexKind::CuttingTree,
        });
        assert!(matches!(resp, Response::Error(_)));
    }

    #[test]
    fn load_snapshots_merges_both_kinds_of_one_dataset() {
        let dir = TempDir::new("merge");
        let state = loaded_state();
        *state.snapshot_dir.write().unwrap() = Some(dir.0.clone());
        for kind in [IndexKind::Quadtree, IndexKind::CuttingTree] {
            let resp = state.respond(Request::SaveIndex {
                name: "hotels".to_string(),
                kind,
            });
            assert!(matches!(resp, Response::SnapshotSaved { .. }), "{kind:?}");
        }
        let cold = ServerState::new(ExecutionContext::serial());
        *cold.snapshot_dir.write().unwrap() = Some(dir.0.clone());
        let scan = cold.load_snapshots().unwrap();
        assert!(scan.skipped.is_empty(), "{:?}", scan.skipped);
        assert_eq!(scan.restored.len(), 2, "one entry per snapshot file");
        let Response::Stats(report) = cold.respond(Request::Stats) else {
            panic!("expected stats");
        };
        assert_eq!(report.datasets.len(), 1, "both files restore one dataset");
        assert!(report.datasets[0].quad_built && report.datasets[0].cutting_built);
    }

    #[test]
    fn a_corrupt_snapshot_is_skipped_without_taking_healthy_ones_down() {
        let dir = TempDir::new("skip");
        let state = loaded_state();
        *state.snapshot_dir.write().unwrap() = Some(dir.0.clone());
        let resp = state.respond(Request::SaveIndex {
            name: "hotels".to_string(),
            kind: IndexKind::Quadtree,
        });
        assert!(matches!(resp, Response::SnapshotSaved { .. }));
        // A torn/garbage file next to the healthy one.
        std::fs::write(dir.0.join("broken.eclsnap"), b"not a snapshot").unwrap();

        let cold = ServerState::new(ExecutionContext::serial());
        *cold.snapshot_dir.write().unwrap() = Some(dir.0.clone());
        let scan = cold.load_snapshots().unwrap();
        assert_eq!(scan.restored.len(), 1, "the healthy dataset comes back");
        assert_eq!(scan.restored[0].0, "hotels");
        assert_eq!(scan.skipped.len(), 1, "the bad file is reported");
        assert!(scan.skipped[0].0.ends_with("broken.eclsnap"));
        assert!(matches!(scan.skipped[0].1, EclipseError::Snapshot(_)));
    }

    #[test]
    fn sanitized_name_collisions_cannot_overwrite_each_other() {
        let dir = PathBuf::from("/snapshots");
        let a = ServerState::snapshot_path(&dir, "a/b", IndexKind::Quadtree);
        let b = ServerState::snapshot_path(&dir, "a_b", IndexKind::Quadtree);
        assert_ne!(a, b, "distinct raw names must map to distinct files");
        // Deterministic: the same raw name always maps to the same file.
        assert_eq!(
            a,
            ServerState::snapshot_path(&dir, "a/b", IndexKind::Quadtree)
        );
    }

    #[test]
    fn snapshot_paths_are_sanitized() {
        let dir = PathBuf::from("/snapshots");
        // A name needing sanitization gets a hash disambiguator appended.
        let raw = "data/../set name";
        let path = ServerState::snapshot_path(&dir, raw, IndexKind::Quadtree);
        let expected = format!(
            "data_.._set_name-{:08x}-quad.eclsnap",
            eclipse_persist::fnv1a(raw.as_bytes()) as u32
        );
        assert_eq!(path, dir.join(expected));
        // Already-safe names stay readable, with no disambiguator.
        let path = ServerState::snapshot_path(&dir, "ok-1.2_x", IndexKind::CuttingTree);
        assert_eq!(path, dir.join("ok-1.2_x-cutting.eclsnap"));
    }
}
