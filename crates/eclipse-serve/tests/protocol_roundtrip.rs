//! Property suite for the wire protocol: every request/response value
//! round-trips bit-exactly through encode → frame → unframe → decode, and
//! arbitrary garbage — truncations, bit flips, random bytes — decodes to a
//! clean [`ProtocolError`] without ever panicking or over-allocating.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use eclipse_serve::protocol::{
    read_frame, write_frame, DatasetStats, DatasetSummary, FrameHeader, IndexKind, IndexSummary,
    MutationKind, ProtocolError, Request, Response, StatsReport, V2_HEADER_LEN,
};

/// Deterministic pseudo-random request for a seed: every variant, with
/// string/list sizes swept over the small-to-moderate range the server sees.
fn arbitrary_request(seed: u64) -> Request {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let name = random_name(&mut rng);
    match rng.gen_range(0..13u32) {
        0 => Request::Ping,
        11 => Request::Insert {
            name,
            coords: (0..rng.gen_range(0..8usize))
                .map(|_| random_coord(&mut rng))
                .collect(),
        },
        12 => Request::Delete {
            name,
            id: rng.gen_range(0..u64::MAX),
        },
        8 => Request::Hello {
            max_version: rng.gen_range(0..u32::MAX),
            pipe_size: rng.gen_range(0..u32::MAX),
        },
        9 => Request::LoadSnapshots,
        10 => Request::AllowPartial {
            enabled: rng.gen_range(0..2u8) == 1,
        },
        1 => {
            let dim = rng.gen_range(2..5u32);
            let n = rng.gen_range(0..20usize);
            Request::LoadDataset {
                name,
                dim,
                coords: (0..n * dim as usize)
                    .map(|_| random_coord(&mut rng))
                    .collect(),
                warm: random_kind(&mut rng),
            }
        }
        2 => Request::BuildIndex {
            name,
            kind: random_kind(&mut rng),
        },
        3 => Request::QueryBatch {
            name,
            boxes: random_boxes(&mut rng),
        },
        4 => Request::CountBatch {
            name,
            boxes: random_boxes(&mut rng),
        },
        5 => Request::SaveIndex {
            name,
            kind: random_kind(&mut rng),
        },
        6 => Request::RestoreIndex {
            name,
            kind: random_kind(&mut rng),
        },
        _ => Request::Stats,
    }
}

/// Deterministic pseudo-random response for a seed.
fn arbitrary_response(seed: u64) -> Response {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    match rng.gen_range(0..17u32) {
        0 => Response::Pong,
        16 => Response::DatasetUnavailable {
            name: random_name(&mut rng),
            reason: random_name(&mut rng),
        },
        15 => Response::Mutated {
            kind: match rng.gen_range(0..4u8) {
                0 => MutationKind::InsertedDominated,
                1 => MutationKind::InsertedSkyline,
                2 => MutationKind::DeletedNonSkyline,
                _ => MutationKind::DeletedSkyline,
            },
            epoch: rng.gen_range(0..u64::MAX),
            len: rng.gen_range(0..u64::MAX),
        },
        11 => Response::SnapshotsLoaded {
            restored: (0..rng.gen_range(0..4usize))
                .map(|_| {
                    (
                        random_name(&mut rng),
                        DatasetSummary {
                            points: rng.gen_range(0..u64::MAX),
                            dim: rng.gen_range(0..u32::MAX),
                            skyline_len: rng.gen_range(0..u64::MAX),
                            intersections: rng.gen_range(0..u64::MAX),
                        },
                    )
                })
                .collect(),
            skipped: (0..rng.gen_range(0..4usize))
                .map(|_| (random_name(&mut rng), random_name(&mut rng)))
                .collect(),
        },
        12 => Response::PartialAck {
            enabled: rng.gen_range(0..2u8) == 1,
        },
        13 => Response::PartialResults(
            (0..rng.gen_range(0..8usize))
                .map(|_| {
                    if rng.gen_range(0..3u8) == 0 {
                        None
                    } else {
                        let ids = rng.gen_range(0..10usize);
                        Some((0..ids).map(|_| rng.gen_range(0..u64::MAX)).collect())
                    }
                })
                .collect(),
        ),
        14 => Response::PartialCounts(
            (0..rng.gen_range(0..12usize))
                .map(|_| {
                    if rng.gen_range(0..3u8) == 0 {
                        None
                    } else {
                        Some(rng.gen_range(0..u64::MAX))
                    }
                })
                .collect(),
        ),
        8 => Response::HelloAck {
            version: rng.gen_range(0..u32::MAX),
            pipe_size: rng.gen_range(0..u32::MAX),
            max_frame_len: rng.gen_range(0..u32::MAX),
        },
        9 => Response::Timeout {
            deadline_ms: rng.gen_range(0..u32::MAX),
        },
        10 => Response::Overloaded {
            in_flight: rng.gen_range(0..u32::MAX),
            limit: rng.gen_range(0..u32::MAX),
        },
        1 => Response::DatasetLoaded(DatasetSummary {
            points: rng.gen_range(0..u64::MAX),
            dim: rng.gen_range(0..u32::MAX),
            skyline_len: rng.gen_range(0..u64::MAX),
            intersections: rng.gen_range(0..u64::MAX),
        }),
        2 => Response::IndexBuilt(IndexSummary {
            kind: random_kind(&mut rng),
            skyline_len: rng.gen_range(0..u64::MAX),
            intersections: rng.gen_range(0..u64::MAX),
            nodes: rng.gen_range(0..u64::MAX),
            depth: rng.gen_range(0..u32::MAX),
        }),
        3 => {
            let rows = rng.gen_range(0..8usize);
            Response::QueryResults(
                (0..rows)
                    .map(|_| {
                        let ids = rng.gen_range(0..10usize);
                        (0..ids).map(|_| rng.gen_range(0..u64::MAX)).collect()
                    })
                    .collect(),
            )
        }
        4 => Response::Counts(
            (0..rng.gen_range(0..12usize))
                .map(|_| rng.gen_range(0..u64::MAX))
                .collect(),
        ),
        6 => Response::SnapshotSaved {
            bytes: rng.gen_range(0..u64::MAX),
        },
        5 => Response::Stats(StatsReport {
            query_batches: rng.gen_range(0..u64::MAX),
            count_batches: rng.gen_range(0..u64::MAX),
            probes: rng.gen_range(0..u64::MAX),
            errors: rng.gen_range(0..u64::MAX),
            in_flight: rng.gen_range(0..u64::MAX),
            timeouts: rng.gen_range(0..u64::MAX),
            rejected: rng.gen_range(0..u64::MAX),
            conn_queue_depths: (0..rng.gen_range(0..6usize))
                .map(|_| rng.gen_range(0..u32::MAX))
                .collect(),
            total_bytes: rng.gen_range(0..u64::MAX),
            memory_budget: rng.gen_range(0..u64::MAX),
            evictions: rng.gen_range(0..u64::MAX),
            reloads: rng.gen_range(0..u64::MAX),
            datasets: (0..rng.gen_range(0..4usize))
                .map(|_| DatasetStats {
                    name: random_name(&mut rng),
                    points: rng.gen_range(0..u64::MAX),
                    dim: rng.gen_range(0..u32::MAX),
                    skyline_len: rng.gen_range(0..u64::MAX),
                    intersections: rng.gen_range(0..u64::MAX),
                    root_crossings: rng.gen_range(0..u64::MAX),
                    quad_built: rng.gen_range(0..2u8) == 1,
                    cutting_built: rng.gen_range(0..2u8) == 1,
                    epoch: rng.gen_range(0..u64::MAX),
                    bytes: rng.gen_range(0..u64::MAX),
                    resident: rng.gen_range(0..2u8) == 1,
                })
                .collect(),
        }),
        _ => Response::Error(random_name(&mut rng)),
    }
}

fn random_name(rng: &mut rand::rngs::StdRng) -> String {
    // Multi-byte UTF-8 included: the codec counts bytes, not chars.
    let alphabet = ['a', 'b', 'z', '0', '-', '_', 'é', '∞', '雲'];
    (0..rng.gen_range(0..12usize))
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

fn random_coord(rng: &mut rand::rngs::StdRng) -> f64 {
    match rng.gen_range(0..8u32) {
        // Edge values must survive the bit-pattern encoding exactly.
        0 => 0.0,
        1 => -0.0,
        2 => f64::INFINITY,
        3 => f64::MIN_POSITIVE,
        _ => rng.gen_range(-1e9..1e9),
    }
}

fn random_kind(rng: &mut rand::rngs::StdRng) -> IndexKind {
    if rng.gen_range(0..2u32) == 0 {
        IndexKind::Quadtree
    } else {
        IndexKind::CuttingTree
    }
}

fn random_boxes(rng: &mut rand::rngs::StdRng) -> Vec<Vec<(f64, f64)>> {
    (0..rng.gen_range(0..6usize))
        .map(|_| {
            (0..rng.gen_range(0..4usize))
                .map(|_| (random_coord(rng), random_coord(rng)))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity on requests, and the framing layer
    /// preserves the payload bytes.
    #[test]
    fn requests_round_trip(seed in 0u64..1_000_000) {
        let request = arbitrary_request(seed);
        let payload = request.encode();
        prop_assert_eq!(Request::decode(&payload).unwrap(), request);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut cursor = &wire[..];
        prop_assert_eq!(read_frame(&mut cursor).unwrap(), Some(payload));
        prop_assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    /// encode → decode is the identity on responses.
    #[test]
    fn responses_round_trip(seed in 0u64..1_000_000) {
        let response = arbitrary_response(seed);
        let payload = response.encode();
        prop_assert_eq!(Response::decode(&payload).unwrap(), response);
    }

    /// Every proper prefix of a valid payload is rejected cleanly: no panic,
    /// no accidental accept of a shorter message.
    #[test]
    fn truncated_payloads_error_cleanly(seed in 0u64..100_000, cut in 0.0f64..1.0) {
        let payload = arbitrary_request(seed).encode();
        if payload.len() > 1 {
            let cut = 1 + (cut * (payload.len() - 1) as f64) as usize;
            if cut < payload.len() {
                prop_assert!(Request::decode(&payload[..cut]).is_err());
            }
        }
        let payload = arbitrary_response(seed).encode();
        if payload.len() > 1 {
            let cut = 1 + (cut * (payload.len() - 1) as f64) as usize;
            if cut < payload.len() {
                prop_assert!(Response::decode(&payload[..cut]).is_err());
            }
        }
    }

    /// Arbitrary garbage never panics the decoders — it either happens to be
    /// a valid message or produces a ProtocolError.
    #[test]
    fn garbage_never_panics(seed in 0u64..100_000, len in 0usize..256) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen_range(0..256u32) as u8).collect();
        let _ = Request::decode(&garbage);
        let _ = Response::decode(&garbage);
    }

    /// Single-byte corruption of a valid payload never panics, and a
    /// corrupted *tag* byte is always rejected or decodes to a different,
    /// well-formed message (the decoder must never misread lengths into an
    /// oversized allocation — the counts are validated against remaining
    /// bytes).
    #[test]
    fn bit_flips_never_panic(seed in 0u64..100_000, pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut payload = arbitrary_request(seed).encode();
        let pos = (pos_frac * payload.len() as f64) as usize % payload.len().max(1);
        if !payload.is_empty() {
            payload[pos] ^= 1 << bit;
            let _ = Request::decode(&payload);
        }
    }

    /// A v2 payload (header + body) splits back into exactly the header and
    /// body it was built from, for every request id and deadline.
    #[test]
    fn v2_frames_round_trip(seed in 0u64..1_000_000, request_id in 0u64..u64::MAX, deadline_ms in 0u32..u32::MAX) {
        let request = arbitrary_request(seed);
        let header = FrameHeader { request_id, deadline_ms };
        let payload = header.with_body(&request.encode());
        let (decoded_header, body) = FrameHeader::split(&payload).unwrap();
        prop_assert_eq!(decoded_header, header);
        prop_assert_eq!(Request::decode(body).unwrap(), request);
    }

    /// Every truncation of a v2 payload is rejected cleanly: cuts inside the
    /// 12-byte header surface as a header-level Truncated error, cuts inside
    /// the body as a body decode error — never a panic, never a false accept.
    #[test]
    fn truncated_v2_frames_error_cleanly(seed in 0u64..100_000, request_id in 0u64..u64::MAX, cut_frac in 0.0f64..1.0) {
        let payload = FrameHeader { request_id, deadline_ms: seed as u32 }
            .with_body(&arbitrary_request(seed).encode());
        let cut = (cut_frac * payload.len() as f64) as usize % payload.len();
        if cut < V2_HEADER_LEN {
            prop_assert!(matches!(
                FrameHeader::split(&payload[..cut]),
                Err(ProtocolError::Truncated { .. })
            ));
        } else if cut < payload.len() {
            let (header, body) = FrameHeader::split(&payload[..cut]).unwrap();
            prop_assert_eq!(header.request_id, request_id);
            prop_assert!(Request::decode(body).is_err());
        }
    }

    /// Single-bit corruption anywhere in a v2 payload — request id bytes,
    /// deadline bytes, or body — never panics the header split or the body
    /// decoder.
    #[test]
    fn v2_bit_flips_never_panic(seed in 0u64..100_000, pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut payload = FrameHeader { request_id: seed, deadline_ms: seed as u32 }
            .with_body(&arbitrary_request(seed).encode());
        let pos = (pos_frac * payload.len() as f64) as usize % payload.len();
        payload[pos] ^= 1 << bit;
        if let Ok((_, body)) = FrameHeader::split(&payload) {
            let _ = Request::decode(body);
        }
    }
}

#[test]
fn frame_reader_rejects_hostile_lengths_without_allocating() {
    // A length prefix of u32::MAX would be a 4 GiB allocation if trusted.
    let mut wire = Vec::new();
    wire.extend_from_slice(&u32::MAX.to_le_bytes());
    wire.extend_from_slice(&[0u8; 16]);
    let mut cursor = &wire[..];
    assert!(matches!(
        read_frame(&mut cursor),
        Err(ProtocolError::FrameTooLarge(u32::MAX))
    ));
}

#[test]
fn mid_frame_eof_is_an_io_error_not_a_hang() {
    // Length says 100 bytes, stream has 3.
    let mut wire = Vec::new();
    wire.extend_from_slice(&100u32.to_le_bytes());
    wire.extend_from_slice(&[1, 2, 3]);
    let mut cursor = &wire[..];
    assert!(matches!(read_frame(&mut cursor), Err(ProtocolError::Io(_))));
}

#[test]
fn claimed_counts_are_bounded_by_remaining_bytes() {
    // A QueryBatch whose box list claims 2^31 boxes in a tiny payload must
    // be rejected before any allocation happens (this is the codec-level
    // guarantee the 64 MiB frame cap composes with).
    let valid = Request::QueryBatch {
        name: "d".to_string(),
        boxes: vec![vec![(0.1, 0.7)]],
    }
    .encode();
    // name = tag(1) + len(4) + 'd'(1); the box count follows at offset 6.
    let mut hostile = valid.clone();
    hostile[6..10].copy_from_slice(&(1u32 << 31).to_le_bytes());
    match Request::decode(&hostile) {
        Err(ProtocolError::Malformed(m)) => assert!(m.contains("element count")),
        other => panic!("expected a malformed-count error, got {other:?}"),
    }
    assert_eq!(Request::decode(&valid).unwrap().encode(), valid);
}
