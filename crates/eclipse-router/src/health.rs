//! Member health: a per-member state machine with consecutive-failure
//! thresholds and half-open probation.
//!
//! The machine is deliberately pure (no clocks, no sockets): the router's
//! health-check loop and the per-request passive failure path both feed it
//! observations, and unit tests drive every transition directly.
//!
//! ```text
//!          fail_threshold consecutive failures
//!   Up ──────────────────────────────────────────▶ Down
//!    ▲                                              │
//!    │ probation_successes consecutive successes    │ ping answers
//!    │                                              ▼ (+ re-warm)
//!    └────────────────────────────────────────── Probation
//!              any failure sends Probation straight back to Down
//! ```
//!
//! Probation is the half-open state: the member answers health pings again
//! but takes **no routed traffic** until it has proven itself with
//! [`HealthPolicy::probation_successes`] consecutive successes — a member
//! that flaps cannot be readmitted by a single lucky ping.

use std::time::Duration;

/// Thresholds and cadence of the health machinery.
#[derive(Clone, Debug)]
pub struct HealthPolicy {
    /// Consecutive failures (active checks and passive per-request
    /// failures combined) that take an `Up` member `Down`.
    pub fail_threshold: u32,
    /// Consecutive successful checks a `Probation` member must bank before
    /// it is readmitted to routing.
    pub probation_successes: u32,
    /// Pause between active health-check rounds.
    pub check_interval: Duration,
    /// Socket timeout of one active check (connect + ping).
    pub check_timeout: Duration,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            fail_threshold: 3,
            probation_successes: 2,
            check_interval: Duration::from_millis(50),
            check_timeout: Duration::from_millis(500),
        }
    }
}

/// Where a member currently stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Routable.
    Up,
    /// Not routable; the health loop is trying to recover or replace it.
    Down,
    /// Half-open: answering checks, excluded from routing until it banks
    /// enough consecutive successes.
    Probation,
}

/// A state change worth acting on, returned by the observation methods.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transition {
    /// No state change.
    None,
    /// `Up` → `Down`: the failure threshold was crossed.
    WentDown,
    /// `Down` → `Probation`: the member answered again (re-warm happens
    /// before this is recorded).
    EnteredProbation,
    /// `Probation` → `Up`: enough consecutive successes banked.
    Readmitted,
}

/// The per-member machine.
#[derive(Clone, Debug)]
pub struct HealthMachine {
    state: HealthState,
    consecutive_failures: u32,
    banked_successes: u32,
}

impl Default for HealthMachine {
    fn default() -> HealthMachine {
        HealthMachine::new()
    }
}

impl HealthMachine {
    /// A fresh member starts `Up` with a clean slate.
    pub fn new() -> HealthMachine {
        HealthMachine {
            state: HealthState::Up,
            consecutive_failures: 0,
            banked_successes: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Whether routed traffic may be sent to this member.
    pub fn is_routable(&self) -> bool {
        self.state == HealthState::Up
    }

    /// Consecutive failures observed since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Records a successful observation (an answered check, or an answered
    /// routed request).
    pub fn on_success(&mut self, policy: &HealthPolicy) -> Transition {
        self.consecutive_failures = 0;
        match self.state {
            HealthState::Up | HealthState::Down => Transition::None,
            HealthState::Probation => {
                self.banked_successes += 1;
                if self.banked_successes >= policy.probation_successes {
                    self.state = HealthState::Up;
                    self.banked_successes = 0;
                    Transition::Readmitted
                } else {
                    Transition::None
                }
            }
        }
    }

    /// Records a failed observation (a check that timed out, a connection
    /// that died mid-request, …).  Deterministic server-side errors are
    /// *not* failures — the caller filters those out.
    pub fn on_failure(&mut self, policy: &HealthPolicy) -> Transition {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            HealthState::Up => {
                if self.consecutive_failures >= policy.fail_threshold {
                    self.state = HealthState::Down;
                    self.banked_successes = 0;
                    Transition::WentDown
                } else {
                    Transition::None
                }
            }
            // One bad check undoes all probation progress: back to Down.
            HealthState::Probation => {
                self.state = HealthState::Down;
                self.banked_successes = 0;
                Transition::None
            }
            HealthState::Down => Transition::None,
        }
    }

    /// Moves a `Down` member into half-open `Probation` — called by the
    /// health loop *after* it has pinged the member and re-warmed it from
    /// snapshots.  No-op from any other state.
    pub fn enter_probation(&mut self) -> Transition {
        if self.state == HealthState::Down {
            self.state = HealthState::Probation;
            self.consecutive_failures = 0;
            self.banked_successes = 0;
            Transition::EnteredProbation
        } else {
            Transition::None
        }
    }

    /// Resets to `Up` with a clean slate — used when a standby is promoted
    /// into this member's slot (the new process was just pinged and
    /// re-warmed, and probation would only delay recovery the fault
    /// machinery has already verified).
    pub fn reset_up(&mut self) {
        self.state = HealthState::Up;
        self.consecutive_failures = 0;
        self.banked_successes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> HealthPolicy {
        HealthPolicy {
            fail_threshold: 3,
            probation_successes: 2,
            ..HealthPolicy::default()
        }
    }

    #[test]
    fn failures_below_threshold_keep_member_up() {
        let policy = policy();
        let mut m = HealthMachine::new();
        assert_eq!(m.on_failure(&policy), Transition::None);
        assert_eq!(m.on_failure(&policy), Transition::None);
        assert!(m.is_routable());
        // A success resets the streak: two more failures still aren't three.
        assert_eq!(m.on_success(&policy), Transition::None);
        assert_eq!(m.on_failure(&policy), Transition::None);
        assert_eq!(m.on_failure(&policy), Transition::None);
        assert!(m.is_routable());
        assert_eq!(m.on_failure(&policy), Transition::WentDown);
        assert_eq!(m.state(), HealthState::Down);
        assert!(!m.is_routable());
    }

    #[test]
    fn probation_requires_consecutive_successes() {
        let policy = policy();
        let mut m = HealthMachine::new();
        for _ in 0..3 {
            m.on_failure(&policy);
        }
        assert_eq!(m.enter_probation(), Transition::EnteredProbation);
        assert_eq!(m.state(), HealthState::Probation);
        assert!(!m.is_routable(), "half-open members take no routed traffic");
        assert_eq!(m.on_success(&policy), Transition::None);
        assert_eq!(m.on_success(&policy), Transition::Readmitted);
        assert!(m.is_routable());
    }

    #[test]
    fn a_probation_failure_goes_straight_back_down() {
        let policy = policy();
        let mut m = HealthMachine::new();
        for _ in 0..3 {
            m.on_failure(&policy);
        }
        m.enter_probation();
        m.on_success(&policy);
        assert_eq!(m.on_failure(&policy), Transition::None);
        assert_eq!(m.state(), HealthState::Down);
        // Progress was wiped: readmission needs the full streak again.
        m.enter_probation();
        assert_eq!(m.on_success(&policy), Transition::None);
        assert_eq!(m.on_success(&policy), Transition::Readmitted);
    }

    #[test]
    fn enter_probation_is_a_noop_unless_down() {
        let policy = policy();
        let mut m = HealthMachine::new();
        assert_eq!(m.enter_probation(), Transition::None);
        assert_eq!(m.state(), HealthState::Up);
        m.on_failure(&policy);
        assert_eq!(m.enter_probation(), Transition::None);
        assert_eq!(m.state(), HealthState::Up);
    }

    #[test]
    fn reset_up_clears_everything() {
        let policy = policy();
        let mut m = HealthMachine::new();
        for _ in 0..3 {
            m.on_failure(&policy);
        }
        m.reset_up();
        assert!(m.is_routable());
        assert_eq!(m.consecutive_failures(), 0);
    }
}
