//! Deterministic fault injection: a frame-aware TCP proxy that sits
//! between the router and a backend (or a client and the router) and
//! misbehaves on command.
//!
//! The proxy understands the wire framing (4-byte little-endian length
//! prefix), so faults land on exact frame boundaries — "kill the
//! connection when the 3rd request arrives" or "corrupt the 2nd response"
//! is reproducible to the byte, with no races on TCP segmentation.  Each
//! accepted connection gets its own copy of the [`FaultPlan`] with fresh
//! counters, and the shared [`FaultProxy::set_offline`] toggle simulates a
//! whole member dying and later coming back **on the same address** —
//! which real restarts can't do reliably in tests (`TIME_WAIT`, rebind
//! races).
//!
//! This lives in the library (not `#[cfg(test)]`) so the integration
//! suites and the failover benchmark drive the same machinery.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What one proxied connection does to the traffic passing through it.
/// All counters are 1-based frame ordinals; `None` disables that fault.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Abruptly close both sides when the k-th *request* frame arrives
    /// (the request is never forwarded) — the mid-workload kill.
    pub kill_at_request: Option<u64>,
    /// After k *request* frames have been forwarded, swallow every
    /// response: the backend still executes, the caller sees silence (a
    /// read-timeout test, not a connection-closed test).
    pub black_hole_after: Option<u64>,
    /// Hold every *response* frame for this long before forwarding —
    /// injected latency for deadline and slow-member tests.
    pub delay_ms: u64,
    /// Replace the k-th *response* frame's body with garbage bytes of the
    /// same length (the length prefix stays honest, the payload does not
    /// decode).
    pub garbage_response_at: Option<u64>,
    /// Forward only the first half of the k-th *response* frame, then
    /// close both sides abruptly — the torn-frame mid-reply death.
    pub reset_mid_frame_at: Option<u64>,
}

/// A running fault proxy: listens on an ephemeral local port and forwards
/// every connection to `upstream` under the configured [`FaultPlan`].
pub struct FaultProxy {
    addr: SocketAddr,
    offline: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Spawns the proxy.  `plan` applies to every accepted connection
    /// (each with fresh frame counters).
    ///
    /// # Errors
    /// Propagates socket errors from binding the listener.
    pub fn spawn(upstream: SocketAddr, plan: FaultPlan) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let offline = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let offline = Arc::clone(&offline);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(&listener, upstream, &plan, &offline, &stop))
        };
        Ok(FaultProxy {
            addr,
            offline,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients (or the router) should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Simulates the member behind this proxy dying (`true`) or coming
    /// back (`false`): while offline, existing connections are torn down
    /// and new ones are accepted-and-dropped, all on the same stable
    /// address.
    pub fn set_offline(&self, offline: bool) {
        self.offline.store(offline, Ordering::Release);
    }

    /// Stops the proxy and joins its threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    plan: &FaultPlan,
    offline: &Arc<AtomicBool>,
    stop: &Arc<AtomicBool>,
) {
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((client, _)) => {
                if offline.load(Ordering::Acquire) {
                    // A dead member's port answers with an immediate close.
                    drop(client);
                    continue;
                }
                let plan = plan.clone();
                let offline = Arc::clone(offline);
                let stop = Arc::clone(stop);
                conn_threads.push(std::thread::spawn(move || {
                    let _ = proxy_conn(client, upstream, &plan, &offline, &stop);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
        conn_threads.retain(|t| !t.is_finished());
    }
    for t in conn_threads {
        let _ = t.join();
    }
}

/// Forwards one client connection through the plan: requests on this
/// thread, responses on a second.
fn proxy_conn(
    client: TcpStream,
    upstream: SocketAddr,
    plan: &FaultPlan,
    offline: &Arc<AtomicBool>,
    stop: &Arc<AtomicBool>,
) -> io::Result<()> {
    let server = TcpStream::connect_timeout(&upstream, Duration::from_secs(5))?;
    client.set_read_timeout(Some(Duration::from_millis(20)))?;
    server.set_read_timeout(Some(Duration::from_millis(20)))?;
    client.set_nodelay(true)?;
    server.set_nodelay(true)?;

    let response_thread = {
        let server = server.try_clone()?;
        let client = client.try_clone()?;
        let plan = plan.clone();
        let offline = Arc::clone(offline);
        let stop = Arc::clone(stop);
        std::thread::spawn(move || {
            let _ = forward_responses(server, client, &plan, &offline, &stop);
        })
    };

    let result = forward_requests(&client, &server, plan, offline, stop);
    // Either direction ending ends the connection: closing both sockets
    // unblocks the peer thread's reads.
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
    let _ = response_thread.join();
    result
}

fn forward_requests(
    client: &TcpStream,
    server: &TcpStream,
    plan: &FaultPlan,
    offline: &Arc<AtomicBool>,
    stop: &Arc<AtomicBool>,
) -> io::Result<()> {
    let mut reader = FrameReader::new(client.try_clone()?);
    let mut server_w = server.try_clone()?;
    let mut requests_seen = 0u64;
    loop {
        let frame = match reader.next_frame(offline, stop) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return Ok(()),
        };
        requests_seen += 1;
        if plan.kill_at_request == Some(requests_seen) {
            // Abrupt close with the request unforwarded: the caller's
            // in-flight batch dies mid-air.
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
            return Ok(());
        }
        server_w.write_all(&frame)?;
        server_w.flush()?;
    }
}

fn forward_responses(
    server: TcpStream,
    client: TcpStream,
    plan: &FaultPlan,
    offline: &Arc<AtomicBool>,
    stop: &Arc<AtomicBool>,
) -> io::Result<()> {
    let mut reader = FrameReader::new(server.try_clone()?);
    let mut client_w = client.try_clone()?;
    let mut responses_seen = 0u64;
    let mut black_holed = false;
    // Requests forwarded is tracked on the other thread; the black-hole
    // trigger counts *responses* here, which for this FIFO protocol is the
    // same ordinal stream.
    loop {
        let mut frame = match reader.next_frame(offline, stop) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return Ok(()),
        };
        responses_seen += 1;
        if plan.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(plan.delay_ms));
        }
        if let Some(k) = plan.black_hole_after {
            if responses_seen > k {
                black_holed = true;
            }
        }
        if black_holed {
            // Swallow silently; keep draining upstream so it never blocks.
            continue;
        }
        if plan.garbage_response_at == Some(responses_seen) && frame.len() > 4 {
            // Keep the honest length prefix; trash the payload with a tag
            // no decoder accepts.
            for byte in &mut frame[4..] {
                *byte = 0x7f;
            }
        }
        if plan.reset_mid_frame_at == Some(responses_seen) {
            let half = 4 + (frame.len() - 4) / 2;
            let _ = client_w.write_all(&frame[..half]);
            let _ = client_w.flush();
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
            return Ok(());
        }
        client_w.write_all(&frame)?;
        client_w.flush()?;
    }
}

/// Accumulating frame reader over a timeout socket: returns complete
/// frames (length prefix included), checking the offline/stop flags
/// between reads so a toggled proxy reacts within one timeout tick.
struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
    pos: usize,
}

impl FrameReader {
    fn new(stream: TcpStream) -> FrameReader {
        FrameReader {
            stream,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// `Ok(None)` = clean end (EOF, offline toggle, or stop).
    fn next_frame(
        &mut self,
        offline: &Arc<AtomicBool>,
        stop: &Arc<AtomicBool>,
    ) -> io::Result<Option<Vec<u8>>> {
        let mut scratch = [0u8; 16 << 10];
        loop {
            if let Some(frame) = self.take_buffered() {
                return Ok(Some(frame));
            }
            if offline.load(Ordering::Acquire) || stop.load(Ordering::Acquire) {
                let _ = self.stream.shutdown(Shutdown::Both);
                return Ok(None);
            }
            match self.stream.read(&mut scratch) {
                Ok(0) => return Ok(None),
                Ok(n) => self.buf.extend_from_slice(&scratch[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn take_buffered(&mut self) -> Option<Vec<u8>> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return None;
        }
        let len_bytes: [u8; 4] = self.buf[self.pos..self.pos + 4].try_into().ok()?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        if avail < 4 + len {
            return None;
        }
        let frame = self.buf[self.pos..self.pos + 4 + len].to_vec();
        self.pos += 4 + len;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Some(frame)
    }
}
