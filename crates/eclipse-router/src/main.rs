//! The `eclipse-router` binary: a fault-tolerant shard router fronting N
//! `eclipse-serve` backends behind the ordinary client wire protocol.
//!
//! ```text
//! eclipse-router --backend HOST:PORT [--backend HOST:PORT]...
//!                [--addr HOST:PORT] [--standby HOST:PORT]...
//!                [--replicated NAME]... [--pipe-size N]
//!                [--connect-timeout-ms N] [--io-timeout-ms N]
//!                [--check-interval-ms N] [--check-timeout-ms N]
//!                [--fail-threshold N] [--probation-successes N]
//!                [--max-attempts N]
//! ```
//!
//! * `--backend` — one shard slot per flag, in placement order (repeatable,
//!   at least one required).  Slot order is the hash placement domain:
//!   keep it stable across restarts;
//! * `--addr` — client-facing listen address, default `127.0.0.1:7979`
//!   (port 0 for ephemeral; the bound address is printed on startup);
//! * `--standby` — a warm spare sharing the snapshot directory; promoted
//!   (with a snapshot re-warm) into the slot of whichever member dies
//!   first.  Repeatable;
//! * `--replicated` — a dataset name served by *every* member with
//!   probe-space partitioning instead of single-owner hash placement.
//!   Repeatable;
//! * the remaining flags override [`RouterConfig`] / [`HealthPolicy`] /
//!   [`RetryPolicy`] defaults one knob at a time.

use std::process::ExitCode;
use std::time::Duration;

use eclipse_router::router::{Router, RouterConfig};

struct Options {
    addr: String,
    config: RouterConfig,
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let backends = opts.config.backends.len();
    let standbys = opts.config.standbys.len();
    let router = match Router::bind(&opts.addr, opts.config) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("eclipse-router: cannot bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    match router.local_addr() {
        Ok(addr) => eprintln!(
            "eclipse-router: listening on {addr} ({backends} backends, {standbys} standbys)"
        ),
        Err(e) => eprintln!("eclipse-router: listening (address unavailable: {e})"),
    }
    let handle = match router.spawn() {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("eclipse-router: cannot start serving loops: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The accept and health loops run on background threads; the main
    // thread just keeps the process alive (and reports failovers and
    // standbys dropped as non-viable).
    let mut reported = 0usize;
    let mut standby_pool = handle.standbys();
    loop {
        std::thread::sleep(Duration::from_millis(500));
        let failovers = handle.failovers();
        for event in &failovers[reported..] {
            eprintln!(
                "eclipse-router: slot {} failed over {} -> {} \
                 (re-warm {} ms, {} datasets restored, {} snapshots skipped)",
                event.slot,
                event.from_addr,
                event.to_addr,
                event.rewarm_ms,
                event.datasets_restored,
                event.snapshots_skipped
            );
        }
        let promoted: Vec<&str> = failovers[reported..]
            .iter()
            .map(|e| e.to_addr.as_str())
            .collect();
        reported = failovers.len();
        let remaining = handle.standbys();
        for gone in standby_pool
            .iter()
            .filter(|a| !remaining.contains(a) && !promoted.contains(&a.as_str()))
        {
            eprintln!(
                "eclipse-router: standby {gone} dropped as non-viable \
                 (unreachable, or its snapshot re-warm failed)"
            );
        }
        standby_pool = remaining;
    }
}

fn parse_args() -> Result<Options, String> {
    let mut addr = "127.0.0.1:7979".to_string();
    let mut config = RouterConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                addr = args.next().ok_or("--addr needs a HOST:PORT value")?;
            }
            "--backend" => {
                config
                    .backends
                    .push(args.next().ok_or("--backend needs a HOST:PORT value")?);
            }
            "--standby" => {
                config
                    .standbys
                    .push(args.next().ok_or("--standby needs a HOST:PORT value")?);
            }
            "--replicated" => {
                config
                    .replicated
                    .push(args.next().ok_or("--replicated needs a dataset name")?);
            }
            "--pipe-size" => {
                config.pipe_size = positive_u32(&arg, args.next())?;
            }
            "--connect-timeout-ms" => {
                config.connect_timeout = Duration::from_millis(positive_u64(&arg, args.next())?);
            }
            "--io-timeout-ms" => {
                config.io_timeout = Duration::from_millis(positive_u64(&arg, args.next())?);
            }
            "--rewarm-timeout-ms" => {
                config.rewarm_timeout = Duration::from_millis(positive_u64(&arg, args.next())?);
            }
            "--check-interval-ms" => {
                config.health.check_interval =
                    Duration::from_millis(positive_u64(&arg, args.next())?);
            }
            "--check-timeout-ms" => {
                config.health.check_timeout =
                    Duration::from_millis(positive_u64(&arg, args.next())?);
            }
            "--fail-threshold" => {
                config.health.fail_threshold = positive_u32(&arg, args.next())?;
            }
            "--probation-successes" => {
                config.health.probation_successes = positive_u32(&arg, args.next())?;
            }
            "--max-attempts" => {
                config.retry.max_attempts = positive_u32(&arg, args.next())?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: eclipse-router --backend HOST:PORT [--backend HOST:PORT]... \
                     [--addr HOST:PORT] [--standby HOST:PORT]... [--replicated NAME]... \
                     [--pipe-size N] [--connect-timeout-ms N] [--io-timeout-ms N] \
                     [--rewarm-timeout-ms N] [--check-interval-ms N] [--check-timeout-ms N] \
                     [--fail-threshold N] [--probation-successes N] [--max-attempts N]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if config.backends.is_empty() {
        return Err("eclipse-router needs at least one --backend".to_string());
    }
    Ok(Options { addr, config })
}

fn positive_u32(flag: &str, value: Option<String>) -> Result<u32, String> {
    let raw = value.ok_or_else(|| format!("{flag} needs a positive integer"))?;
    let parsed: u32 = raw
        .parse()
        .map_err(|_| format!("{flag}: {raw:?} is not an integer"))?;
    if parsed == 0 {
        return Err(format!("{flag} must be positive"));
    }
    Ok(parsed)
}

fn positive_u64(flag: &str, value: Option<String>) -> Result<u64, String> {
    let raw = value.ok_or_else(|| format!("{flag} needs a positive integer"))?;
    let parsed: u64 = raw
        .parse()
        .map_err(|_| format!("{flag}: {raw:?} is not an integer"))?;
    if parsed == 0 {
        return Err(format!("{flag} must be positive"));
    }
    Ok(parsed)
}
