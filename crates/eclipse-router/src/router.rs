//! The shard router: speaks the eclipse-serve wire protocol to clients
//! (v1 and `Hello`-negotiated v2), partitions datasets across N backend
//! eclipse-serve processes, scatters probe batches over pipelined
//! connections, and merges replies in probe order.
//!
//! # Placement
//!
//! * **Hashed** (default): a dataset lives on exactly one member, chosen
//!   by `fnv1a(name) % members` — the slot is stable across address swaps,
//!   so a standby promoted into a slot inherits its datasets (from shared
//!   snapshots) without any remapping.
//! * **Replicated** ([`RouterConfig::replicated`] names): every member
//!   holds the full dataset, and a probe batch is *probe-space
//!   partitioned* — contiguous chunks of the batch scatter across all
//!   routable members in parallel and merge back in probe order.  Any
//!   chunk can be retried on any other member.
//!
//! # Robustness
//!
//! * an active health loop pings every member on a cadence
//!   ([`HealthPolicy`]), with consecutive-failure thresholds and half-open
//!   probation before a recovered member takes traffic again;
//! * per-request retries use capped exponential backoff with
//!   deterministic jitter, are **idempotent-only**, and draw from a global
//!   [`RetryBudget`] so retries cannot amplify an overload;
//! * when a member dies and a standby is configured, the router re-warms
//!   the standby from the shared snapshot directory (`LoadSnapshots`) and
//!   promotes it into the dead member's slot, recording a timed
//!   [`FailoverEvent`];
//! * clients that opt in with `AllowPartial` get typed
//!   [`Response::PartialResults`]/[`Response::PartialCounts`] — per-box
//!   `None` for shards that are down — instead of hard errors.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use eclipse_persist::fnv1a;
use eclipse_serve::client::{Client, ClientError, PipelinedClient};
use eclipse_serve::protocol::{
    write_frame, FrameHeader, Request, Response, StatsReport, MAX_FRAME_LEN, MAX_PROTOCOL_VERSION,
    PROTOCOL_V2,
};

use crate::health::{HealthMachine, HealthPolicy, HealthState, Transition};
use crate::retry::{is_idempotent, RetryBudget, RetryPolicy};

/// Everything the router needs to know at bind time.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Backend `host:port` addresses, one per shard slot.  Slot order is
    /// the placement function's domain — keep it stable across restarts.
    pub backends: Vec<String>,
    /// Standby backends: idle processes (sharing the snapshot directory)
    /// that get re-warmed and promoted into a dead member's slot.
    pub standbys: Vec<String>,
    /// Dataset names served by **every** member with probe-space
    /// partitioning, instead of hash placement on one member.
    pub replicated: Vec<String>,
    /// Pipeline depth of each backend connection.
    pub pipe_size: u32,
    /// TCP connect budget per backend dial.
    pub connect_timeout: Duration,
    /// Socket read/write budget per backend operation.
    pub io_timeout: Duration,
    /// Socket budget for a failover re-warm (`LoadSnapshots` decodes whole
    /// indexes — give it more room than a probe).
    pub rewarm_timeout: Duration,
    /// Health-check thresholds and cadence.
    pub health: HealthPolicy,
    /// Retry/backoff/budget policy.
    pub retry: RetryPolicy,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            backends: Vec::new(),
            standbys: Vec::new(),
            replicated: Vec::new(),
            pipe_size: 32,
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(2),
            rewarm_timeout: Duration::from_secs(30),
            health: HealthPolicy::default(),
            retry: RetryPolicy::default(),
        }
    }
}

impl RouterConfig {
    /// A config routing to `backends` with every other knob at default.
    pub fn new<S: Into<String>>(backends: impl IntoIterator<Item = S>) -> RouterConfig {
        RouterConfig {
            backends: backends.into_iter().map(Into::into).collect(),
            ..RouterConfig::default()
        }
    }
}

/// One completed failover or in-place recovery, with its measured cost.
#[derive(Clone, Debug)]
pub struct FailoverEvent {
    /// The shard slot that was recovered.
    pub slot: usize,
    /// Address the slot pointed at when it died.
    pub from_addr: String,
    /// Address serving the slot now (equal to `from_addr` for an in-place
    /// recovery of a restarted backend).
    pub to_addr: String,
    /// End-to-end re-warm time: connect + ping + `LoadSnapshots` until the
    /// member was routable again, in milliseconds.
    pub rewarm_ms: u64,
    /// Datasets the re-warm restored from snapshots.
    pub datasets_restored: usize,
    /// Snapshot files the re-warm skipped as corrupt/stale.
    pub snapshots_skipped: usize,
}

/// One shard slot: a stable placement target whose *address* may change
/// when a standby is promoted into it.
struct Member {
    addr: Mutex<String>,
    /// Bumped on every address swap; serving threads drop cached
    /// connections whose epoch is stale.
    epoch: AtomicU64,
    health: Mutex<HealthMachine>,
}

impl Member {
    fn new(addr: String) -> Member {
        Member {
            addr: Mutex::new(addr),
            epoch: AtomicU64::new(0),
            health: Mutex::new(HealthMachine::new()),
        }
    }

    fn addr(&self) -> String {
        self.addr.lock().expect("member addr poisoned").clone()
    }

    fn state(&self) -> HealthState {
        self.health.lock().expect("member health poisoned").state()
    }
}

/// State shared by the accept loop, serving threads, and the health loop.
struct Shared {
    config: RouterConfig,
    members: Vec<Member>,
    standbys: Mutex<Vec<String>>,
    budget: RetryBudget,
    failovers: Mutex<Vec<FailoverEvent>>,
    /// Monotone counter seeding retry jitter deterministically.
    retry_seq: AtomicU64,
    stop: AtomicBool,
}

impl Shared {
    fn replicated(&self, name: &str) -> bool {
        self.config.replicated.iter().any(|r| r == name)
    }

    fn owner_slot(&self, name: &str) -> usize {
        (fnv1a(name.as_bytes()) % self.members.len() as u64) as usize
    }

    fn routable_slots(&self) -> Vec<usize> {
        (0..self.members.len())
            .filter(|&slot| {
                self.members[slot]
                    .health
                    .lock()
                    .expect("member health poisoned")
                    .is_routable()
            })
            .collect()
    }

    /// Slots a dataset's non-probe operations fan out to.
    fn placement_slots(&self, name: &str) -> Vec<usize> {
        if self.replicated(name) {
            self.routable_slots()
        } else {
            vec![self.owner_slot(name)]
        }
    }

    fn note_success(&self, slot: usize) {
        self.members[slot]
            .health
            .lock()
            .expect("member health poisoned")
            .on_success(&self.config.health);
    }

    fn note_failure(&self, slot: usize) {
        // A passive WentDown is acted on by the health loop's next tick
        // (promotion/recovery); the serving path only records it.
        self.members[slot]
            .health
            .lock()
            .expect("member health poisoned")
            .on_failure(&self.config.health);
    }
}

/// A bound (but not yet serving) router.
pub struct Router {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Router {
    /// Binds the client-facing listener.  Backends are *not* dialed here —
    /// the health loop and the first routed request establish connections,
    /// so a router can come up before its backends.
    ///
    /// # Errors
    /// `InvalidInput` when `config.backends` is empty; socket errors.
    pub fn bind(addr: impl ToSocketAddrs, config: RouterConfig) -> io::Result<Router> {
        if config.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let members = config.backends.iter().cloned().map(Member::new).collect();
        let standbys = Mutex::new(config.standbys.clone());
        let budget = RetryBudget::new(&config.retry);
        Ok(Router {
            listener,
            shared: Arc::new(Shared {
                config,
                members,
                standbys,
                budget,
                failovers: Mutex::new(Vec::new()),
                retry_seq: AtomicU64::new(0),
                stop: AtomicBool::new(false),
            }),
        })
    }

    /// The client-facing address.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the accept loop and the health loop on background threads.
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn spawn(self) -> io::Result<RouterHandle> {
        let addr = self.listener.local_addr()?;
        self.listener.set_nonblocking(true)?;
        let accept_thread = {
            let shared = Arc::clone(&self.shared);
            let listener = self.listener;
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let health_thread = {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || health_loop(&shared))
        };
        Ok(RouterHandle {
            addr,
            shared: self.shared,
            accept_thread: Some(accept_thread),
            health_thread: Some(health_thread),
        })
    }
}

/// A running router; dropping it (or calling [`RouterHandle::shutdown`])
/// stops both loops and joins every serving thread.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    health_thread: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The client-facing address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current `(address, health)` per shard slot — observability for
    /// operators and the deflake-free test harness.
    pub fn member_states(&self) -> Vec<(String, HealthState)> {
        self.shared
            .members
            .iter()
            .map(|m| (m.addr(), m.state()))
            .collect()
    }

    /// Every failover/recovery the router has completed, oldest first.
    pub fn failovers(&self) -> Vec<FailoverEvent> {
        self.shared
            .failovers
            .lock()
            .expect("failover log poisoned")
            .clone()
    }

    /// The standby addresses not yet promoted or discarded.  A pool that
    /// shrinks without a matching [`FailoverEvent`] means a standby was
    /// found non-viable (unreachable, or its re-warm failed) and dropped.
    pub fn standbys(&self) -> Vec<String> {
        self.shared
            .standbys
            .lock()
            .expect("standby list poisoned")
            .clone()
    }

    /// Whole retry tokens currently in the budget.
    pub fn retry_budget_available(&self) -> u64 {
        self.shared.budget.available()
    }

    /// Stops accepting, tears down serving threads, and joins the loops.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.health_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

// ---------------------------------------------------------------------------
// Accept + per-client serving
// ---------------------------------------------------------------------------

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut serving: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                serving.push(std::thread::spawn(move || serve_client(&shared, stream)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
        serving.retain(|t| !t.is_finished());
    }
    for t in serving {
        let _ = t.join();
    }
}

/// Client-facing framing, mirroring the server: the first frame decides
/// (v1, or `Hello`-negotiated v2).  Requests are processed strictly in
/// order; the parallelism lives in the scatter across backends.
fn serve_client(shared: &Arc<Shared>, stream: TcpStream) {
    if stream.set_nodelay(true).is_err() {
        return;
    }
    // Short read timeout so the thread notices shutdown promptly; the
    // accumulating reader makes timeouts between bytes harmless.
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => io::BufWriter::new(w),
        Err(_) => return,
    };
    let mut reader = ClientFrames::new(stream);
    let mut conns = BackendConns::default();
    let mut v2 = false;
    let mut fresh = true;
    let mut allow_partial = false;
    loop {
        let payload = match reader.next_frame(&shared.stop) {
            Ok(Some(payload)) => payload,
            Ok(None) | Err(_) => return,
        };
        let read_at = Instant::now();
        let (request_id, deadline_ms, body) = if v2 {
            match FrameHeader::split(&payload) {
                Ok((header, body)) => (header.request_id, header.deadline_ms, body),
                Err(_) => return,
            }
        } else {
            (0, 0, &payload[..])
        };
        let decoded = Request::decode(body);
        // First frame: a Hello negotiates v2, anything else locks v1.
        if fresh {
            fresh = false;
            if let Ok(Request::Hello {
                max_version,
                pipe_size,
            }) = &decoded
            {
                let version = (*max_version).clamp(1, MAX_PROTOCOL_VERSION);
                v2 = version >= PROTOCOL_V2;
                let ack = Response::HelloAck {
                    version,
                    pipe_size: (*pipe_size).clamp(1, 128),
                    max_frame_len: MAX_FRAME_LEN,
                };
                if write_frame(&mut writer, &ack.encode())
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
                continue;
            }
        }
        let response = match decoded {
            Err(e) => Response::Error(format!("malformed request: {e}")),
            Ok(Request::Hello { .. }) => {
                Response::Error("Hello must be the first frame of a connection".to_string())
            }
            Ok(request) => {
                let expired = deadline_ms > 0
                    && read_at.elapsed() >= Duration::from_millis(u64::from(deadline_ms));
                if expired {
                    Response::Timeout { deadline_ms }
                } else {
                    handle_request(shared, &mut conns, &mut allow_partial, request)
                }
            }
        };
        let wire = if v2 {
            FrameHeader {
                request_id,
                deadline_ms: 0,
            }
            .with_body(&response.encode())
        } else {
            response.encode()
        };
        if write_frame(&mut writer, &wire)
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

/// Accumulating frame reader for the client-facing socket: timeouts
/// between reads are polling ticks (stop-flag checks), not errors, and a
/// frame split across reads is reassembled.
struct ClientFrames {
    stream: TcpStream,
    buf: Vec<u8>,
    pos: usize,
}

impl ClientFrames {
    fn new(stream: TcpStream) -> ClientFrames {
        ClientFrames {
            stream,
            buf: Vec::new(),
            pos: 0,
        }
    }

    fn next_frame(&mut self, stop: &AtomicBool) -> io::Result<Option<Vec<u8>>> {
        let mut scratch = [0u8; 16 << 10];
        loop {
            if let Some(frame) = self.take_buffered()? {
                return Ok(Some(frame));
            }
            if stop.load(Ordering::Acquire) {
                return Ok(None);
            }
            match self.stream.read(&mut scratch) {
                Ok(0) => return Ok(None),
                Ok(n) => self.buf.extend_from_slice(&scratch[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn take_buffered(&mut self) -> io::Result<Option<Vec<u8>>> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return Ok(None);
        }
        let len_bytes: [u8; 4] = self.buf[self.pos..self.pos + 4]
            .try_into()
            .expect("4-byte slice");
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame exceeds cap",
            ));
        }
        let len = len as usize;
        if avail < 4 + len {
            return Ok(None);
        }
        let start = self.pos + 4;
        let frame = self.buf[start..start + len].to_vec();
        self.pos = start + len;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(Some(frame))
    }
}

// ---------------------------------------------------------------------------
// Backend connections
// ---------------------------------------------------------------------------

/// Per-serving-thread cache of pipelined backend connections, keyed by
/// slot and validated against the member's epoch (a promoted standby bumps
/// the epoch, so stale connections to the dead address are dropped).
#[derive(Default)]
struct BackendConns {
    map: HashMap<usize, (u64, PipelinedClient)>,
}

impl BackendConns {
    fn get_or_connect(
        &mut self,
        shared: &Shared,
        slot: usize,
    ) -> Result<&mut PipelinedClient, ClientError> {
        let member = &shared.members[slot];
        let epoch = member.epoch.load(Ordering::Acquire);
        if self
            .map
            .get(&slot)
            .is_some_and(|(cached, _)| *cached != epoch)
        {
            self.map.remove(&slot);
        }
        if let std::collections::hash_map::Entry::Vacant(entry) = self.map.entry(slot) {
            let addr = member.addr();
            let mut client = PipelinedClient::connect_timeout(
                addr.as_str(),
                shared.config.pipe_size,
                shared.config.connect_timeout,
            )?;
            client.set_io_timeout(Some(shared.config.io_timeout))?;
            entry.insert((epoch, client));
        }
        Ok(&mut self.map.get_mut(&slot).expect("just inserted").1)
    }

    /// Drops a connection whose transport failed (it may be desynced).
    fn discard(&mut self, slot: usize) {
        self.map.remove(&slot);
    }
}

/// How a backend failure routes.
enum Failure {
    /// The backend executed and answered an error — deterministic; return
    /// it to the client, never retry, no health penalty.
    Deterministic(String),
    /// Typed flow control (`Overloaded`/`Timeout`): the backend is alive;
    /// retryable without a health penalty.
    FlowControl(String),
    /// Transport-level (timeout, closed, garbage): health penalty, the
    /// connection is discarded, retryable.
    Transport(String),
    /// Typed `DatasetUnavailable`: the backend is alive and answered, but
    /// could not restore an evicted dataset from its snapshot. Deterministic
    /// for that member (retrying it cannot help), no health penalty.
    DatasetUnavailable { name: String, reason: String },
}

fn classify(e: &ClientError) -> Failure {
    match e {
        ClientError::Server(m) => Failure::Deterministic(m.clone()),
        ClientError::InvalidRequest(m) => Failure::Deterministic(m.clone()),
        ClientError::UnexpectedResponse(_) => Failure::Deterministic(e.to_string()),
        ClientError::Overloaded { .. } | ClientError::TimedOut { .. } => {
            Failure::FlowControl(e.to_string())
        }
        ClientError::DatasetUnavailable { name, reason } => Failure::DatasetUnavailable {
            name: name.clone(),
            reason: reason.clone(),
        },
        ClientError::SocketTimeout
        | ClientError::ConnectionClosed
        | ClientError::Io(_)
        | ClientError::Protocol(_) => Failure::Transport(e.to_string()),
    }
}

/// Why a routed call gave up.
enum RouteError {
    /// A backend's own (deterministic) error response.
    Deterministic(String),
    /// A backend answered the typed `DatasetUnavailable` response: it is
    /// healthy but cannot restore the named evicted dataset. Re-emitted
    /// typed so clients can distinguish it from a routing failure.
    DatasetUnavailable { name: String, reason: String },
    /// No member could serve it: every candidate down, retries exhausted,
    /// or the retry budget refused.
    Unavailable(String),
}

/// Heavy operations (engine builds, snapshot encodes/decodes) get the
/// generous re-warm budget; probes keep the tight probe budget so a stuck
/// member is detected quickly.
fn is_heavy(request: &Request) -> bool {
    matches!(
        request,
        Request::LoadDataset { .. }
            | Request::BuildIndex { .. }
            | Request::RestoreIndex { .. }
            | Request::SaveIndex { .. }
            | Request::LoadSnapshots
    )
}

/// One attempt against one slot.
fn execute_on(
    shared: &Shared,
    conns: &mut BackendConns,
    slot: usize,
    request: &Request,
) -> Result<Response, ClientError> {
    let heavy = is_heavy(request);
    let conn = conns.get_or_connect(shared, slot)?;
    if heavy {
        conn.set_io_timeout(Some(shared.config.rewarm_timeout))?;
    }
    let result = conn.call(request);
    if heavy {
        let _ = conn.set_io_timeout(Some(shared.config.io_timeout));
    }
    if let Err(e) = &result {
        if matches!(classify(e), Failure::Transport(_)) {
            conns.discard(slot);
        }
    }
    result
}

/// The retry loop: rotates over `candidates`, pays backoff between
/// attempts, spends the budget, and applies the idempotent-only rule.
fn call_with_retry(
    shared: &Shared,
    conns: &mut BackendConns,
    candidates: &[usize],
    request: &Request,
) -> Result<Response, RouteError> {
    shared.budget.deposit();
    if candidates.is_empty() {
        return Err(RouteError::Unavailable(
            "no routable member for this request".to_string(),
        ));
    }
    let idempotent = is_idempotent(request);
    let max_attempts = if idempotent {
        shared.config.retry.max_attempts.max(1)
    } else {
        1
    };
    let seed = shared.retry_seq.fetch_add(1, Ordering::Relaxed);
    let mut last = String::new();
    for attempt in 1..=max_attempts {
        let slot = candidates[(attempt as usize - 1) % candidates.len()];
        match execute_on(shared, conns, slot, request) {
            Ok(response) => {
                shared.note_success(slot);
                return Ok(response);
            }
            Err(e) => match classify(&e) {
                Failure::Deterministic(m) => return Err(RouteError::Deterministic(m)),
                Failure::DatasetUnavailable { name, reason } => {
                    return Err(RouteError::DatasetUnavailable { name, reason })
                }
                Failure::FlowControl(m) => last = m,
                Failure::Transport(m) => {
                    shared.note_failure(slot);
                    last = m;
                }
            },
        }
        if attempt < max_attempts {
            if !shared.budget.try_spend() {
                return Err(RouteError::Unavailable(format!(
                    "retry budget exhausted after: {last}"
                )));
            }
            std::thread::sleep(shared.config.retry.backoff(attempt, seed));
        }
    }
    Err(RouteError::Unavailable(last))
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

fn handle_request(
    shared: &Shared,
    conns: &mut BackendConns,
    allow_partial: &mut bool,
    request: Request,
) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Hello { .. } => unreachable!("handled by the framing layer"),
        Request::AllowPartial { enabled } => {
            *allow_partial = enabled;
            Response::PartialAck { enabled }
        }
        Request::Stats => merged_stats(shared, conns),
        Request::LoadSnapshots => fan_load_snapshots(shared, conns),
        Request::QueryBatch {
            ref name,
            ref boxes,
        } => route_probes(shared, conns, *allow_partial, &request, name, boxes.len()),
        Request::CountBatch {
            ref name,
            ref boxes,
        } => route_probes(shared, conns, *allow_partial, &request, name, boxes.len()),
        // Mutations route exactly like the other placement-scoped dataset
        // operations, but are classified non-idempotent by the retry layer:
        // a transport failure mid-mutation surfaces as a typed error instead
        // of a silent replay that could double-apply.
        Request::LoadDataset { ref name, .. }
        | Request::BuildIndex { ref name, .. }
        | Request::RestoreIndex { ref name, .. }
        | Request::Insert { ref name, .. }
        | Request::Delete { ref name, .. } => {
            let name = name.clone();
            fan_to_placement(shared, conns, &name, &request)
        }
        Request::SaveIndex { ref name, .. } => {
            // One copy in the shared snapshot dir is enough: the owner for
            // hashed placement, any routable member for replicated.
            let slot = if shared.replicated(name) {
                match shared.routable_slots().first().copied() {
                    Some(slot) => slot,
                    None => return Response::Error("no routable member".to_string()),
                }
            } else {
                shared.owner_slot(name)
            };
            match call_with_retry(shared, conns, &[slot], &request) {
                Ok(response) => response,
                Err(RouteError::Deterministic(m)) => Response::Error(m),
                Err(RouteError::DatasetUnavailable { name, reason }) => {
                    Response::DatasetUnavailable { name, reason }
                }
                Err(RouteError::Unavailable(m)) => {
                    Response::Error(format!("shard unavailable: {m}"))
                }
            }
        }
    }
}

/// Non-probe dataset operations fan to every placement slot (owner, or all
/// routable members for replicated datasets); the first summary answers.
///
/// The fan is all-or-typed-error: every slot is attempted even after a
/// failure (aborting mid-loop would leave replicas desynced with the caller
/// none the wiser), and if any member missed the operation the caller gets
/// an error naming exactly which members applied it and which did not.
fn fan_to_placement(
    shared: &Shared,
    conns: &mut BackendConns,
    name: &str,
    request: &Request,
) -> Response {
    let slots = shared.placement_slots(name);
    if slots.is_empty() {
        return Response::Error("no routable member".to_string());
    }
    let total = slots.len();
    let mut first: Option<Response> = None;
    let mut failures: Vec<(usize, RouteError)> = Vec::new();
    for slot in slots {
        match call_with_retry(shared, conns, &[slot], request) {
            Ok(response) => {
                first.get_or_insert(response);
            }
            Err(e) => failures.push((slot, e)),
        }
    }
    if failures.is_empty() {
        return first.expect("at least one slot answered");
    }
    // Single-member placement: nothing was partially applied, so the lone
    // failure passes through with its original shape (typed stays typed).
    if total == 1 {
        return match failures.remove(0) {
            (_, RouteError::Deterministic(m)) => Response::Error(m),
            (_, RouteError::DatasetUnavailable { name, reason }) => {
                Response::DatasetUnavailable { name, reason }
            }
            (slot, RouteError::Unavailable(m)) => {
                Response::Error(format!("shard {slot} unavailable: {m}"))
            }
        };
    }
    let applied = total - failures.len();
    let detail: Vec<String> = failures
        .iter()
        .map(|(slot, e)| match e {
            RouteError::Deterministic(m) => format!("shard {slot}: {m}"),
            RouteError::DatasetUnavailable { reason, .. } => {
                format!("shard {slot}: dataset unavailable: {reason}")
            }
            RouteError::Unavailable(m) => format!("shard {slot}: unavailable: {m}"),
        })
        .collect();
    Response::Error(format!(
        "replicated operation on {name:?} applied to {applied}/{total} members; \
         failed: {}",
        detail.join("; ")
    ))
}

/// `LoadSnapshots` fans to every routable member and merges the scans.
fn fan_load_snapshots(shared: &Shared, conns: &mut BackendConns) -> Response {
    let slots = shared.routable_slots();
    if slots.is_empty() {
        return Response::Error("no routable member".to_string());
    }
    let mut restored = Vec::new();
    let mut skipped = Vec::new();
    for slot in slots {
        match call_with_retry(shared, conns, &[slot], &Request::LoadSnapshots) {
            Ok(Response::SnapshotsLoaded {
                restored: r,
                skipped: s,
            }) => {
                for entry in r {
                    if !restored.iter().any(|(n, _)| *n == entry.0) {
                        restored.push(entry);
                    }
                }
                for entry in s {
                    if !skipped.iter().any(|(p, _)| *p == entry.0) {
                        skipped.push(entry);
                    }
                }
            }
            Ok(_) => return Response::Error("unexpected response to LoadSnapshots".to_string()),
            Err(RouteError::Deterministic(m)) => return Response::Error(m),
            Err(RouteError::DatasetUnavailable { name, reason }) => {
                return Response::DatasetUnavailable { name, reason }
            }
            Err(RouteError::Unavailable(m)) => {
                return Response::Error(format!("shard unavailable: {m}"))
            }
        }
    }
    Response::SnapshotsLoaded { restored, skipped }
}

/// `Stats` merges every reachable member's report (members that cannot
/// answer are skipped — stats are observability, not correctness).
fn merged_stats(shared: &Shared, conns: &mut BackendConns) -> Response {
    let mut merged = StatsReport {
        query_batches: 0,
        count_batches: 0,
        probes: 0,
        errors: 0,
        in_flight: 0,
        timeouts: 0,
        rejected: 0,
        conn_queue_depths: Vec::new(),
        total_bytes: 0,
        memory_budget: 0,
        evictions: 0,
        reloads: 0,
        datasets: Vec::new(),
    };
    for slot in shared.routable_slots() {
        if let Ok(Response::Stats(report)) =
            call_with_retry(shared, conns, &[slot], &Request::Stats)
        {
            merged.query_batches += report.query_batches;
            merged.count_batches += report.count_batches;
            merged.probes += report.probes;
            merged.errors += report.errors;
            merged.in_flight += report.in_flight;
            merged.timeouts += report.timeouts;
            merged.rejected += report.rejected;
            merged.conn_queue_depths.extend(report.conn_queue_depths);
            merged.total_bytes += report.total_bytes;
            merged.memory_budget += report.memory_budget;
            merged.evictions += report.evictions;
            merged.reloads += report.reloads;
            for dataset in report.datasets {
                match merged.datasets.iter_mut().find(|d| d.name == dataset.name) {
                    None => merged.datasets.push(dataset),
                    // Replicated datasets report once per member: one row
                    // per name, the highest-epoch member authoritative for
                    // the engine shape, capacity and residency aggregated
                    // across members.
                    Some(existing) => {
                        if dataset.epoch > existing.epoch {
                            existing.epoch = dataset.epoch;
                            existing.points = dataset.points;
                            existing.dim = dataset.dim;
                            existing.skyline_len = dataset.skyline_len;
                            existing.intersections = dataset.intersections;
                            existing.root_crossings = dataset.root_crossings;
                        }
                        existing.bytes += dataset.bytes;
                        existing.quad_built |= dataset.quad_built;
                        existing.cutting_built |= dataset.cutting_built;
                        existing.resident |= dataset.resident;
                    }
                }
            }
        }
    }
    merged.datasets.sort_by(|a, b| a.name.cmp(&b.name));
    Response::Stats(merged)
}

/// Rows of one scattered chunk, polymorphic over query/count batches.
enum ChunkRows {
    Query(Vec<Vec<u64>>),
    Counts(Vec<u64>),
}

fn response_rows(response: Response, expected: usize) -> Result<ChunkRows, String> {
    match response {
        Response::QueryResults(rows) if rows.len() == expected => Ok(ChunkRows::Query(rows)),
        Response::Counts(counts) if counts.len() == expected => Ok(ChunkRows::Counts(counts)),
        Response::QueryResults(rows) => Err(format!(
            "backend answered {} rows for {expected} probes",
            rows.len()
        )),
        Response::Counts(counts) => Err(format!(
            "backend answered {} counts for {expected} probes",
            counts.len()
        )),
        _ => Err("unexpected response to a probe batch".to_string()),
    }
}

/// Probe routing: hashed datasets go whole-batch to their owner;
/// replicated datasets are probe-space partitioned across every routable
/// member, scattered in parallel over the pipelined connections, retried
/// per chunk, and merged in probe order.
fn route_probes(
    shared: &Shared,
    conns: &mut BackendConns,
    allow_partial: bool,
    request: &Request,
    name: &str,
    n_boxes: usize,
) -> Response {
    let (is_query, boxes) = match request {
        Request::QueryBatch { boxes, .. } => (true, boxes),
        Request::CountBatch { boxes, .. } => (false, boxes),
        _ => unreachable!("route_probes only sees probe batches"),
    };
    if !shared.replicated(name) {
        let owner = shared.owner_slot(name);
        let candidates: Vec<usize> = if shared.members[owner]
            .health
            .lock()
            .expect("member health poisoned")
            .is_routable()
        {
            vec![owner]
        } else {
            Vec::new()
        };
        return match call_with_retry(shared, conns, &candidates, request) {
            Ok(response) => response,
            Err(RouteError::Deterministic(m)) => Response::Error(m),
            Err(RouteError::DatasetUnavailable { name, reason }) => {
                Response::DatasetUnavailable { name, reason }
            }
            Err(RouteError::Unavailable(m)) => {
                degraded_or_error(allow_partial, is_query, n_boxes, &m)
            }
        };
    }

    // Replicated: contiguous probe-space chunks, one per routable member.
    let slots = shared.routable_slots();
    if slots.is_empty() {
        return degraded_or_error(allow_partial, is_query, n_boxes, "no routable member");
    }
    let k = slots.len().min(n_boxes.max(1));
    let base = n_boxes / k;
    let rem = n_boxes % k;
    let mut chunks: Vec<(usize, std::ops::Range<usize>)> = Vec::with_capacity(k);
    let mut start = 0usize;
    for (i, &slot) in slots.iter().take(k).enumerate() {
        let len = base + usize::from(i < rem);
        chunks.push((slot, start..start + len));
        start += len;
    }

    let sub_request = |range: &std::ops::Range<usize>| -> Request {
        let chunk_boxes = boxes[range.clone()].to_vec();
        if is_query {
            Request::QueryBatch {
                name: name.to_string(),
                boxes: chunk_boxes,
            }
        } else {
            Request::CountBatch {
                name: name.to_string(),
                boxes: chunk_boxes,
            }
        }
    };

    // Phase 1 — optimistic scatter: submit every chunk on its member's
    // pipelined connection, flush, then collect.
    let mut submitted: Vec<Option<u64>> = vec![None; chunks.len()];
    for (i, (slot, range)) in chunks.iter().enumerate() {
        if range.is_empty() {
            continue;
        }
        let request = sub_request(range);
        if let Ok(conn) = conns.get_or_connect(shared, *slot) {
            if let Ok(id) = conn.submit(&request) {
                submitted[i] = Some(id);
                continue;
            }
        }
        shared.note_failure(*slot);
        conns.discard(*slot);
    }
    for (slot, _) in &chunks {
        if let Some((_, conn)) = conns.map.get_mut(slot) {
            if conn.flush().is_err() {
                conns.discard(*slot);
            }
        }
    }
    let mut rows: Vec<Option<ChunkRows>> = Vec::with_capacity(chunks.len());
    for (i, (slot, range)) in chunks.iter().enumerate() {
        if range.is_empty() {
            rows.push(Some(if is_query {
                ChunkRows::Query(Vec::new())
            } else {
                ChunkRows::Counts(Vec::new())
            }));
            continue;
        }
        let received = submitted[i].and_then(|id| {
            let (_, conn) = conns.map.get_mut(slot)?;
            match conn.recv(id) {
                Ok(response) => Some(Ok(response)),
                Err(e) => Some(Err(e)),
            }
        });
        match received {
            Some(Ok(response)) => match response_rows(response, range.len()) {
                Ok(chunk_rows) => {
                    shared.note_success(*slot);
                    rows.push(Some(chunk_rows));
                }
                Err(m) => return Response::Error(m),
            },
            Some(Err(e)) => match classify(&e) {
                Failure::Deterministic(m) => return Response::Error(m),
                Failure::DatasetUnavailable { name, reason } => {
                    return Response::DatasetUnavailable { name, reason }
                }
                Failure::FlowControl(_) => rows.push(None),
                Failure::Transport(_) => {
                    shared.note_failure(*slot);
                    conns.discard(*slot);
                    rows.push(None);
                }
            },
            None => rows.push(None),
        }
    }

    // Phase 2 — per-chunk retry on whoever is still standing.
    for (i, (_, range)) in chunks.iter().enumerate() {
        if rows[i].is_some() {
            continue;
        }
        let request = sub_request(range);
        let candidates = shared.routable_slots();
        match call_with_retry(shared, conns, &candidates, &request) {
            Ok(response) => match response_rows(response, range.len()) {
                Ok(chunk_rows) => rows[i] = Some(chunk_rows),
                Err(m) => return Response::Error(m),
            },
            Err(RouteError::Deterministic(m)) => return Response::Error(m),
            Err(RouteError::DatasetUnavailable { name, reason }) => {
                return Response::DatasetUnavailable { name, reason }
            }
            Err(RouteError::Unavailable(_)) => {}
        }
    }

    // Merge in probe order.
    if is_query {
        let mut merged: Vec<Option<Vec<u64>>> = Vec::with_capacity(n_boxes);
        let mut complete = true;
        for (i, (_, range)) in chunks.iter().enumerate() {
            match rows[i].take() {
                Some(ChunkRows::Query(chunk)) => merged.extend(chunk.into_iter().map(Some)),
                Some(ChunkRows::Counts(_)) => {
                    return Response::Error("count rows for a query batch".to_string())
                }
                None => {
                    complete = false;
                    merged.extend(std::iter::repeat_with(|| None).take(range.len()));
                }
            }
        }
        if complete {
            Response::QueryResults(merged.into_iter().map(|r| r.expect("complete")).collect())
        } else if allow_partial {
            Response::PartialResults(merged)
        } else {
            Response::Error(
                "one or more shards are unavailable (opt in with AllowPartial for degraded reads)"
                    .to_string(),
            )
        }
    } else {
        let mut merged: Vec<Option<u64>> = Vec::with_capacity(n_boxes);
        let mut complete = true;
        for (i, (_, range)) in chunks.iter().enumerate() {
            match rows[i].take() {
                Some(ChunkRows::Counts(chunk)) => merged.extend(chunk.into_iter().map(Some)),
                Some(ChunkRows::Query(_)) => {
                    return Response::Error("query rows for a count batch".to_string())
                }
                None => {
                    complete = false;
                    merged.extend(std::iter::repeat_with(|| None).take(range.len()));
                }
            }
        }
        if complete {
            Response::Counts(merged.into_iter().map(|c| c.expect("complete")).collect())
        } else if allow_partial {
            Response::PartialCounts(merged)
        } else {
            Response::Error(
                "one or more shards are unavailable (opt in with AllowPartial for degraded reads)"
                    .to_string(),
            )
        }
    }
}

/// A fully failed probe batch: typed partials for opted-in clients, a hard
/// error otherwise.
fn degraded_or_error(
    allow_partial: bool,
    is_query: bool,
    n_boxes: usize,
    message: &str,
) -> Response {
    if !allow_partial {
        return Response::Error(format!(
            "shard unavailable: {message} (opt in with AllowPartial for degraded reads)"
        ));
    }
    if is_query {
        Response::PartialResults(vec![None; n_boxes])
    } else {
        Response::PartialCounts(vec![None; n_boxes])
    }
}

// ---------------------------------------------------------------------------
// Health loop + failover
// ---------------------------------------------------------------------------

fn health_loop(shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::Acquire) {
        for slot in 0..shared.members.len() {
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            let state = shared.members[slot].state();
            match state {
                HealthState::Up | HealthState::Probation => {
                    let healthy = ping_member(shared, slot);
                    let mut machine = shared.members[slot]
                        .health
                        .lock()
                        .expect("member health poisoned");
                    let transition = if healthy {
                        machine.on_success(&shared.config.health)
                    } else {
                        machine.on_failure(&shared.config.health)
                    };
                    drop(machine);
                    if transition == Transition::WentDown {
                        try_failover(shared, slot);
                    }
                }
                HealthState::Down => {
                    if !try_failover(shared, slot) {
                        try_recover_in_place(shared, slot);
                    }
                }
            }
        }
        std::thread::sleep(shared.config.health.check_interval);
    }
}

/// One active check: connect with the check timeout and ping.
fn ping_member(shared: &Shared, slot: usize) -> bool {
    let addr = shared.members[slot].addr();
    let timeout = shared.config.health.check_timeout;
    match Client::connect_timeout(addr.as_str(), timeout) {
        Ok(mut client) => client.ping().is_ok(),
        Err(_) => false,
    }
}

/// Connects to `addr`, verifies liveness, and re-warms it from the shared
/// snapshot directory.  A backend running without `--snapshot-dir` has
/// nothing to re-warm — that specific server error is tolerated.
fn rewarm_member(shared: &Shared, addr: &str) -> Result<(usize, usize), ClientError> {
    let mut client = Client::connect_timeout(addr, shared.config.connect_timeout)?;
    client.set_io_timeout(Some(shared.config.rewarm_timeout))?;
    client.ping()?;
    match client.load_snapshots() {
        Ok((restored, skipped)) => Ok((restored.len(), skipped.len())),
        Err(ClientError::Server(m)) if m.contains("--snapshot-dir") => Ok((0, 0)),
        Err(e) => Err(e),
    }
}

/// Promotes the first viable standby into `slot`: ping + snapshot re-warm,
/// then swap the address, bump the epoch (dropping every cached connection
/// to the dead address), and mark the slot `Up`.  Returns whether a
/// promotion happened.
fn try_failover(shared: &Arc<Shared>, slot: usize) -> bool {
    loop {
        let candidate = {
            let standbys = shared.standbys.lock().expect("standby list poisoned");
            standbys.first().cloned()
        };
        let Some(standby_addr) = candidate else {
            return false;
        };
        let started = Instant::now();
        match rewarm_member(shared, &standby_addr) {
            Ok((restored, skipped)) => {
                {
                    let mut standbys = shared.standbys.lock().expect("standby list poisoned");
                    standbys.retain(|a| *a != standby_addr);
                }
                let member = &shared.members[slot];
                let from_addr = {
                    let mut addr = member.addr.lock().expect("member addr poisoned");
                    std::mem::replace(&mut *addr, standby_addr.clone())
                };
                member.epoch.fetch_add(1, Ordering::Release);
                member
                    .health
                    .lock()
                    .expect("member health poisoned")
                    .reset_up();
                shared
                    .failovers
                    .lock()
                    .expect("failover log poisoned")
                    .push(FailoverEvent {
                        slot,
                        from_addr,
                        to_addr: standby_addr,
                        rewarm_ms: started.elapsed().as_millis() as u64,
                        datasets_restored: restored,
                        snapshots_skipped: skipped,
                    });
                return true;
            }
            Err(_) => {
                // This standby is not viable (maybe it died too): drop it
                // and try the next one.
                let mut standbys = shared.standbys.lock().expect("standby list poisoned");
                standbys.retain(|a| *a != standby_addr);
                if standbys.is_empty() {
                    return false;
                }
            }
        }
    }
}

/// No standby: try the member's own address (a restarted backend comes
/// back on it).  On success the member is re-warmed and enters half-open
/// probation — it must bank consecutive check successes before routing.
fn try_recover_in_place(shared: &Arc<Shared>, slot: usize) {
    let addr = shared.members[slot].addr();
    let started = Instant::now();
    if let Ok((restored, skipped)) = rewarm_member(shared, &addr) {
        let member = &shared.members[slot];
        member.epoch.fetch_add(1, Ordering::Release);
        let transition = member
            .health
            .lock()
            .expect("member health poisoned")
            .enter_probation();
        if transition == Transition::EnteredProbation {
            shared
                .failovers
                .lock()
                .expect("failover log poisoned")
                .push(FailoverEvent {
                    slot,
                    from_addr: addr.clone(),
                    to_addr: addr,
                    rewarm_ms: started.elapsed().as_millis() as u64,
                    datasets_restored: restored,
                    snapshots_skipped: skipped,
                });
        }
    }
}
