//! Retry policy: capped exponential backoff with deterministic jitter,
//! idempotent-only retry rules, and a global retry *budget* so retries can
//! never amplify an overload.
//!
//! The budget is a token bucket counted in milli-tokens: every first
//! attempt deposits [`RetryPolicy::budget_deposit_millis`], every retry
//! spends a full token (1000 milli-tokens).  With the default deposit of
//! 100 that caps cluster-wide retry volume at ~10% of request volume — when
//! a backend browns out, the router fails fast instead of doubling the
//! load on whatever is still standing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use eclipse_serve::protocol::Request;

/// One retry token, in the bucket's milli-token unit.
const TOKEN_MILLIS: u64 = 1000;

/// Knobs of the per-request retry loop.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts per request, the first included (so 3 = up to two
    /// retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Upper bound the exponential backoff is capped at.
    pub max_backoff: Duration,
    /// Milli-tokens deposited into the retry budget per first attempt
    /// (1000 buys one retry; 100 means retries may be ~10% of traffic).
    pub budget_deposit_millis: u64,
    /// Bucket cap in milli-tokens: how far the budget can save up during
    /// quiet periods (default 10 tokens — one small burst, not a storm).
    pub budget_cap_millis: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
            budget_deposit_millis: 100,
            budget_cap_millis: 10 * TOKEN_MILLIS,
        }
    }
}

impl RetryPolicy {
    /// The pause before retry number `retry` (1-based): capped exponential
    /// base, with deterministic jitter in the `[50%, 100%]` band derived
    /// from `seed` — concurrent retries against one recovering backend
    /// spread out instead of stampeding in lockstep, and a fixed seed
    /// reproduces the exact schedule.
    pub fn backoff(&self, retry: u32, seed: u64) -> Duration {
        let exp = retry.saturating_sub(1).min(16);
        let uncapped = self
            .base_backoff
            .saturating_mul(1u32 << exp.min(31))
            .min(self.max_backoff);
        let nanos = uncapped.as_nanos() as u64;
        // Jitter keeps at least half the backoff: long enough to matter,
        // spread enough to avoid synchronization.
        let jittered = nanos / 2 + splitmix64(seed ^ u64::from(retry)) % (nanos / 2 + 1);
        Duration::from_nanos(jittered)
    }
}

/// The global token bucket gating retries.
#[derive(Debug)]
pub struct RetryBudget {
    millis: AtomicU64,
    deposit: u64,
    cap: u64,
}

impl RetryBudget {
    /// A bucket starting at `policy.budget_cap_millis` (full: the first
    /// failure of a quiet router may retry immediately).
    pub fn new(policy: &RetryPolicy) -> RetryBudget {
        RetryBudget {
            millis: AtomicU64::new(policy.budget_cap_millis),
            deposit: policy.budget_deposit_millis,
            cap: policy.budget_cap_millis,
        }
    }

    /// Credits one first attempt.
    pub fn deposit(&self) {
        self.millis
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some((v + self.deposit).min(self.cap))
            })
            .ok();
    }

    /// Tries to pay for one retry; `false` means the budget is exhausted
    /// and the caller must fail fast instead of retrying.
    pub fn try_spend(&self) -> bool {
        self.millis
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                v.checked_sub(TOKEN_MILLIS)
            })
            .is_ok()
    }

    /// Tokens currently available (whole tokens, for observability).
    pub fn available(&self) -> u64 {
        self.millis.load(Ordering::Relaxed) / TOKEN_MILLIS
    }
}

/// Whether a request may be transparently retried after a transport
/// failure.  Only reads and liveness checks qualify: a `LoadDataset` or
/// `SaveIndex` whose connection died may have executed server-side, and
/// replaying it could double-apply — and for `Insert`/`Delete` the hazard
/// is no longer hypothetical: an insert replayed after an ambiguous
/// failure appends the point twice, and a delete replayed after the id
/// space shifted removes the *wrong* point.  Mutations therefore always
/// surface transport failures to the caller instead of retrying.
pub fn is_idempotent(request: &Request) -> bool {
    matches!(
        request,
        Request::Ping
            | Request::QueryBatch { .. }
            | Request::CountBatch { .. }
            | Request::Stats
            | Request::AllowPartial { .. }
    )
}

/// SplitMix64: a tiny, well-distributed bijection used for jitter — no RNG
/// state, no clock, fully deterministic from the seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_and_within_jitter_band() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            ..RetryPolicy::default()
        };
        for retry in 1..10u32 {
            for seed in 0..50u64 {
                let d = policy.backoff(retry, seed);
                let base = Duration::from_millis(10 << (retry - 1).min(3)).min(policy.max_backoff);
                assert!(d >= base / 2, "retry {retry} seed {seed}: {d:?} < half");
                assert!(d <= base, "retry {retry} seed {seed}: {d:?} > cap");
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_varies_across_seeds() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff(2, 7), policy.backoff(2, 7));
        let distinct: std::collections::HashSet<Duration> =
            (0..32).map(|seed| policy.backoff(3, seed)).collect();
        assert!(distinct.len() > 16, "jitter should spread schedules");
    }

    #[test]
    fn budget_limits_retry_volume() {
        let policy = RetryPolicy {
            budget_deposit_millis: 100,
            budget_cap_millis: 2000,
            ..RetryPolicy::default()
        };
        let budget = RetryBudget::new(&policy);
        // Starts full: two tokens.
        assert!(budget.try_spend());
        assert!(budget.try_spend());
        assert!(!budget.try_spend(), "empty bucket must refuse");
        // Ten first attempts buy exactly one more retry.
        for _ in 0..9 {
            budget.deposit();
            assert!(!budget.try_spend());
        }
        budget.deposit();
        assert!(budget.try_spend());
    }

    #[test]
    fn budget_caps_at_its_ceiling() {
        let policy = RetryPolicy {
            budget_deposit_millis: 1000,
            budget_cap_millis: 3000,
            ..RetryPolicy::default()
        };
        let budget = RetryBudget::new(&policy);
        for _ in 0..100 {
            budget.deposit();
        }
        assert_eq!(budget.available(), 3);
    }

    #[test]
    fn only_reads_are_idempotent() {
        assert!(is_idempotent(&Request::Ping));
        assert!(is_idempotent(&Request::Stats));
        assert!(is_idempotent(&Request::QueryBatch {
            name: "x".into(),
            boxes: vec![],
        }));
        assert!(is_idempotent(&Request::CountBatch {
            name: "x".into(),
            boxes: vec![],
        }));
        assert!(!is_idempotent(&Request::LoadSnapshots));
        assert!(!is_idempotent(&Request::LoadDataset {
            name: "x".into(),
            dim: 2,
            coords: vec![],
            warm: Default::default(),
        }));
        assert!(!is_idempotent(&Request::SaveIndex {
            name: "x".into(),
            kind: Default::default(),
        }));
        // Mutations must never be silently replayed: an ambiguous transport
        // failure mid-insert would double-apply, and a replayed delete can
        // hit a different point once ids have shifted.
        assert!(!is_idempotent(&Request::Insert {
            name: "x".into(),
            coords: vec![1.0, 2.0],
        }));
        assert!(!is_idempotent(&Request::Delete {
            name: "x".into(),
            id: 0,
        }));
    }
}
