//! Fault-tolerant shard router for the eclipse serving tier.
//!
//! `eclipse-router` fronts N `eclipse-serve` backends behind the ordinary
//! client wire protocol: clients connect to one address and the router
//! places datasets (hash placement by default, probe-space partitioning
//! for replicated datasets), scatters probe batches over pipelined v2
//! backend connections, and merges replies in probe order.
//!
//! The crate is organized around four pieces:
//!
//! * [`health`] — the per-member health state machine (consecutive-failure
//!   thresholds, half-open probation);
//! * [`retry`] — capped exponential backoff with deterministic jitter,
//!   idempotent-only rules, and a global retry budget;
//! * [`router`] — the router itself: placement, scatter/gather, the active
//!   health loop, and standby promotion with timed snapshot re-warm;
//! * [`fault`] — a deterministic frame-aware fault-injection proxy used by
//!   the integration suites and the failover benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod health;
pub mod retry;
pub mod router;

pub use fault::{FaultPlan, FaultProxy};
pub use health::{HealthMachine, HealthPolicy, HealthState, Transition};
pub use retry::{is_idempotent, RetryBudget, RetryPolicy};
pub use router::{FailoverEvent, Router, RouterConfig, RouterHandle};
