//! TRAN — the transformation-based eclipse algorithms (Algorithms 2 and 3).
//!
//! The idea of §III is to map every point `p` to a vector of (scaled) scores
//! at a fixed set of corner (domination) vectors of the ratio box, so that
//! eclipse dominance becomes coordinate-wise (skyline) dominance of the
//! mapped vectors and any off-the-shelf skyline algorithm finishes the job.
//!
//! **Two dimensions (Theorem 4 / Algorithm 2).**  The box has exactly two
//! corners, the mapping is
//! `c = (p[1] + p[2]/h,  l·p[1] + p[2])` and the equivalence is exact; the
//! 2-D O(n log n) sweep computes the skyline of the mapped points.
//!
//! **Higher dimensions — a correction to the paper (see DESIGN.md §6).**
//! Theorem 6 of the paper keeps only `d` of the `2^{d−1}` corner vectors
//! (chosen so the corresponding matrix has rank `d`) and claims the resulting
//! `d`-dimensional mapping is still equivalent.  The rank argument shows the
//! chosen vectors *span* the weight space, but score inequalities at those
//! `d` corners do **not** imply the inequalities at the remaining corners —
//! implication would require every corner to be a *convex* combination of
//! the chosen ones, which fails for d ≥ 3.  Concretely, with
//! `r_1, r_2 ∈ [0, 1]`, `p = (1, 1, 1)` and `p′ = (0, 0, 2)`:
//! `S(p) ≤ S(p′)` at the three chosen corners `(0,0), (1,0), (0,1)` but
//! `S(p) = 3 > 2 = S(p′)` at the corner `(1,1)`, so `p` does *not*
//! eclipse-dominate `p′` even though the paper's mapped vector of `p`
//! skyline-dominates that of `p′` — Algorithm 3 as written would drop the
//! eclipse point `p′`.
//!
//! This module therefore provides:
//!
//! * [`eclipse_transform`] — the **corrected** transformation: the mapped
//!   vector holds the scores at *all* `2^{d−1}` corners (Theorem 2 makes this
//!   exact by construction), and a skyline algorithm over the mapped points
//!   finishes the computation.  For d = 2 this is identical to the paper.
//! * [`eclipse_transform_paper`] / [`transform_point_paper`] — the literal
//!   Algorithm 3 mapping, kept as a faithful rendition of the paper.  Its
//!   result is always a *subset* of the true eclipse points (it may
//!   under-report for d ≥ 3), which the tests document.
//! * [`eclipse_transform_with`] / [`CornerTable`] — the execution-aware
//!   entry point: an [`ExecutionContext`] supplies the thread pool for the
//!   parallel [`SkylineBackend`] variants (both the corner-score mapping and
//!   the skyline phase fan out), and the precomputed corner table removes
//!   the per-point corner recomputation from the hot path.

use eclipse_geom::point::Point;

use crate::error::{EclipseError, Result};
use crate::exec::ExecutionContext;
use crate::score::score_with_ratios;
use crate::weights::WeightRatioBox;

/// Which skyline algorithm finishes the transformation-based computation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SkylineBackend {
    /// 2-D sweep when the mapped space is two-dimensional, sort-filter
    /// otherwise (sort-filter touches each point against the current — small —
    /// skyline of mapped points, which is the fastest practical choice for
    /// the corner-score space).
    #[default]
    Auto,
    /// Block-nested-loop skyline.
    BlockNestedLoop,
    /// Sort-filter skyline.
    SortFilter,
    /// Multidimensional divide-and-conquer (ECDF) skyline.
    DivideConquer,
    /// Parallel block-nested-loop: partition → local BNL → merge-filter over
    /// the execution context's thread pool.
    ParallelBlockNestedLoop,
    /// Parallel sort-filter: global presort → partitioned filter passes →
    /// merge-filter over the pool.
    ParallelSortFilter,
    /// Parallel divide-and-conquer: the divide step forks on the pool.
    ParallelDivideConquer,
}

impl SkylineBackend {
    /// `true` for the backends that draw on the execution context's thread
    /// pool.  Parallel backends (and the TRAN mapping feeding them) return
    /// results identical to their serial counterparts at every thread count.
    pub fn is_parallel(self) -> bool {
        matches!(
            self,
            SkylineBackend::ParallelBlockNestedLoop
                | SkylineBackend::ParallelSortFilter
                | SkylineBackend::ParallelDivideConquer
        )
    }
}

/// Precomputed corner ratio vectors of a box: the reusable part of the TRAN
/// mapping.  [`transform_point`] recomputes the `2^{d−1}` corners on every
/// call; on query hot paths build the table once and map every point through
/// it (this is what [`eclipse_transform`] does internally).
#[derive(Clone, Debug)]
pub struct CornerTable {
    corners: Vec<Vec<f64>>,
}

impl CornerTable {
    /// Precomputes the corner ratios of `ratio_box`.
    ///
    /// # Errors
    /// [`EclipseError::Unsupported`] when a ratio range is unbounded.
    pub fn new(ratio_box: &WeightRatioBox) -> Result<Self> {
        Ok(CornerTable {
            corners: ratio_box.corner_ratios()?,
        })
    }

    /// Number of corners (`2^{d−1}`) — the mapped dimensionality.
    pub fn num_corners(&self) -> usize {
        self.corners.len()
    }

    /// Maps one point to its corner-score vector.
    pub fn map_point(&self, p: &Point) -> Point {
        let mut coords = Vec::with_capacity(self.corners.len());
        for corner in &self.corners {
            coords.push(score_with_ratios(p, corner));
        }
        Point::new(coords)
    }

    /// Writes the corner scores of `p` into `out` (cleared first), reusing
    /// the buffer's capacity — the allocation-free flavour of
    /// [`CornerTable::map_point`] for callers that score in a loop.
    pub fn map_coords_into(&self, p: &Point, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.corners.len());
        for corner in &self.corners {
            out.push(score_with_ratios(p, corner));
        }
    }
}

/// Maps a point to its corner-score vector: the scores `S(p)_r` at every one
/// of the `2^{d−1}` corner ratio vectors of the box, in
/// [`WeightRatioBox::corner_ratios`] order.  Eclipse dominance of the original
/// points is exactly skyline dominance of these vectors (Theorem 2 plus the
/// strictness convention of DESIGN.md §1).
///
/// # Panics
/// Panics if the point and box dimensionalities disagree or the box is
/// unbounded (the public entry point [`eclipse_transform`] validates both and
/// returns an error instead).
pub fn transform_point(p: &Point, ratio_box: &WeightRatioBox) -> Point {
    assert_eq!(
        ratio_box.dim(),
        p.dim(),
        "ratio box must match point dimensionality"
    );
    let corners = ratio_box
        .corner_ratios()
        .expect("transform_point requires finite ratio ranges");
    Point::new(
        corners
            .iter()
            .map(|r| score_with_ratios(p, r))
            .collect::<Vec<f64>>(),
    )
}

/// The paper's literal Theorem 4 / Theorem 6 mapping: `d` coordinates, the
/// score at the all-lower corner plus, per dimension `j`, the score at the
/// corner with `r[j] = h_j` (every other ratio at its lower bound) divided by
/// `h_j` — geometrically the smallest intercept of the domination hyperplanes
/// on the `j`-th axis.
///
/// Exact for d = 2; for d ≥ 3 see the module documentation.
///
/// # Panics
/// Same contract as [`transform_point`].
pub fn transform_point_paper(p: &Point, ratio_box: &WeightRatioBox) -> Point {
    let d = p.dim();
    assert_eq!(
        ratio_box.dim(),
        d,
        "ratio box must match point dimensionality"
    );
    assert!(
        !ratio_box.has_unbounded_range(),
        "transform_point_paper requires finite ratio ranges"
    );
    let ranges = ratio_box.ranges();
    let lower_corner_score: f64 =
        (0..d - 1).map(|j| ranges[j].lo() * p.coord(j)).sum::<f64>() + p.coord(d - 1);

    let mut coords = Vec::with_capacity(d);
    for (j, range) in ranges.iter().enumerate().take(d - 1) {
        let h_j = range.hi();
        if h_j == 0.0 {
            // The j-th weight is identically zero: the coordinate carries no
            // information.
            coords.push(0.0);
            continue;
        }
        let score_j = lower_corner_score - range.lo() * p.coord(j) + h_j * p.coord(j);
        coords.push(score_j / h_j);
    }
    coords.push(lower_corner_score);
    Point::new(coords)
}

/// Computes the eclipse points with the (corrected) transformation-based
/// algorithm, returning indices in ascending order.
///
/// Parallel backends draw on the process-wide default pool; use
/// [`eclipse_transform_with`] to supply an explicit [`ExecutionContext`].
///
/// # Errors
/// * [`EclipseError::DimensionMismatch`] when the box does not match the
///   dataset dimensionality.
/// * [`EclipseError::Unsupported`] when a ratio range is unbounded.
pub fn eclipse_transform(
    points: &[Point],
    ratio_box: &WeightRatioBox,
    backend: SkylineBackend,
) -> Result<Vec<usize>> {
    eclipse_transform_with(points, ratio_box, backend, &ExecutionContext::default())
}

/// Datasets below this size are mapped serially even for parallel backends.
const PARALLEL_MAP_CUTOFF: usize = 1024;

/// [`eclipse_transform`] with an explicit execution context: for a parallel
/// backend both the corner-score mapping and the skyline phase run on the
/// context's pool.  The result is identical to the serial computation for
/// every backend and thread count (the property suites enforce this).
///
/// # Errors
/// Same as [`eclipse_transform`].
pub fn eclipse_transform_with(
    points: &[Point],
    ratio_box: &WeightRatioBox,
    backend: SkylineBackend,
    ctx: &ExecutionContext,
) -> Result<Vec<usize>> {
    let table = validate(points, ratio_box)?;
    if points.is_empty() {
        return Ok(Vec::new());
    }
    let mapped: Vec<Point> =
        if backend.is_parallel() && ctx.threads() > 1 && points.len() >= PARALLEL_MAP_CUTOFF {
            ctx.pool().par_map(points, |p| table.map_point(p))
        } else {
            points.iter().map(|p| table.map_point(p)).collect()
        };
    Ok(run_skyline(&mapped, backend, ctx))
}

/// Computes the paper's literal Algorithm 2/3: exact for d = 2, a subset of
/// the eclipse points for d ≥ 3 (see the module documentation).
///
/// # Errors
/// Same as [`eclipse_transform`].
pub fn eclipse_transform_paper(
    points: &[Point],
    ratio_box: &WeightRatioBox,
    backend: SkylineBackend,
) -> Result<Vec<usize>> {
    validate(points, ratio_box)?;
    if points.is_empty() {
        return Ok(Vec::new());
    }
    let mapped: Vec<Point> = points
        .iter()
        .map(|p| transform_point_paper(p, ratio_box))
        .collect();
    Ok(run_skyline(&mapped, backend, &ExecutionContext::default()))
}

fn validate(points: &[Point], ratio_box: &WeightRatioBox) -> Result<CornerTable> {
    if let Some(first) = points.first() {
        let d = first.dim();
        if ratio_box.dim() != d {
            return Err(EclipseError::DimensionMismatch {
                expected: d,
                found: ratio_box.dim(),
            });
        }
        for p in points {
            if p.dim() != d {
                return Err(EclipseError::DimensionMismatch {
                    expected: d,
                    found: p.dim(),
                });
            }
        }
    }
    if ratio_box.has_unbounded_range() {
        return Err(EclipseError::Unsupported(
            "the transformation-based algorithm requires finite ratio ranges".to_string(),
        ));
    }
    CornerTable::new(ratio_box)
}

/// Runs the selected skyline backend over an already mapped (or raw) point
/// set.  Shared with the engine's `skyline_with` so backend dispatch has one
/// definition.
pub(crate) fn run_skyline(
    mapped: &[Point],
    backend: SkylineBackend,
    ctx: &ExecutionContext,
) -> Vec<usize> {
    let mapped_dim = mapped.first().map_or(0, Point::dim);
    match backend {
        SkylineBackend::Auto => {
            if mapped_dim == 2 {
                eclipse_skyline::sweep::skyline_2d(mapped)
            } else {
                eclipse_skyline::sfs::skyline_sfs(mapped)
            }
        }
        SkylineBackend::BlockNestedLoop => eclipse_skyline::bnl::skyline_bnl(mapped),
        SkylineBackend::SortFilter => eclipse_skyline::sfs::skyline_sfs(mapped),
        SkylineBackend::DivideConquer => eclipse_skyline::dc::skyline_dc(mapped),
        // The pooled entry points borrow the context's pool handle directly:
        // one handle serves every dispatch, with no per-call `Arc` clone or
        // executor construction.
        SkylineBackend::ParallelBlockNestedLoop => eclipse_skyline::exec::skyline_bnl_pooled(
            mapped,
            ctx.pool(),
            eclipse_skyline::exec::DEFAULT_SEQUENTIAL_CUTOFF,
        ),
        SkylineBackend::ParallelSortFilter => eclipse_skyline::exec::skyline_sfs_pooled(
            mapped,
            ctx.pool(),
            eclipse_skyline::exec::DEFAULT_SEQUENTIAL_CUTOFF,
        ),
        SkylineBackend::ParallelDivideConquer => {
            eclipse_skyline::dc::skyline_dc_parallel(mapped, ctx.pool())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::baseline::eclipse_baseline;
    use rand::{Rng, SeedableRng};

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    fn paper_points() -> Vec<Point> {
        vec![
            p(&[1.0, 6.0]),
            p(&[4.0, 4.0]),
            p(&[6.0, 1.0]),
            p(&[8.0, 5.0]),
        ]
    }

    #[test]
    fn paper_mapping_matches_figure5() {
        // Figure 5 (r ∈ [1/4, 2]): c1(4, 6.25), c2(6, 5), c3(6.5, 2.5), c4(10.5, 7).
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        let expected = [
            vec![4.0, 6.25],
            vec![6.0, 5.0],
            vec![6.5, 2.5],
            vec![10.5, 7.0],
        ];
        for (pt, exp) in paper_points().iter().zip(expected.iter()) {
            let c = transform_point_paper(pt, &b);
            for (a, b) in c.coords().iter().zip(exp.iter()) {
                assert!((a - b).abs() < 1e-12, "mapped {c:?} expected {exp:?}");
            }
        }
    }

    #[test]
    fn corner_mapping_in_2d_is_a_rescaled_figure5() {
        // In 2-D the corner scores are (S at l, S at h); the paper's mapping is
        // (S at h / h, S at l) — the same data up to a positive rescale and a
        // coordinate swap, so both induce the same dominance order.
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        for pt in paper_points() {
            let corners = transform_point(&pt, &b);
            let paper = transform_point_paper(&pt, &b);
            assert!((corners.coord(0) - paper.coord(1)).abs() < 1e-12);
            assert!((corners.coord(1) / 2.0 - paper.coord(0)).abs() < 1e-12);
        }
    }

    #[test]
    fn example3_transformation_result() {
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        assert_eq!(
            eclipse_transform(&paper_points(), &b, SkylineBackend::Auto).unwrap(),
            vec![0, 1, 2]
        );
        assert_eq!(
            eclipse_transform_paper(&paper_points(), &b, SkylineBackend::Auto).unwrap(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn agrees_with_baseline_in_2d() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        for _ in 0..10 {
            let pts: Vec<Point> = (0..250)
                .map(|_| Point::new(vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]))
                .collect();
            let lo = rng.gen_range(0.05..1.0);
            let hi = lo + rng.gen_range(0.1..4.0);
            let b = WeightRatioBox::uniform(2, lo, hi).unwrap();
            let base = eclipse_baseline(&pts, &b).unwrap();
            assert_eq!(
                eclipse_transform(&pts, &b, SkylineBackend::Auto).unwrap(),
                base
            );
            // In two dimensions the paper's mapping is exact as well.
            assert_eq!(
                eclipse_transform_paper(&pts, &b, SkylineBackend::Auto).unwrap(),
                base
            );
        }
    }

    #[test]
    fn agrees_with_baseline_in_higher_dimensions() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(62);
        for d in 3..=5usize {
            for _ in 0..5 {
                let pts: Vec<Point> = (0..200)
                    .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
                    .collect();
                let lo = rng.gen_range(0.05..1.0);
                let hi = lo + rng.gen_range(0.1..4.0);
                let b = WeightRatioBox::uniform(d, lo, hi).unwrap();
                assert_eq!(
                    eclipse_transform(&pts, &b, SkylineBackend::Auto).unwrap(),
                    eclipse_baseline(&pts, &b).unwrap(),
                    "d = {d}, box = {b}"
                );
            }
        }
    }

    #[test]
    fn asymmetric_per_dimension_ranges() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(63);
        let pts: Vec<Point> = (0..200)
            .map(|_| Point::new((0..4).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        let b = WeightRatioBox::from_bounds(&[(0.1, 0.6), (0.8, 3.0), (1.5, 2.0)]).unwrap();
        assert_eq!(
            eclipse_transform(&pts, &b, SkylineBackend::Auto).unwrap(),
            eclipse_baseline(&pts, &b).unwrap()
        );
    }

    #[test]
    fn all_backends_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(64);
        let pts: Vec<Point> = (0..300)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        let b = WeightRatioBox::uniform(3, 0.36, 2.75).unwrap();
        let auto = eclipse_transform(&pts, &b, SkylineBackend::Auto).unwrap();
        for backend in [
            SkylineBackend::BlockNestedLoop,
            SkylineBackend::SortFilter,
            SkylineBackend::DivideConquer,
            SkylineBackend::ParallelBlockNestedLoop,
            SkylineBackend::ParallelSortFilter,
            SkylineBackend::ParallelDivideConquer,
        ] {
            assert_eq!(
                eclipse_transform(&pts, &b, backend).unwrap(),
                auto,
                "{backend:?}"
            );
        }
    }

    #[test]
    fn parallel_backends_agree_above_the_map_cutoff() {
        // Large enough that the parallel corner mapping and the parallel
        // skyline phase both actually engage.
        let mut rng = rand::rngs::StdRng::seed_from_u64(66);
        let pts: Vec<Point> = (0..4000)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        let b = WeightRatioBox::uniform(3, 0.36, 2.75).unwrap();
        let serial = eclipse_transform(&pts, &b, SkylineBackend::SortFilter).unwrap();
        for threads in [1usize, 2, 4] {
            let ctx = ExecutionContext::with_threads(threads);
            for backend in [
                SkylineBackend::ParallelBlockNestedLoop,
                SkylineBackend::ParallelSortFilter,
                SkylineBackend::ParallelDivideConquer,
            ] {
                assert_eq!(
                    eclipse_transform_with(&pts, &b, backend, &ctx).unwrap(),
                    serial,
                    "{backend:?} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn corner_table_matches_transform_point() {
        let b = WeightRatioBox::uniform(3, 0.25, 2.0).unwrap();
        let table = CornerTable::new(&b).unwrap();
        assert_eq!(table.num_corners(), 4);
        let mut scratch = Vec::new();
        for pt in [p(&[1.0, 2.0, 3.0]), p(&[0.5, 0.5, 0.5])] {
            assert_eq!(table.map_point(&pt), transform_point(&pt, &b));
            table.map_coords_into(&pt, &mut scratch);
            assert_eq!(scratch.as_slice(), table.map_point(&pt).coords());
        }
        // Unbounded boxes are rejected like the transform itself.
        assert!(CornerTable::new(&WeightRatioBox::skyline(2).unwrap()).is_err());
    }

    #[test]
    fn paper_theorem6_counterexample() {
        // The counterexample from the module documentation: the paper's
        // mapping drops p2 = (0,0,2) even though nothing eclipse-dominates it.
        let pts = vec![p(&[1.0, 1.0, 1.0]), p(&[0.0, 0.0, 2.0])];
        let b = WeightRatioBox::uniform(3, 0.0, 1.0).unwrap();
        let base = eclipse_baseline(&pts, &b).unwrap();
        assert_eq!(base, vec![0, 1], "neither point dominates the other");
        assert_eq!(
            eclipse_transform(&pts, &b, SkylineBackend::Auto).unwrap(),
            base,
            "the corrected transformation matches the definition"
        );
        assert_eq!(
            eclipse_transform_paper(&pts, &b, SkylineBackend::Auto).unwrap(),
            vec![0],
            "the literal Theorem 6 mapping under-reports"
        );
    }

    #[test]
    fn paper_variant_is_subset_of_true_eclipse() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(65);
        for d in 3..=4usize {
            for _ in 0..5 {
                let pts: Vec<Point> = (0..150)
                    .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
                    .collect();
                let b = WeightRatioBox::uniform(d, 0.36, 2.75).unwrap();
                let exact: std::collections::HashSet<usize> =
                    eclipse_transform(&pts, &b, SkylineBackend::Auto)
                        .unwrap()
                        .into_iter()
                        .collect();
                let paper = eclipse_transform_paper(&pts, &b, SkylineBackend::Auto).unwrap();
                assert!(
                    paper.iter().all(|i| exact.contains(i)),
                    "paper variant must never report a non-eclipse point (d = {d})"
                );
            }
        }
    }

    #[test]
    fn exact_box_degenerates_to_1nn() {
        let b = WeightRatioBox::exact(&[2.0]).unwrap();
        assert_eq!(
            eclipse_transform(&paper_points(), &b, SkylineBackend::Auto).unwrap(),
            vec![0]
        );
    }

    #[test]
    fn zero_upper_bound_is_handled() {
        // r ∈ [0, 0]: only the last attribute matters; p3 has the smallest.
        let b = WeightRatioBox::uniform(2, 0.0, 0.0).unwrap();
        let got = eclipse_transform(&paper_points(), &b, SkylineBackend::Auto).unwrap();
        assert_eq!(got, eclipse_baseline(&paper_points(), &b).unwrap());
        assert_eq!(got, vec![2]);
        let paper = eclipse_transform_paper(&paper_points(), &b, SkylineBackend::Auto).unwrap();
        assert_eq!(paper, vec![2]);
    }

    #[test]
    fn unbounded_and_mismatched_inputs_are_rejected() {
        let sky = WeightRatioBox::skyline(2).unwrap();
        assert!(eclipse_transform(&paper_points(), &sky, SkylineBackend::Auto).is_err());
        assert!(eclipse_transform_paper(&paper_points(), &sky, SkylineBackend::Auto).is_err());
        let wrong_dim = WeightRatioBox::uniform(3, 0.5, 1.0).unwrap();
        assert!(eclipse_transform(&paper_points(), &wrong_dim, SkylineBackend::Auto).is_err());
        let mixed = vec![p(&[1.0, 2.0]), p(&[1.0, 2.0, 3.0])];
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        assert!(eclipse_transform(&mixed, &b, SkylineBackend::Auto).is_err());
    }

    #[test]
    fn empty_dataset_is_fine() {
        let b = WeightRatioBox::uniform(3, 0.25, 2.0).unwrap();
        assert_eq!(
            eclipse_transform(&[], &b, SkylineBackend::Auto).unwrap(),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn duplicates_map_to_identical_points_and_survive() {
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        let pts = vec![p(&[1.0, 1.0]), p(&[1.0, 1.0]), p(&[9.0, 9.0])];
        assert_eq!(
            eclipse_transform(&pts, &b, SkylineBackend::Auto).unwrap(),
            vec![0, 1]
        );
    }
}
