//! BASE — the baseline eclipse algorithm (Algorithm 1).
//!
//! For every pair of points the scores at all `2^{d−1}` corner (domination)
//! vectors are compared; a point survives when no other point eclipse-
//! dominates it.  Time complexity O(n²·2^{d−1}) (Theorem 3).  Besides serving
//! as the BASE competitor in the evaluation, this implementation doubles as
//! the ground-truth oracle for every other algorithm's tests, so it is kept
//! deliberately close to the definition (the only optimization over the
//! pseudo-code is pre-computing each point's corner scores once instead of
//! per pair, which does not change the asymptotics).

use eclipse_geom::approx::EPS;
use eclipse_geom::point::Point;

use crate::error::{EclipseError, Result};
use crate::weights::WeightRatioBox;

/// Computes the eclipse points of `points` for the given ratio box with the
/// baseline pairwise algorithm, returning indices in ascending order.
///
/// # Errors
/// * [`EclipseError::DimensionMismatch`] when the box dimensionality does not
///   match the points.
/// * [`EclipseError::Unsupported`] when a ratio range is unbounded (use the
///   skyline instantiation through [`crate::query::EclipseEngine`] instead,
///   or a very large finite bound).
pub fn eclipse_baseline(points: &[Point], ratio_box: &WeightRatioBox) -> Result<Vec<usize>> {
    if points.is_empty() {
        return Ok(Vec::new());
    }
    let d = points[0].dim();
    if ratio_box.dim() != d {
        return Err(EclipseError::DimensionMismatch {
            expected: d,
            found: ratio_box.dim(),
        });
    }
    for p in points {
        if p.dim() != d {
            return Err(EclipseError::DimensionMismatch {
                expected: d,
                found: p.dim(),
            });
        }
    }
    let corners = ratio_box.corner_ratios()?;

    // Pre-compute the score of every point at every corner vector.
    let scores: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            corners
                .iter()
                .map(|r| crate::score::score_with_ratios(p, r))
                .collect()
        })
        .collect();

    let mut result = Vec::new();
    'outer: for i in 0..points.len() {
        for j in 0..points.len() {
            if i == j {
                continue;
            }
            if dominates_by_scores(&scores[j], &scores[i]) {
                continue 'outer;
            }
        }
        result.push(i);
    }
    Ok(result)
}

/// `true` when the point with corner scores `a` eclipse-dominates the point
/// with corner scores `b`: `a ≤ b` at every corner and `a < b` at one.
fn dominates_by_scores(a: &[f64], b: &[f64]) -> bool {
    let mut strictly = false;
    for (x, y) in a.iter().zip(b.iter()) {
        if *x > *y + EPS {
            return false;
        }
        if *x + EPS < *y {
            strictly = true;
        }
    }
    strictly
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::eclipse_naive;
    use rand::{Rng, SeedableRng};

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    fn paper_points() -> Vec<Point> {
        vec![
            p(&[1.0, 6.0]),
            p(&[4.0, 4.0]),
            p(&[6.0, 1.0]),
            p(&[8.0, 5.0]),
        ]
    }

    #[test]
    fn paper_running_example() {
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        assert_eq!(
            eclipse_baseline(&paper_points(), &b).unwrap(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn nn_instantiation_returns_single_point() {
        let b = WeightRatioBox::exact(&[2.0]).unwrap();
        assert_eq!(eclipse_baseline(&paper_points(), &b).unwrap(), vec![0]);
    }

    #[test]
    fn empty_dataset_is_fine() {
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        assert_eq!(eclipse_baseline(&[], &b).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let b = WeightRatioBox::uniform(3, 0.25, 2.0).unwrap();
        let err = eclipse_baseline(&paper_points(), &b).unwrap_err();
        assert!(matches!(
            err,
            EclipseError::DimensionMismatch {
                expected: 2,
                found: 3
            }
        ));
        // Mixed-dimensional datasets are also rejected.
        let b2 = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        let mixed = vec![p(&[1.0, 2.0]), p(&[1.0, 2.0, 3.0])];
        assert!(eclipse_baseline(&mixed, &b2).is_err());
    }

    #[test]
    fn unbounded_box_is_unsupported() {
        let b = WeightRatioBox::skyline(2).unwrap();
        assert!(matches!(
            eclipse_baseline(&paper_points(), &b),
            Err(EclipseError::Unsupported(_))
        ));
    }

    #[test]
    fn agrees_with_pairwise_oracle_on_random_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(51);
        for d in 2..=5usize {
            let b = WeightRatioBox::uniform(d, 0.36, 2.75).unwrap();
            let pts: Vec<Point> = (0..150)
                .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
                .collect();
            assert_eq!(
                eclipse_baseline(&pts, &b).unwrap(),
                eclipse_naive(&pts, &b),
                "d = {d}"
            );
        }
    }

    #[test]
    fn duplicates_survive_together() {
        let b = WeightRatioBox::uniform(2, 0.5, 1.5).unwrap();
        let pts = vec![p(&[1.0, 1.0]), p(&[1.0, 1.0]), p(&[5.0, 5.0])];
        assert_eq!(eclipse_baseline(&pts, &b).unwrap(), vec![0, 1]);
    }

    #[test]
    fn narrower_boxes_return_fewer_points() {
        // Monotonicity: enlarging the ratio range can only grow the result.
        let mut rng = rand::rngs::StdRng::seed_from_u64(52);
        let pts: Vec<Point> = (0..200)
            .map(|_| {
                Point::new(vec![
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                ])
            })
            .collect();
        let narrow = WeightRatioBox::uniform(3, 0.84, 1.19).unwrap();
        let wide = WeightRatioBox::uniform(3, 0.18, 5.67).unwrap();
        let narrow_res = eclipse_baseline(&pts, &narrow).unwrap();
        let wide_res = eclipse_baseline(&pts, &wide).unwrap();
        assert!(narrow_res.len() <= wide_res.len());
        // Every narrow-box eclipse point stays an eclipse point for the wider box.
        let wide_set: std::collections::HashSet<usize> = wide_res.into_iter().collect();
        for i in narrow_res {
            assert!(wide_set.contains(&i));
        }
    }
}
