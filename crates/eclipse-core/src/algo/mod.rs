//! The paper's eclipse query algorithms.
//!
//! * [`baseline`] — Algorithm 1, the O(n²·2^{d−1}) pairwise check used as the
//!   correctness oracle and as the BASE competitor of the evaluation,
//! * [`transform`] — Algorithms 2 and 3, the transformation-based algorithms
//!   that reduce eclipse to a skyline computation over mapped points
//!   (corrected for d ≥ 3; see the module documentation),
//! * [`keclipse`] — size-controlled ("top-k") eclipse queries, the
//!   result-budget usage the paper's introduction motivates.
//!
//! The index-based algorithms of §IV live in [`crate::index`].

pub mod baseline;
pub mod keclipse;
pub mod transform;

pub use baseline::eclipse_baseline;
pub use keclipse::{eclipse_top_k, eclipse_with_budget, KEclipseResult};
pub use transform::{eclipse_transform, transform_point, SkylineBackend};
