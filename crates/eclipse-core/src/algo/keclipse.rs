//! Size-controlled eclipse queries ("k-eclipse").
//!
//! The paper motivates eclipse partly as a way to *"control the number of
//! returned points"*: a user states a rough preference and a result budget,
//! and the system picks how wide a preference band it can afford.  This
//! module implements that contract on top of the core operator:
//!
//! * [`eclipse_top_k`] — given an exact ratio vector and a budget `k`, find
//!   (by bisection on the relaxation margin) the widest symmetric relaxation
//!   of the preference whose eclipse result still fits in `k` points, then
//!   return that result together with the box that produced it.  Margin 0
//!   degenerates to 1NN; an unbounded margin would approach the skyline, so
//!   the returned box tells the user how much "preference slack" their budget
//!   buys.
//! * [`eclipse_with_budget`] — given an explicit ratio box and a budget,
//!   either return the eclipse points unchanged (if they fit) or shrink the
//!   box towards its geometric centre until they do.
//!
//! Both functions only ever *shrink* ranges, so every returned point is an
//! eclipse point of the user's original specification (monotonicity of the
//! operator in the box, verified by the property tests).

use eclipse_geom::point::Point;

use crate::algo::transform::{eclipse_transform, SkylineBackend};
use crate::error::{EclipseError, Result};
use crate::weights::WeightRatioBox;

/// Result of a size-controlled eclipse query.
#[derive(Clone, Debug, PartialEq)]
pub struct KEclipseResult {
    /// Indices of the returned points (ascending), at most `k` of them.
    pub indices: Vec<usize>,
    /// The ratio box that produced `indices`.
    pub ratio_box: WeightRatioBox,
    /// The relaxation margin that was achieved (only set by
    /// [`eclipse_top_k`]; `None` for [`eclipse_with_budget`]).
    pub margin: Option<f64>,
}

/// Maximum relaxation margin explored by [`eclipse_top_k`] (the box
/// `[r·(1−m), r·(1+m)]` with `m` close to 1 already spans two orders of
/// magnitude of weight ratios).
const MAX_MARGIN: f64 = 0.995;
/// Bisection iterations; 2^-40 of the margin interval is far below any
/// meaningful preference resolution.
const BISECTION_STEPS: usize = 40;

/// Finds the widest symmetric relaxation of `center_ratios` whose eclipse
/// result has at most `k` points.
///
/// # Errors
/// * [`EclipseError::EmptyDataset`] when the dataset is empty.
/// * [`EclipseError::Unsupported`] when `k == 0`.
/// * Propagates dimension/range validation errors.
pub fn eclipse_top_k(points: &[Point], center_ratios: &[f64], k: usize) -> Result<KEclipseResult> {
    if points.is_empty() {
        return Err(EclipseError::EmptyDataset);
    }
    if k == 0 {
        return Err(EclipseError::Unsupported(
            "the result budget k must be at least 1".to_string(),
        ));
    }

    // Margin 0: the exact preference.  If even that exceeds k (mass ties), we
    // keep the k best by center score (deterministic index tie-break).
    let exact_box = WeightRatioBox::exact(center_ratios)?;
    let exact = eclipse_transform(points, &exact_box, SkylineBackend::Auto)?;
    if exact.len() > k {
        let mut scored: Vec<(usize, f64)> = exact
            .into_iter()
            .map(|i| {
                (
                    i,
                    crate::score::score_with_ratios(&points[i], center_ratios),
                )
            })
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        let mut indices: Vec<usize> = scored.into_iter().map(|(i, _)| i).collect();
        indices.sort_unstable();
        return Ok(KEclipseResult {
            indices,
            ratio_box: exact_box,
            margin: Some(0.0),
        });
    }

    // Bisection on the margin: result size is monotone non-decreasing in the
    // margin, so we search for the largest margin still within budget.
    let mut lo = 0.0_f64; // always feasible (checked above)
    let mut lo_result = exact;
    let mut lo_box = exact_box;
    let mut hi = MAX_MARGIN;

    // Fast path: if the widest margin fits, take it.
    let widest_box = WeightRatioBox::relaxed(center_ratios, MAX_MARGIN)?;
    let widest = eclipse_transform(points, &widest_box, SkylineBackend::Auto)?;
    if widest.len() <= k {
        return Ok(KEclipseResult {
            indices: widest,
            ratio_box: widest_box,
            margin: Some(MAX_MARGIN),
        });
    }

    for _ in 0..BISECTION_STEPS {
        let mid = 0.5 * (lo + hi);
        let candidate_box = WeightRatioBox::relaxed(center_ratios, mid)?;
        let candidate = eclipse_transform(points, &candidate_box, SkylineBackend::Auto)?;
        if candidate.len() <= k {
            lo = mid;
            lo_result = candidate;
            lo_box = candidate_box;
        } else {
            hi = mid;
        }
    }

    Ok(KEclipseResult {
        indices: lo_result,
        ratio_box: lo_box,
        margin: Some(lo),
    })
}

/// Returns the eclipse points of `ratio_box` if they fit the budget, or the
/// result of the largest centred shrink of the box that does.
///
/// # Errors
/// * [`EclipseError::EmptyDataset`] when the dataset is empty.
/// * [`EclipseError::Unsupported`] when `k == 0` or the box has unbounded
///   ranges.
pub fn eclipse_with_budget(
    points: &[Point],
    ratio_box: &WeightRatioBox,
    k: usize,
) -> Result<KEclipseResult> {
    if points.is_empty() {
        return Err(EclipseError::EmptyDataset);
    }
    if k == 0 {
        return Err(EclipseError::Unsupported(
            "the result budget k must be at least 1".to_string(),
        ));
    }
    if ratio_box.has_unbounded_range() {
        return Err(EclipseError::Unsupported(
            "eclipse_with_budget requires finite ratio ranges".to_string(),
        ));
    }

    let full = eclipse_transform(points, ratio_box, SkylineBackend::Auto)?;
    if full.len() <= k {
        return Ok(KEclipseResult {
            indices: full,
            ratio_box: ratio_box.clone(),
            margin: None,
        });
    }

    // Shrink factor t ∈ [0, 1]: 1 keeps the box, 0 collapses it onto its
    // centre.  Result size is monotone in t, so bisect.
    let centers: Vec<f64> = ratio_box
        .ranges()
        .iter()
        .map(|r| 0.5 * (r.lo() + r.hi()))
        .collect();
    let shrink = |t: f64| -> Result<WeightRatioBox> {
        let bounds: Vec<(f64, f64)> = ratio_box
            .ranges()
            .iter()
            .zip(centers.iter())
            .map(|(r, c)| (c - t * (c - r.lo()), c + t * (r.hi() - c)))
            .collect();
        WeightRatioBox::from_bounds(&bounds)
    };

    // The fully collapsed box is the exact-centre preference; if even that
    // exceeds the budget, truncate by centre score as in `eclipse_top_k`.
    let collapsed = eclipse_transform(points, &shrink(0.0)?, SkylineBackend::Auto)?;
    if collapsed.len() > k {
        let mut scored: Vec<(usize, f64)> = collapsed
            .into_iter()
            .map(|i| (i, crate::score::score_with_ratios(&points[i], &centers)))
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        let mut indices: Vec<usize> = scored.into_iter().map(|(i, _)| i).collect();
        indices.sort_unstable();
        return Ok(KEclipseResult {
            indices,
            ratio_box: shrink(0.0)?,
            margin: None,
        });
    }

    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    let mut best = collapsed;
    let mut best_box = shrink(0.0)?;
    for _ in 0..BISECTION_STEPS {
        let mid = 0.5 * (lo + hi);
        let candidate_box = shrink(mid)?;
        let candidate = eclipse_transform(points, &candidate_box, SkylineBackend::Auto)?;
        if candidate.len() <= k {
            lo = mid;
            best = candidate;
            best_box = candidate_box;
        } else {
            hi = mid;
        }
    }
    Ok(KEclipseResult {
        indices: best,
        ratio_box: best_box,
        margin: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    fn paper_points() -> Vec<Point> {
        vec![
            p(&[1.0, 6.0]),
            p(&[4.0, 4.0]),
            p(&[6.0, 1.0]),
            p(&[8.0, 5.0]),
        ]
    }

    #[test]
    fn budget_of_one_returns_the_nearest_neighbour() {
        let res = eclipse_top_k(&paper_points(), &[2.0], 1).unwrap();
        assert_eq!(res.indices, vec![0]);
        assert!(res.margin.unwrap() >= 0.0);
    }

    #[test]
    fn growing_budgets_grow_the_result_and_margin() {
        let pts = paper_points();
        let mut prev_len = 0;
        let mut prev_margin = -1.0;
        for k in 1..=4 {
            let res = eclipse_top_k(&pts, &[1.0], k).unwrap();
            assert!(res.indices.len() <= k);
            assert!(res.indices.len() >= prev_len);
            let margin = res.margin.unwrap();
            assert!(margin >= prev_margin);
            prev_len = res.indices.len();
            prev_margin = margin;
        }
    }

    #[test]
    fn results_are_always_eclipse_points_of_the_original_box() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(111);
        let pts: Vec<Point> = (0..200)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        let full_box = WeightRatioBox::uniform(3, 0.36, 2.75).unwrap();
        let full: std::collections::HashSet<usize> =
            eclipse_transform(&pts, &full_box, SkylineBackend::Auto)
                .unwrap()
                .into_iter()
                .collect();
        for k in [1usize, 2, 4, 8] {
            let res = eclipse_with_budget(&pts, &full_box, k).unwrap();
            assert!(res.indices.len() <= k, "k = {k}");
            assert!(
                res.indices.iter().all(|i| full.contains(i)),
                "budgeted result must stay inside the original eclipse set (k = {k})"
            );
        }
    }

    #[test]
    fn budget_larger_than_result_is_identity() {
        let pts = paper_points();
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        let res = eclipse_with_budget(&pts, &b, 10).unwrap();
        assert_eq!(res.indices, vec![0, 1, 2]);
        assert_eq!(res.ratio_box, b);
        assert_eq!(res.margin, None);
    }

    #[test]
    fn mass_ties_are_truncated_deterministically() {
        // Every point identical: any k of them must be returned (lowest indices).
        let pts = vec![p(&[1.0, 1.0]); 6];
        let res = eclipse_top_k(&pts, &[1.0], 3).unwrap();
        assert_eq!(res.indices, vec![0, 1, 2]);
        let res =
            eclipse_with_budget(&pts, &WeightRatioBox::uniform(2, 0.5, 2.0).unwrap(), 2).unwrap();
        assert_eq!(res.indices, vec![0, 1]);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(matches!(
            eclipse_top_k(&[], &[1.0], 3),
            Err(EclipseError::EmptyDataset)
        ));
        assert!(eclipse_top_k(&paper_points(), &[1.0], 0).is_err());
        let b = WeightRatioBox::uniform(2, 0.5, 2.0).unwrap();
        assert!(eclipse_with_budget(&[], &b, 3).is_err());
        assert!(eclipse_with_budget(&paper_points(), &b, 0).is_err());
        let sky = WeightRatioBox::skyline(2).unwrap();
        assert!(eclipse_with_budget(&paper_points(), &sky, 3).is_err());
    }

    #[test]
    fn wide_open_data_still_respects_budget() {
        // Anti-correlated data where the skyline is everything: the budget
        // must still be respected and the margin ends up small.
        let n = 60;
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                p(&[x, 1.0 - x])
            })
            .collect();
        let res = eclipse_top_k(&pts, &[1.0], 5).unwrap();
        assert!(res.indices.len() <= 5);
        assert!(!res.indices.is_empty());
        assert!(res.margin.unwrap() < 0.5);
    }
}
