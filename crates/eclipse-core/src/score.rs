//! Scoring functions.
//!
//! The paper works with the L1 weighted sum `S(p) = Σ_i w[i]·p[i]` (footnote 2
//! notes the extension to Lp norms: raise coordinates to the p-th power and
//! keep the same machinery, since the 1/p root does not change rankings).
//! This module provides both flavours plus the ratio-vector convenience used
//! everywhere else in the crate.

use eclipse_geom::point::Point;

/// The weighted sum `S(p) = Σ_i w[i]·p[i]` for a full weight vector `w`
/// (length `d`, typically with `w[d] = 1`).
///
/// # Panics
/// Panics if `weights.len() != p.dim()`.
pub fn score_with_weights(p: &Point, weights: &[f64]) -> f64 {
    p.weighted_sum(weights)
}

/// The weighted sum for an attribute weight *ratio* vector
/// `r = ⟨r[1], …, r[d−1]⟩` with the implicit `w[d] = 1`:
/// `S(p)_r = Σ_j r[j]·p[j] + p[d]`.
///
/// # Panics
/// Panics if `ratios.len() + 1 != p.dim()`.
pub fn score_with_ratios(p: &Point, ratios: &[f64]) -> f64 {
    eclipse_geom::dual::score(p, ratios)
}

/// The Lp-norm generalization of footnote 2:
/// `S_p(x) = Σ_i w[i]·x[i]^p` (the 1/p root is omitted since it is monotone
/// and does not affect any ranking or dominance decision).
///
/// # Panics
/// Panics if `weights.len() != x.dim()`, or if `p_norm < 1.0`.
pub fn score_lp(x: &Point, weights: &[f64], p_norm: f64) -> f64 {
    assert_eq!(
        weights.len(),
        x.dim(),
        "weight vector must match dimensionality"
    );
    assert!(p_norm >= 1.0, "Lp scoring requires p ≥ 1");
    x.coords()
        .iter()
        .zip(weights.iter())
        .map(|(c, w)| w * c.abs().powf(p_norm))
        .sum()
}

/// Scores every point of a dataset for a ratio vector, returning the scores
/// in dataset order.  Convenience used by the algorithms and the benchmarks.
pub fn score_all(points: &[Point], ratios: &[f64]) -> Vec<f64> {
    points
        .iter()
        .map(|p| score_with_ratios(p, ratios))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    #[test]
    fn weighted_and_ratio_scores_agree() {
        let x = p(&[4.0, 4.0]);
        assert_eq!(score_with_weights(&x, &[2.0, 1.0]), 12.0);
        assert_eq!(score_with_ratios(&x, &[2.0]), 12.0);
        // Example 2 of the paper: S(p2)_{1/4} = 5, S(p4)_{1/4} = 7.
        assert_eq!(score_with_ratios(&p(&[4.0, 4.0]), &[0.25]), 5.0);
        assert_eq!(score_with_ratios(&p(&[8.0, 5.0]), &[0.25]), 7.0);
        assert_eq!(score_with_ratios(&p(&[8.0, 5.0]), &[2.0]), 21.0);
    }

    #[test]
    fn lp_scoring_reduces_to_l1_for_p1() {
        let x = p(&[2.0, 3.0]);
        assert_eq!(
            score_lp(&x, &[1.0, 2.0], 1.0),
            score_with_weights(&x, &[1.0, 2.0])
        );
        // L2 (squared): 1*4 + 2*9 = 22.
        assert_eq!(score_lp(&x, &[1.0, 2.0], 2.0), 22.0);
    }

    #[test]
    fn lp_ranking_consistency() {
        // Footnote 2: rankings under Lp are the rankings of the powered
        // coordinates; verify that scaling weights preserves the argmin.
        let a = p(&[1.0, 3.0]);
        let b = p(&[2.0, 2.0]);
        for p_norm in [1.0, 2.0, 3.0] {
            let sa = score_lp(&a, &[1.0, 1.0], p_norm);
            let sb = score_lp(&b, &[1.0, 1.0], p_norm);
            let sa2 = score_lp(&a, &[10.0, 10.0], p_norm);
            let sb2 = score_lp(&b, &[10.0, 10.0], p_norm);
            assert_eq!(sa < sb, sa2 < sb2);
        }
    }

    #[test]
    fn score_all_matches_individual_scores() {
        let pts = vec![p(&[1.0, 6.0]), p(&[4.0, 4.0]), p(&[6.0, 1.0])];
        assert_eq!(score_all(&pts, &[2.0]), vec![8.0, 12.0, 13.0]);
        assert!(score_all(&[], &[2.0]).is_empty());
    }

    #[test]
    #[should_panic(expected = "p ≥ 1")]
    fn lp_rejects_sub_one_norms() {
        let _ = score_lp(&p(&[1.0]), &[1.0], 0.5);
    }
}
