//! Attribute weight ratios and weight-ratio boxes.
//!
//! An eclipse query is parameterized by an attribute weight ratio vector
//! `r = ⟨r[1], …, r[d−1]⟩` with `r[j] = w[j] / w[d]`, each component
//! constrained to a user-specified range `[l_j, h_j]` (Definition 3).  A
//! [`WeightRatioBox`] is the Cartesian product of those ranges; the classic
//! operators fall out as special cases ([`WeightRatioBox::exact`] → 1NN,
//! [`WeightRatioBox::skyline`] → skyline).

use serde::{Deserialize, Serialize};

use eclipse_geom::point::BoundingBox;

use crate::error::{EclipseError, Result};

/// A closed range `[lo, hi]` for a single attribute weight ratio.
/// `hi` may be `f64::INFINITY` to express the skyline-style unbounded range.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RatioRange {
    lo: f64,
    hi: f64,
}

impl RatioRange {
    /// Creates a range after validating `0 ≤ lo ≤ hi` and that `lo` is finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !lo.is_finite() || lo < 0.0 {
            return Err(EclipseError::InvalidRatioRange {
                index: 0,
                reason: format!("lower bound {lo} must be finite and non-negative"),
            });
        }
        if hi.is_nan() || hi < lo {
            return Err(EclipseError::InvalidRatioRange {
                index: 0,
                reason: format!("upper bound {hi} must be ≥ lower bound {lo}"),
            });
        }
        Ok(RatioRange { lo, hi })
    }

    /// The degenerate range `[v, v]` (1NN-style exact preference).
    pub fn exact(v: f64) -> Result<Self> {
        Self::new(v, v)
    }

    /// The unbounded range `[0, +∞)` (skyline-style indifference).
    pub fn unbounded() -> Self {
        RatioRange {
            lo: 0.0,
            hi: f64::INFINITY,
        }
    }

    /// Lower bound `l_j`.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound `h_j` (possibly `+∞`).
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// `true` when `lo == hi`.
    pub fn is_exact(&self) -> bool {
        self.lo == self.hi
    }

    /// `true` when the upper bound is infinite.
    pub fn is_unbounded(&self) -> bool {
        self.hi.is_infinite()
    }

    /// `true` when `v` lies in the closed range.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// Width of the range (`+∞` for unbounded ranges).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// The Cartesian product of the `d−1` ratio ranges of an eclipse query over a
/// `d`-dimensional dataset.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WeightRatioBox {
    ranges: Vec<RatioRange>,
}

impl WeightRatioBox {
    /// Creates a box from explicit per-attribute ranges (`d − 1` of them for a
    /// `d`-dimensional dataset).
    pub fn new(ranges: Vec<RatioRange>) -> Result<Self> {
        if ranges.is_empty() {
            return Err(EclipseError::InvalidRatioRange {
                index: 0,
                reason: "a weight-ratio box needs at least one range (d ≥ 2)".to_string(),
            });
        }
        Ok(WeightRatioBox { ranges })
    }

    /// Creates a box from raw `(lo, hi)` pairs.
    pub fn from_bounds(bounds: &[(f64, f64)]) -> Result<Self> {
        let ranges = bounds
            .iter()
            .enumerate()
            .map(|(index, &(lo, hi))| {
                RatioRange::new(lo, hi).map_err(|e| match e {
                    EclipseError::InvalidRatioRange { reason, .. } => {
                        EclipseError::InvalidRatioRange { index, reason }
                    }
                    other => other,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Self::new(ranges)
    }

    /// The same range `[lo, hi]` on every one of the `d − 1` ratios — the
    /// setting `r[1] = … = r[d−1]` used throughout the paper's evaluation.
    pub fn uniform(dim: usize, lo: f64, hi: f64) -> Result<Self> {
        if dim < 2 {
            return Err(EclipseError::InvalidRatioRange {
                index: 0,
                reason: format!("dataset dimensionality must be ≥ 2, got {dim}"),
            });
        }
        let r = RatioRange::new(lo, hi)?;
        Ok(WeightRatioBox {
            ranges: vec![r; dim - 1],
        })
    }

    /// The 1NN instantiation `[l_j, l_j]` from an exact ratio vector.
    pub fn exact(ratios: &[f64]) -> Result<Self> {
        let ranges = ratios
            .iter()
            .enumerate()
            .map(|(index, &v)| {
                RatioRange::exact(v).map_err(|e| match e {
                    EclipseError::InvalidRatioRange { reason, .. } => {
                        EclipseError::InvalidRatioRange { index, reason }
                    }
                    other => other,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Self::new(ranges)
    }

    /// The skyline instantiation `[0, +∞)^{d−1}`.
    pub fn skyline(dim: usize) -> Result<Self> {
        if dim < 2 {
            return Err(EclipseError::InvalidRatioRange {
                index: 0,
                reason: format!("dataset dimensionality must be ≥ 2, got {dim}"),
            });
        }
        Ok(WeightRatioBox {
            ranges: vec![RatioRange::unbounded(); dim - 1],
        })
    }

    /// The per-ratio ranges.
    pub fn ranges(&self) -> &[RatioRange] {
        &self.ranges
    }

    /// Number of ratios (`d − 1`).
    pub fn num_ratios(&self) -> usize {
        self.ranges.len()
    }

    /// Dataset dimensionality `d` this box applies to.
    pub fn dim(&self) -> usize {
        self.ranges.len() + 1
    }

    /// `true` when every range is degenerate (the 1NN instantiation).
    pub fn is_exact(&self) -> bool {
        self.ranges.iter().all(RatioRange::is_exact)
    }

    /// `true` when at least one range has an infinite upper bound.
    pub fn has_unbounded_range(&self) -> bool {
        self.ranges.iter().any(RatioRange::is_unbounded)
    }

    /// `true` when every range is `[0, +∞)` (the skyline instantiation).
    pub fn is_skyline(&self) -> bool {
        self.ranges
            .iter()
            .all(|r| r.lo() == 0.0 && r.is_unbounded())
    }

    /// `true` when the ratio vector `r` lies inside the box.
    pub fn contains(&self, r: &[f64]) -> bool {
        r.len() == self.num_ratios()
            && self
                .ranges
                .iter()
                .zip(r.iter())
                .all(|(rg, v)| rg.contains(*v))
    }

    /// The lower corner `(l_1, …, l_{d−1})`.
    pub fn lower_corner(&self) -> Vec<f64> {
        self.ranges.iter().map(RatioRange::lo).collect()
    }

    /// The upper corner `(h_1, …, h_{d−1})`.  Contains `+∞` entries for
    /// unbounded ranges.
    pub fn upper_corner(&self) -> Vec<f64> {
        self.ranges.iter().map(RatioRange::hi).collect()
    }

    /// All `2^{d−1}` corner ratio vectors of the box — the *domination
    /// vectors* of Theorem 2 (without the trailing `w[d] = 1`).
    ///
    /// # Errors
    /// Returns [`EclipseError::Unsupported`] when a range is unbounded (the
    /// corner enumeration needs finite bounds; use
    /// [`crate::dominance::eclipse_dominates`] which handles unbounded ranges
    /// analytically, or instantiate skyline directly).
    pub fn corner_ratios(&self) -> Result<Vec<Vec<f64>>> {
        if self.has_unbounded_range() {
            return Err(EclipseError::Unsupported(
                "corner enumeration requires finite ratio ranges".to_string(),
            ));
        }
        let k = self.num_ratios();
        let mut out = Vec::with_capacity(1 << k);
        for mask in 0u64..(1u64 << k) {
            let corner: Vec<f64> = self
                .ranges
                .iter()
                .enumerate()
                .map(|(j, r)| if mask & (1 << j) != 0 { r.hi() } else { r.lo() })
                .collect();
            out.push(corner);
        }
        Ok(out)
    }

    /// The `d` carefully chosen domination ratio vectors of Theorem 6: the
    /// all-lower corner plus, for every `j`, the corner with `r[j] = h_j` and
    /// every other ratio at its lower bound.  These are the rows used by the
    /// transformation-based algorithm's mapping.
    ///
    /// # Errors
    /// Same finiteness requirement as [`WeightRatioBox::corner_ratios`].
    pub fn canonical_ratios(&self) -> Result<Vec<Vec<f64>>> {
        if self.has_unbounded_range() {
            return Err(EclipseError::Unsupported(
                "the transformation mapping requires finite ratio ranges".to_string(),
            ));
        }
        let k = self.num_ratios();
        let lower = self.lower_corner();
        let mut out = Vec::with_capacity(k + 1);
        out.push(lower.clone());
        for j in 0..k {
            let mut row = lower.clone();
            row[j] = self.ranges[j].hi();
            out.push(row);
        }
        Ok(out)
    }

    /// The corner ratio vectors as full weight vectors (with the trailing
    /// `w[d] = 1`) — the paper's domination vectors.
    pub fn domination_vectors(&self) -> Result<Vec<Vec<f64>>> {
        Ok(self
            .corner_ratios()?
            .into_iter()
            .map(|mut r| {
                r.push(1.0);
                r
            })
            .collect())
    }

    /// The box as an axis-aligned [`BoundingBox`] in ratio space.
    ///
    /// # Errors
    /// Requires finite ranges.
    pub fn as_bounding_box(&self) -> Result<BoundingBox> {
        if self.has_unbounded_range() {
            return Err(EclipseError::Unsupported(
                "a BoundingBox in ratio space requires finite ratio ranges".to_string(),
            ));
        }
        Ok(BoundingBox::new(self.lower_corner(), self.upper_corner()))
    }

    /// Widens every range by the multiplicative `margin` (e.g. `0.25` turns an
    /// exact ratio `r` into `[r·0.75, r·1.25]`) — the "relaxed kNN weights"
    /// usage suggested in the paper's introduction.
    pub fn relaxed(ratios: &[f64], margin: f64) -> Result<Self> {
        if !(0.0..1.0).contains(&margin) {
            return Err(EclipseError::InvalidRatioRange {
                index: 0,
                reason: format!("margin {margin} must lie in [0, 1)"),
            });
        }
        let bounds: Vec<(f64, f64)> = ratios
            .iter()
            .map(|&r| (r * (1.0 - margin), r * (1.0 + margin)))
            .collect();
        Self::from_bounds(&bounds)
    }
}

impl std::fmt::Display for WeightRatioBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r ∈ ")?;
        for (i, r) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, " × ")?;
            }
            if r.is_unbounded() {
                write!(f, "[{}, +∞)", r.lo())?;
            } else {
                write!(f, "[{}, {}]", r.lo(), r.hi())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_range_validation() {
        assert!(RatioRange::new(0.25, 2.0).is_ok());
        assert!(RatioRange::new(2.0, 0.25).is_err());
        assert!(RatioRange::new(-1.0, 2.0).is_err());
        assert!(RatioRange::new(f64::NAN, 2.0).is_err());
        assert!(RatioRange::new(1.0, f64::NAN).is_err());
        assert!(RatioRange::new(f64::INFINITY, f64::INFINITY).is_err());
        let r = RatioRange::new(0.25, 2.0).unwrap();
        assert_eq!(r.lo(), 0.25);
        assert_eq!(r.hi(), 2.0);
        assert!(r.contains(1.0));
        assert!(!r.contains(3.0));
        assert!((r.width() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn exact_and_unbounded_ranges() {
        let e = RatioRange::exact(2.0).unwrap();
        assert!(e.is_exact());
        assert!(!e.is_unbounded());
        let u = RatioRange::unbounded();
        assert!(u.is_unbounded());
        assert!(u.contains(1e12));
        assert!(u.width().is_infinite());
    }

    #[test]
    fn box_constructors_and_instantiations() {
        let b = WeightRatioBox::uniform(3, 0.36, 2.75).unwrap();
        assert_eq!(b.dim(), 3);
        assert_eq!(b.num_ratios(), 2);
        assert!(!b.is_exact());
        assert!(!b.is_skyline());

        let nn = WeightRatioBox::exact(&[2.0]).unwrap();
        assert!(nn.is_exact());
        assert_eq!(nn.dim(), 2);

        let sky = WeightRatioBox::skyline(4).unwrap();
        assert!(sky.is_skyline());
        assert!(sky.has_unbounded_range());
        assert_eq!(sky.dim(), 4);

        assert!(WeightRatioBox::uniform(1, 0.0, 1.0).is_err());
        assert!(WeightRatioBox::skyline(1).is_err());
        assert!(WeightRatioBox::new(vec![]).is_err());
    }

    #[test]
    fn corners_match_paper_example() {
        // d = 2, r ∈ [1/4, 2] (Figure 3): corners are the two domination
        // vectors <1/4, 1> and <2, 1>.
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        let corners = b.corner_ratios().unwrap();
        assert_eq!(corners, vec![vec![0.25], vec![2.0]]);
        let dv = b.domination_vectors().unwrap();
        assert_eq!(dv, vec![vec![0.25, 1.0], vec![2.0, 1.0]]);
    }

    #[test]
    fn corner_count_is_two_to_the_d_minus_one() {
        for d in 2..=6usize {
            let b = WeightRatioBox::uniform(d, 0.5, 1.5).unwrap();
            assert_eq!(b.corner_ratios().unwrap().len(), 1 << (d - 1));
        }
    }

    #[test]
    fn canonical_ratios_are_d_rows() {
        let b = WeightRatioBox::from_bounds(&[(0.5, 2.0), (0.25, 4.0)]).unwrap();
        let rows = b.canonical_ratios().unwrap();
        // d = 3 rows: (l1, l2), (h1, l2), (l1, h2).
        assert_eq!(rows, vec![vec![0.5, 0.25], vec![2.0, 0.25], vec![0.5, 4.0]]);
    }

    #[test]
    fn unbounded_boxes_reject_corner_enumeration() {
        let sky = WeightRatioBox::skyline(3).unwrap();
        assert!(sky.corner_ratios().is_err());
        assert!(sky.canonical_ratios().is_err());
        assert!(sky.as_bounding_box().is_err());
    }

    #[test]
    fn containment_and_corners() {
        let b = WeightRatioBox::from_bounds(&[(0.5, 2.0), (0.25, 4.0)]).unwrap();
        assert!(b.contains(&[1.0, 1.0]));
        assert!(!b.contains(&[3.0, 1.0]));
        assert!(!b.contains(&[1.0]));
        assert_eq!(b.lower_corner(), vec![0.5, 0.25]);
        assert_eq!(b.upper_corner(), vec![2.0, 4.0]);
        let bb = b.as_bounding_box().unwrap();
        assert_eq!(bb.lo(), &[0.5, 0.25]);
        assert_eq!(bb.hi(), &[2.0, 4.0]);
    }

    #[test]
    fn relaxed_box_around_exact_weights() {
        let b = WeightRatioBox::relaxed(&[2.0, 1.0], 0.25).unwrap();
        assert_eq!(b.ranges()[0].lo(), 1.5);
        assert_eq!(b.ranges()[0].hi(), 2.5);
        assert_eq!(b.ranges()[1].lo(), 0.75);
        assert_eq!(b.ranges()[1].hi(), 1.25);
        assert!(WeightRatioBox::relaxed(&[2.0], 1.5).is_err());
    }

    #[test]
    fn display_formats_ranges() {
        let b = WeightRatioBox::uniform(3, 0.36, 2.75).unwrap();
        assert_eq!(format!("{b}"), "r ∈ [0.36, 2.75] × [0.36, 2.75]");
        let sky = WeightRatioBox::skyline(2).unwrap();
        assert_eq!(format!("{sky}"), "r ∈ [0, +∞)");
    }

    #[test]
    fn error_index_is_reported_for_offending_range() {
        let err = WeightRatioBox::from_bounds(&[(0.5, 2.0), (3.0, 1.0)]).unwrap_err();
        match err {
            EclipseError::InvalidRatioRange { index, .. } => assert_eq!(index, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
