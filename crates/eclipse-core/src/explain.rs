//! Query explanation utilities.
//!
//! Eclipse answers are easier to trust when the system can say *why* a point
//! is (or is not) part of the result:
//!
//! * [`dominators_of`] — for a non-result point, the eclipse points that
//!   eclipse-dominate it (its "witnesses");
//! * [`winner_intervals_2d`] — for two-dimensional data, the partition of the
//!   query ratio range `[l, h]` into maximal sub-intervals together with the
//!   1NN winner of each sub-interval.  Every winner is an eclipse point, and
//!   every eclipse point that is strictly best somewhere shows up, so this is
//!   a complete "which preference would pick which result" explanation — the
//!   dual-space Order Vector machinery of §IV-A repurposed for provenance.

use eclipse_geom::approx::EPS;
use eclipse_geom::arrangement::intersection_events;
use eclipse_geom::hyperplane::DualLine;
use eclipse_geom::point::Point;

use crate::dominance::eclipse_dominates;
use crate::error::{EclipseError, Result};
use crate::exec::ExecutionContext;
use crate::score::score_with_ratios;
use crate::weights::WeightRatioBox;

/// The eclipse points dominating `target` under the given ratio box
/// (ascending indices).  Empty exactly when `target` is itself an eclipse
/// point.
///
/// # Panics
/// Panics if `target` is out of range.
pub fn dominators_of(points: &[Point], target: usize, ratio_box: &WeightRatioBox) -> Vec<usize> {
    assert!(target < points.len(), "target index out of range");
    (0..points.len())
        .filter(|&j| j != target && eclipse_dominates(&points[j], &points[target], ratio_box))
        .collect()
}

/// Datasets below this size are scanned serially even with a wide context.
const PARALLEL_SCAN_CUTOFF: usize = 4096;

/// [`dominators_of`] with the dominance scan fanned out over the execution
/// context's pool (chunked, order preserving — the result is identical to
/// the serial scan).
///
/// # Panics
/// Panics if `target` is out of range.
pub fn dominators_of_with(
    points: &[Point],
    target: usize,
    ratio_box: &WeightRatioBox,
    ctx: &ExecutionContext,
) -> Vec<usize> {
    assert!(target < points.len(), "target index out of range");
    if ctx.threads() <= 1 || points.len() < PARALLEL_SCAN_CUTOFF {
        return dominators_of(points, target, ratio_box);
    }
    let chunk = points.len().div_ceil(ctx.threads() * 4).max(1);
    ctx.pool()
        .par_chunks(points, chunk, |offset, block| {
            block
                .iter()
                .enumerate()
                .filter(|&(k, q)| {
                    offset + k != target && eclipse_dominates(q, &points[target], ratio_box)
                })
                .map(|(k, _)| offset + k)
                .collect::<Vec<usize>>()
        })
        .concat()
}

/// One maximal sub-interval of the query ratio range with a constant 1NN
/// winner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WinnerInterval {
    /// Lower end of the ratio sub-interval.
    pub from_ratio: f64,
    /// Upper end of the ratio sub-interval.
    pub to_ratio: f64,
    /// Index (into the original dataset) of the 1NN winner throughout the
    /// sub-interval.
    pub winner: usize,
}

/// Partitions the 2-D query ratio range into maximal sub-intervals with a
/// constant 1NN winner (ties broken towards the smaller dataset index).
///
/// # Errors
/// * [`EclipseError::EmptyDataset`] for an empty dataset.
/// * [`EclipseError::DimensionMismatch`] if the data or the box is not 2-D.
/// * [`EclipseError::Unsupported`] for unbounded ranges.
pub fn winner_intervals_2d(
    points: &[Point],
    ratio_box: &WeightRatioBox,
) -> Result<Vec<WinnerInterval>> {
    winner_intervals_2d_with(points, ratio_box, &ExecutionContext::default())
}

/// [`winner_intervals_2d`] with an explicit execution context for the
/// underlying eclipse computation.
///
/// # Errors
/// Same as [`winner_intervals_2d`].
pub fn winner_intervals_2d_with(
    points: &[Point],
    ratio_box: &WeightRatioBox,
    ctx: &ExecutionContext,
) -> Result<Vec<WinnerInterval>> {
    if points.is_empty() {
        return Err(EclipseError::EmptyDataset);
    }
    if ratio_box.dim() != 2 {
        return Err(EclipseError::DimensionMismatch {
            expected: 2,
            found: ratio_box.dim(),
        });
    }
    for p in points {
        if p.dim() != 2 {
            return Err(EclipseError::DimensionMismatch {
                expected: 2,
                found: p.dim(),
            });
        }
    }
    if ratio_box.has_unbounded_range() {
        return Err(EclipseError::Unsupported(
            "winner intervals require finite ratio ranges".to_string(),
        ));
    }
    let range = ratio_box.ranges()[0];
    let (l, h) = (range.lo(), range.hi());

    // Candidate winners are the eclipse points of the range; their dual-line
    // intersections inside the range are the only places the winner can
    // change.
    let eclipse = crate::algo::transform::eclipse_transform_with(
        points,
        ratio_box,
        crate::algo::transform::SkylineBackend::Auto,
        ctx,
    )?;
    let lines: Vec<DualLine> = eclipse
        .iter()
        .map(|&i| DualLine::from_point(&points[i]))
        .collect();

    // Breakpoints in ratio space: r = -x for every dual intersection whose
    // abscissa x lies in [-h, -l].
    let mut breakpoints: Vec<f64> = intersection_events(&lines)
        .into_iter()
        .filter(|ev| ev.x >= -h - EPS && ev.x <= -l + EPS)
        .map(|ev| -ev.x)
        .collect();
    breakpoints.push(l);
    breakpoints.push(h);
    breakpoints.sort_by(|a, b| a.total_cmp(b));
    breakpoints.dedup_by(|a, b| (*a - *b).abs() <= EPS);

    // The winner at a ratio is the smallest-index eclipse point achieving the
    // minimum score there (ties broken deterministically).
    let winner_at = |r: f64| -> usize {
        let min = eclipse
            .iter()
            .map(|&i| score_with_ratios(&points[i], &[r]))
            .fold(f64::INFINITY, f64::min);
        eclipse
            .iter()
            .copied()
            .find(|&i| score_with_ratios(&points[i], &[r]) <= min + EPS)
            .expect("eclipse result is non-empty for a non-empty dataset")
    };

    let mut out: Vec<WinnerInterval> = Vec::new();
    for w in breakpoints.windows(2) {
        let (from, to) = (w[0], w[1]);
        if to - from <= EPS {
            continue;
        }
        let winner = winner_at(0.5 * (from + to));
        match out.last_mut() {
            Some(last) if last.winner == winner && (last.to_ratio - from).abs() <= EPS => {
                last.to_ratio = to;
            }
            _ => out.push(WinnerInterval {
                from_ratio: from,
                to_ratio: to,
                winner,
            }),
        }
    }
    if out.is_empty() {
        // Degenerate range [l, l]: a single winner.
        out.push(WinnerInterval {
            from_ratio: l,
            to_ratio: h,
            winner: winner_at(l),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    fn paper_points() -> Vec<Point> {
        vec![
            p(&[1.0, 6.0]),
            p(&[4.0, 4.0]),
            p(&[6.0, 1.0]),
            p(&[8.0, 5.0]),
        ]
    }

    #[test]
    fn dominators_match_eclipse_membership() {
        let pts = paper_points();
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        assert!(dominators_of(&pts, 0, &b).is_empty());
        assert!(dominators_of(&pts, 1, &b).is_empty());
        assert!(dominators_of(&pts, 2, &b).is_empty());
        let doms = dominators_of(&pts, 3, &b);
        assert_eq!(doms, vec![0, 1, 2]);
    }

    #[test]
    fn winner_intervals_cover_the_range_and_use_eclipse_points() {
        let pts = paper_points();
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        let intervals = winner_intervals_2d(&pts, &b).unwrap();
        assert!((intervals.first().unwrap().from_ratio - 0.25).abs() < 1e-9);
        assert!((intervals.last().unwrap().to_ratio - 2.0).abs() < 1e-9);
        // Contiguous cover.
        for w in intervals.windows(2) {
            assert!((w[0].to_ratio - w[1].from_ratio).abs() < 1e-9);
        }
        // Every winner is an eclipse point, and every interval's winner truly
        // has the minimum score at the interval midpoint.
        let eclipse = vec![0usize, 1, 2];
        for iv in &intervals {
            assert!(eclipse.contains(&iv.winner));
            let mid = 0.5 * (iv.from_ratio + iv.to_ratio);
            let wscore = score_with_ratios(&pts[iv.winner], &[mid]);
            for &other in &eclipse {
                assert!(wscore <= score_with_ratios(&pts[other], &[mid]) + 1e-9);
            }
        }
        // The cheap hotel p3 wins for small ratios, the close hotel p1 for
        // large ones.
        assert_eq!(intervals.first().unwrap().winner, 2);
        assert_eq!(intervals.last().unwrap().winner, 0);
    }

    #[test]
    fn parallel_dominator_scan_matches_serial() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(213);
        // Above the parallel cutoff so the chunked scan actually engages.
        let pts: Vec<Point> = (0..5000)
            .map(|_| Point::new(vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]))
            .collect();
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        let ctx = ExecutionContext::with_threads(4);
        for target in [0usize, 17, 4999] {
            assert_eq!(
                dominators_of_with(&pts, target, &b, &ctx),
                dominators_of(&pts, target, &b),
                "target {target}"
            );
        }
    }

    #[test]
    fn exact_range_has_a_single_interval() {
        let pts = paper_points();
        let b = WeightRatioBox::exact(&[2.0]).unwrap();
        let intervals = winner_intervals_2d(&pts, &b).unwrap();
        assert_eq!(intervals.len(), 1);
        assert_eq!(intervals[0].winner, 0);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let b2 = WeightRatioBox::uniform(2, 0.5, 1.0).unwrap();
        assert!(matches!(
            winner_intervals_2d(&[], &b2),
            Err(EclipseError::EmptyDataset)
        ));
        let pts3 = vec![p(&[1.0, 2.0, 3.0])];
        assert!(winner_intervals_2d(&pts3, &b2).is_err());
        let b3 = WeightRatioBox::uniform(3, 0.5, 1.0).unwrap();
        assert!(winner_intervals_2d(&paper_points(), &b3).is_err());
        assert!(
            winner_intervals_2d(&paper_points(), &WeightRatioBox::skyline(2).unwrap()).is_err()
        );
    }

    #[test]
    fn every_eclipse_point_that_wins_somewhere_appears() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(212);
        let pts: Vec<Point> = (0..120)
            .map(|_| Point::new(vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]))
            .collect();
        let b = WeightRatioBox::uniform(2, 0.2, 4.0).unwrap();
        let intervals = winner_intervals_2d(&pts, &b).unwrap();
        let winners: std::collections::HashSet<usize> =
            intervals.iter().map(|iv| iv.winner).collect();
        // Each winner must be an eclipse point.
        let eclipse: std::collections::HashSet<usize> = crate::algo::transform::eclipse_transform(
            &pts,
            &b,
            crate::algo::transform::SkylineBackend::Auto,
        )
        .unwrap()
        .into_iter()
        .collect();
        for w in &winners {
            assert!(eclipse.contains(w));
        }
        // The intervals tile [0.2, 4.0].
        assert!((intervals.first().unwrap().from_ratio - 0.2).abs() < 1e-9);
        assert!((intervals.last().unwrap().to_ratio - 4.0).abs() < 1e-9);
    }
}
