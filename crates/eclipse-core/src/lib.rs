//! The eclipse query operator — a flexible generalization of 1NN and skyline.
//!
//! Given a dataset of `n` points in `d` dimensions and a per-dimension
//! attribute-weight-ratio range `r[j] ∈ [l_j, h_j]`, the **eclipse points**
//! are the points that are possible nearest neighbours for *some* linear
//! scoring function whose weight ratios lie in the given box — equivalently
//! the points not eclipse-dominated by any other point (Definition 3 of the
//! paper). Setting `[l, l]` recovers 1NN; setting `[0, +∞)` recovers skyline.
//!
//! Modules:
//!
//! * [`point`], [`weights`], [`score`] — the data model,
//! * [`dominance`] — 1NN-, skyline- and eclipse-dominance predicates,
//! * [`algo`] — the paper's query algorithms: [`algo::baseline`] (Alg. 1),
//!   [`algo::transform`] (Algs. 2–3),
//! * [`index`] — the index-based algorithms of §IV: the 2-D dual-space Order
//!   Vector Index ([`index::dual2d`]) and the d-dimensional Intersection
//!   Index ([`index::ndim`]) with line-quadtree
//!   ([`eclipse_geom::quadtree`]) and cutting-tree
//!   ([`eclipse_geom::cutting`]) backends,
//! * [`prefs`] — user-facing preference specifications (exact weights,
//!   ratio ranges, weight ranges, categorical importance levels),
//! * [`relations`] — relationships between eclipse, 1NN, convex hull and
//!   skyline (Table I / Fig. 4),
//! * [`exec`] — the execution layer: [`exec::ExecutionContext`] (a shared
//!   [`eclipse_exec::ThreadPool`] behind an `Arc`) and per-query
//!   [`exec::QueryOptions`]; parallel skyline backends, the TRAN mapping,
//!   index construction and explanations all fan out over it,
//! * [`query`] — a high-level [`query::EclipseEngine`] facade that owns a
//!   dataset, builds indexes lazily and dispatches to the best algorithm.
//!
//! # Example
//!
//! The running example of the paper (hotels with distance and price):
//!
//! ```
//! use eclipse_core::{EclipseEngine, Point, WeightRatioBox};
//!
//! let hotels = vec![
//!     Point::new(vec![1.0, 6.0]), // p1
//!     Point::new(vec![4.0, 4.0]), // p2
//!     Point::new(vec![6.0, 1.0]), // p3
//!     Point::new(vec![8.0, 5.0]), // p4
//! ];
//! let engine = EclipseEngine::new(hotels)?;
//!
//! // "Distance is between 1/4x and 2x as important as price" (Figure 3).
//! let prefs = WeightRatioBox::uniform(2, 0.25, 2.0)?;
//! assert_eq!(engine.eclipse(&prefs)?, vec![0, 1, 2]);
//!
//! // 1NN and skyline are instantiations of the same operator.
//! assert_eq!(engine.eclipse(&WeightRatioBox::exact(&[2.0])?)?, vec![0]);
//! assert_eq!(engine.eclipse(&WeightRatioBox::skyline(2)?)?, vec![0, 1, 2]);
//! # Ok::<(), eclipse_core::EclipseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod algo;
pub mod dominance;
pub mod error;
pub mod exec;
pub mod explain;
pub mod index;
pub mod prefs;
pub mod query;
pub mod relations;
pub mod score;
pub mod weights;

pub use error::{EclipseError, Result};
pub use exec::{ExecutionContext, QueryOptions};
pub use query::{EclipseEngine, MutationOutcome, MutationSummary};
pub use weights::{RatioRange, WeightRatioBox};

/// Re-export of the point types shared across the workspace.
pub mod point {
    pub use eclipse_geom::point::{BoundingBox, Point};
}
pub use point::Point;
