//! Error type shared by the eclipse-core public API.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, EclipseError>;

/// Errors surfaced by the eclipse-core public API.
///
/// The crate follows the usual Rust database-library convention: *programmer*
/// errors (mismatched dimensionalities inside internal algorithms) are
/// `panic!`/`assert!`ed, while *user input* problems — malformed ratio ranges,
/// empty datasets where a non-empty one is required, unsupported
/// configurations — are reported through this error type.
#[derive(Clone, Debug, PartialEq)]
pub enum EclipseError {
    /// A weight-ratio range was malformed (negative bound, `lo > hi`, NaN…).
    InvalidRatioRange {
        /// Index of the offending ratio (zero-based, i.e. the paper's `j − 1`).
        index: usize,
        /// Human-readable explanation.
        reason: String,
    },
    /// The dimensionality of a query does not match the dataset.
    DimensionMismatch {
        /// Dimensionality expected by the dataset.
        expected: usize,
        /// Dimensionality supplied by the caller.
        found: usize,
    },
    /// The requested operation needs a non-empty dataset.
    EmptyDataset,
    /// The requested operation does not support the supplied configuration
    /// (e.g. an index-based query with unbounded ratio ranges).
    Unsupported(String),
    /// An index snapshot failed to encode, decode or reach disk: bad magic,
    /// an unsupported format version, truncation, checksum or structural
    /// corruption, or an I/O failure on the snapshot file.
    Snapshot(String),
    /// A structurally valid snapshot disagrees with the engine it is being
    /// restored into — different dataset contents or an incompatible index
    /// configuration.  Loading it anyway would serve wrong results, so it is
    /// rejected up front.
    SnapshotMismatch {
        /// Human-readable description of the disagreement.
        reason: String,
    },
}

impl fmt::Display for EclipseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EclipseError::InvalidRatioRange { index, reason } => {
                write!(
                    f,
                    "invalid ratio range for attribute {}: {}",
                    index + 1,
                    reason
                )
            }
            EclipseError::DimensionMismatch { expected, found } => write!(
                f,
                "dimension mismatch: dataset has {expected} dimensions but the query has {found}"
            ),
            EclipseError::EmptyDataset => write!(f, "the operation requires a non-empty dataset"),
            EclipseError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            EclipseError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            EclipseError::SnapshotMismatch { reason } => {
                write!(f, "snapshot mismatch: {reason}")
            }
        }
    }
}

impl std::error::Error for EclipseError {}

impl From<eclipse_persist::PersistError> for EclipseError {
    fn from(e: eclipse_persist::PersistError) -> Self {
        EclipseError::Snapshot(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = EclipseError::InvalidRatioRange {
            index: 0,
            reason: "lo > hi".to_string(),
        };
        assert!(e.to_string().contains("attribute 1"));
        assert!(e.to_string().contains("lo > hi"));

        let e = EclipseError::DimensionMismatch {
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('2'));

        assert!(EclipseError::EmptyDataset.to_string().contains("non-empty"));
        assert!(EclipseError::Unsupported("x".into())
            .to_string()
            .contains('x'));
        assert!(EclipseError::Snapshot("bad magic".into())
            .to_string()
            .contains("bad magic"));
        assert!(EclipseError::SnapshotMismatch {
            reason: "different dataset".into()
        }
        .to_string()
        .contains("mismatch"));
    }

    #[test]
    fn persist_errors_convert_to_snapshot_errors() {
        let e = EclipseError::from(eclipse_persist::PersistError::BadMagic);
        assert!(matches!(e, EclipseError::Snapshot(m) if m.contains("magic")));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&EclipseError::EmptyDataset);
    }
}
