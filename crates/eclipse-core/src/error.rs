//! Error type shared by the eclipse-core public API.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, EclipseError>;

/// Errors surfaced by the eclipse-core public API.
///
/// The crate follows the usual Rust database-library convention: *programmer*
/// errors (mismatched dimensionalities inside internal algorithms) are
/// `panic!`/`assert!`ed, while *user input* problems — malformed ratio ranges,
/// empty datasets where a non-empty one is required, unsupported
/// configurations — are reported through this error type.
#[derive(Clone, Debug, PartialEq)]
pub enum EclipseError {
    /// A weight-ratio range was malformed (negative bound, `lo > hi`, NaN…).
    InvalidRatioRange {
        /// Index of the offending ratio (zero-based, i.e. the paper's `j − 1`).
        index: usize,
        /// Human-readable explanation.
        reason: String,
    },
    /// The dimensionality of a query does not match the dataset.
    DimensionMismatch {
        /// Dimensionality expected by the dataset.
        expected: usize,
        /// Dimensionality supplied by the caller.
        found: usize,
    },
    /// The requested operation needs a non-empty dataset.
    EmptyDataset,
    /// The requested operation does not support the supplied configuration
    /// (e.g. an index-based query with unbounded ratio ranges).
    Unsupported(String),
}

impl fmt::Display for EclipseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EclipseError::InvalidRatioRange { index, reason } => {
                write!(
                    f,
                    "invalid ratio range for attribute {}: {}",
                    index + 1,
                    reason
                )
            }
            EclipseError::DimensionMismatch { expected, found } => write!(
                f,
                "dimension mismatch: dataset has {expected} dimensions but the query has {found}"
            ),
            EclipseError::EmptyDataset => write!(f, "the operation requires a non-empty dataset"),
            EclipseError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
        }
    }
}

impl std::error::Error for EclipseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = EclipseError::InvalidRatioRange {
            index: 0,
            reason: "lo > hi".to_string(),
        };
        assert!(e.to_string().contains("attribute 1"));
        assert!(e.to_string().contains("lo > hi"));

        let e = EclipseError::DimensionMismatch {
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('2'));

        assert!(EclipseError::EmptyDataset.to_string().contains("non-empty"));
        assert!(EclipseError::Unsupported("x".into())
            .to_string()
            .contains('x'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&EclipseError::EmptyDataset);
    }
}
