//! Relationships between eclipse, 1NN, convex hull and skyline
//! (Table I and Figure 4 of the paper).
//!
//! * 1NN returns the single best point for one exact linear scoring function;
//! * the convex-hull query returns the points that are best for *some* linear
//!   scoring function;
//! * skyline returns the points that are best for *some monotone* scoring
//!   function;
//! * eclipse returns the points that are best for some linear scoring
//!   function whose weight ratios lie in the user's box.
//!
//! Consequently `1NN ⊆ eclipse ⊆ skyline`, `1NN ⊆ hull ⊆ skyline`, and
//! eclipse generally contains hull points *and* non-hull points (Figure 4).
//! [`RelationReport`] materializes all four result sets over a dataset so the
//! inclusions can be inspected (and are asserted by the integration tests).

use eclipse_geom::point::Point;
use eclipse_skyline::hull::hull_query_lp;
use eclipse_skyline::knn::{nn_linear, ratio_to_weights};

use crate::algo::transform::{eclipse_transform, SkylineBackend};
use crate::error::Result;
use crate::weights::WeightRatioBox;

/// The four related result sets over one dataset (all as ascending index
/// vectors into the dataset).
#[derive(Clone, Debug, PartialEq)]
pub struct RelationReport {
    /// The 1NN winner for the ratio box's lower corner (representative exact
    /// preference), if the dataset is non-empty.
    pub nn: Option<usize>,
    /// The eclipse points for the given ratio box.
    pub eclipse: Vec<usize>,
    /// The convex-hull-query points (origin's view).
    pub convex_hull: Vec<usize>,
    /// The skyline points.
    pub skyline: Vec<usize>,
}

impl RelationReport {
    /// Computes all four result sets.
    ///
    /// # Errors
    /// Propagates errors from the eclipse computation (e.g. unbounded ranges).
    pub fn compute(points: &[Point], ratio_box: &WeightRatioBox) -> Result<Self> {
        let eclipse = eclipse_transform(points, ratio_box, SkylineBackend::Auto)?;
        let skyline = eclipse_skyline::dc::skyline_dc(points);
        let convex_hull = hull_query_lp(points);
        let nn = nn_linear(points, &ratio_to_weights(&ratio_box.lower_corner())).map(|n| n.index);
        Ok(RelationReport {
            nn,
            eclipse,
            convex_hull,
            skyline,
        })
    }

    /// `true` when every eclipse point is a skyline point.
    pub fn eclipse_subset_of_skyline(&self) -> bool {
        is_subset(&self.eclipse, &self.skyline)
    }

    /// `true` when every convex-hull-query point is a skyline point.
    pub fn hull_subset_of_skyline(&self) -> bool {
        is_subset(&self.convex_hull, &self.skyline)
    }

    /// `true` when the 1NN winner (if any) is an eclipse point — holds
    /// whenever the exact preference used for 1NN lies inside the ratio box.
    pub fn nn_in_eclipse(&self) -> bool {
        self.nn.is_none_or(|i| self.eclipse.contains(&i))
    }

    /// `true` when the 1NN winner (if any) is a convex-hull-query point.
    pub fn nn_in_hull(&self) -> bool {
        self.nn.is_none_or(|i| self.convex_hull.contains(&i))
    }

    /// Eclipse points that are *not* convex-hull points — the region of
    /// Figure 4 where eclipse exceeds the hull.
    pub fn eclipse_only(&self) -> Vec<usize> {
        self.eclipse
            .iter()
            .copied()
            .filter(|i| !self.convex_hull.contains(i))
            .collect()
    }
}

fn is_subset(a: &[usize], b: &[usize]) -> bool {
    let set: std::collections::HashSet<usize> = b.iter().copied().collect();
    a.iter().all(|i| set.contains(i))
}

/// Verifies the instantiation claims of §II-C on a dataset: eclipse with a
/// degenerate box equals the 1NN winner set, and eclipse with a huge box
/// approaches the skyline.  Returns `(nn_matches, skyline_matches)`.
///
/// # Errors
/// Propagates errors from the eclipse computations.
pub fn verify_instantiations(points: &[Point], exact_ratio: &[f64]) -> Result<(bool, bool)> {
    if points.is_empty() {
        return Ok((true, true));
    }
    let d = points[0].dim();

    // 1NN instantiation: the eclipse result for [l, l] is the set of points
    // with the minimal score, which contains the 1NN winner.
    let nn_box = WeightRatioBox::exact(exact_ratio)?;
    let nn_eclipse = eclipse_transform(points, &nn_box, SkylineBackend::Auto)?;
    let winner = nn_linear(points, &ratio_to_weights(exact_ratio))
        .expect("non-empty dataset has a 1NN winner");
    let nn_matches = nn_eclipse.contains(&winner.index);

    // Skyline instantiation: a box stretching from ~0 to a huge ratio returns
    // exactly the skyline for datasets in general position.
    let huge = WeightRatioBox::uniform(d, 1e-7, 1e7)?;
    let skyline_like = eclipse_transform(points, &huge, SkylineBackend::Auto)?;
    let skyline = eclipse_skyline::dc::skyline_dc(points);
    let skyline_matches = skyline_like == skyline;

    Ok((nn_matches, skyline_matches))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    fn paper_points() -> Vec<Point> {
        vec![
            p(&[1.0, 6.0]),
            p(&[4.0, 4.0]),
            p(&[6.0, 1.0]),
            p(&[8.0, 5.0]),
        ]
    }

    #[test]
    fn paper_example_relationships() {
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        let r = RelationReport::compute(&paper_points(), &b).unwrap();
        assert_eq!(r.eclipse, vec![0, 1, 2]);
        assert_eq!(r.skyline, vec![0, 1, 2]);
        assert_eq!(r.convex_hull, vec![0, 2]);
        assert!(r.eclipse_subset_of_skyline());
        assert!(r.hull_subset_of_skyline());
        assert!(r.nn_in_eclipse());
        assert!(r.nn_in_hull());
        // p2 is an eclipse point that is not on the convex hull (Figure 4's
        // "eclipse beyond hull" region).
        assert_eq!(r.eclipse_only(), vec![1]);
    }

    #[test]
    fn inclusions_hold_on_random_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(91);
        for d in 2..=4usize {
            let pts: Vec<Point> = (0..120)
                .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
                .collect();
            let b = WeightRatioBox::uniform(d, 0.36, 2.75).unwrap();
            let r = RelationReport::compute(&pts, &b).unwrap();
            assert!(r.eclipse_subset_of_skyline(), "d = {d}");
            assert!(r.hull_subset_of_skyline(), "d = {d}");
            assert!(r.nn_in_eclipse(), "d = {d}");
            assert!(r.nn_in_hull(), "d = {d}");
        }
    }

    #[test]
    fn instantiations_on_paper_example() {
        let (nn_ok, sky_ok) = verify_instantiations(&paper_points(), &[2.0]).unwrap();
        assert!(nn_ok);
        assert!(sky_ok);
        // Empty dataset trivially verifies.
        assert_eq!(verify_instantiations(&[], &[2.0]).unwrap(), (true, true));
    }

    #[test]
    fn instantiations_on_random_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(92);
        for d in 2..=4usize {
            let pts: Vec<Point> = (0..150)
                .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.1..1.0)).collect()))
                .collect();
            let ratio = vec![1.3; d - 1];
            let (nn_ok, sky_ok) = verify_instantiations(&pts, &ratio).unwrap();
            assert!(nn_ok, "d = {d}");
            assert!(sky_ok, "d = {d}");
        }
    }

    #[test]
    fn narrow_box_eclipse_is_between_nn_and_skyline_in_size() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(93);
        let pts: Vec<Point> = (0..300)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        let narrow = WeightRatioBox::uniform(3, 0.84, 1.19).unwrap();
        let wide = WeightRatioBox::uniform(3, 0.18, 5.67).unwrap();
        let r_narrow = RelationReport::compute(&pts, &narrow).unwrap();
        let r_wide = RelationReport::compute(&pts, &wide).unwrap();
        assert!(!r_narrow.eclipse.is_empty());
        assert!(r_narrow.eclipse.len() <= r_wide.eclipse.len());
        assert!(r_wide.eclipse.len() <= r_wide.skyline.len());
    }
}
