//! User-facing preference specifications.
//!
//! The paper's introduction and user study (§V-B) envision three practical
//! ways for a user to express preferences without hand-writing ratio ranges:
//!
//! * an **exact weight vector** relaxed by a margin ("roughly twice as
//!   important, give or take 25 %") — [`PreferenceSpec::RelaxedWeights`],
//! * an explicit **weight range** per attribute with the remaining weight on
//!   the last attribute — [`PreferenceSpec::WeightRange`] (the
//!   "eclipse-weight" system of Table V),
//! * a **categorical importance level** per attribute (very important /
//!   important / similar / unimportant / very unimportant) — the
//!   "eclipse-category" system that won the paper's user study,
//!   [`PreferenceSpec::Categorical`].
//!
//! Every specification lowers to a [`WeightRatioBox`], so the rest of the
//! crate only ever deals with ratio boxes.

use serde::{Deserialize, Serialize};

use crate::error::{EclipseError, Result};
use crate::weights::WeightRatioBox;

/// Categorical importance of an attribute relative to the reference (last)
/// attribute.
///
/// The associated ratio ranges follow the paper's angle-based
/// parameterization (Table IV): the default mapping is chosen so that
/// "similar" covers the narrow range `[0.84, 1.19]` and each step outward
/// roughly triples the band, ending in unbounded ranges at the extremes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImportanceLevel {
    /// The attribute matters much more than the reference attribute.
    VeryImportant,
    /// The attribute matters more than the reference attribute.
    Important,
    /// The attribute matters about as much as the reference attribute.
    Similar,
    /// The attribute matters less than the reference attribute.
    Unimportant,
    /// The attribute matters much less than the reference attribute.
    VeryUnimportant,
}

impl ImportanceLevel {
    /// The ratio range `[l, h]` this level lowers to.
    pub fn ratio_bounds(self) -> (f64, f64) {
        match self {
            ImportanceLevel::VeryImportant => (2.75, f64::INFINITY),
            ImportanceLevel::Important => (1.19, 2.75),
            ImportanceLevel::Similar => (0.84, 1.19),
            ImportanceLevel::Unimportant => (0.36, 0.84),
            ImportanceLevel::VeryUnimportant => (0.0, 0.36),
        }
    }

    /// All levels, from most to least important.
    pub fn all() -> [ImportanceLevel; 5] {
        [
            ImportanceLevel::VeryImportant,
            ImportanceLevel::Important,
            ImportanceLevel::Similar,
            ImportanceLevel::Unimportant,
            ImportanceLevel::VeryUnimportant,
        ]
    }
}

/// A user preference specification that lowers to a [`WeightRatioBox`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PreferenceSpec {
    /// Explicit ratio ranges, passed through unchanged.
    RatioRanges(Vec<(f64, f64)>),
    /// An exact ratio vector relaxed by a multiplicative margin in `[0, 1)`.
    RelaxedWeights {
        /// The "best guess" ratio for each of the first `d − 1` attributes.
        ratios: Vec<f64>,
        /// Multiplicative slack applied on both sides of every ratio.
        margin: f64,
    },
    /// Absolute weight ranges `w[j] ∈ [lo, hi]` for the first `d − 1`
    /// attributes, with the last attribute's weight fixed at `1 − Σ w[j]`
    /// evaluated at the range midpoints (the "eclipse-weight" UI of the user
    /// study, which presents weights that sum to one).
    WeightRange(Vec<(f64, f64)>),
    /// One categorical importance level per non-reference attribute.
    Categorical(Vec<ImportanceLevel>),
}

impl PreferenceSpec {
    /// Lowers the specification to a ratio box for a `d`-dimensional dataset.
    ///
    /// # Errors
    /// Propagates range-validation errors and reports dimension mismatches
    /// when the specification does not provide exactly `d − 1` entries.
    pub fn to_ratio_box(&self, dim: usize) -> Result<WeightRatioBox> {
        let expected = dim.checked_sub(1).filter(|&k| k > 0).ok_or_else(|| {
            EclipseError::Unsupported("preferences require a dataset with d ≥ 2".to_string())
        })?;
        match self {
            PreferenceSpec::RatioRanges(bounds) => {
                check_len(bounds.len(), expected)?;
                WeightRatioBox::from_bounds(bounds)
            }
            PreferenceSpec::RelaxedWeights { ratios, margin } => {
                check_len(ratios.len(), expected)?;
                WeightRatioBox::relaxed(ratios, *margin)
            }
            PreferenceSpec::WeightRange(ranges) => {
                check_len(ranges.len(), expected)?;
                // Convert absolute weights to ratios against the implied last
                // weight.  The last weight is 1 − Σ midpoints; each bound is
                // divided by it, so wider bands stay wider.
                let mid_sum: f64 = ranges.iter().map(|(lo, hi)| 0.5 * (lo + hi)).sum();
                let last_weight = 1.0 - mid_sum;
                if last_weight <= 0.0 {
                    return Err(EclipseError::InvalidRatioRange {
                        index: 0,
                        reason: format!(
                            "weight ranges leave no weight for the last attribute (Σ midpoints = {mid_sum})"
                        ),
                    });
                }
                let bounds: Vec<(f64, f64)> = ranges
                    .iter()
                    .map(|(lo, hi)| (lo / last_weight, hi / last_weight))
                    .collect();
                WeightRatioBox::from_bounds(&bounds)
            }
            PreferenceSpec::Categorical(levels) => {
                check_len(levels.len(), expected)?;
                let bounds: Vec<(f64, f64)> = levels.iter().map(|l| l.ratio_bounds()).collect();
                // Unbounded tops (VeryImportant) are allowed here; callers that
                // need finite boxes (indexes, TRAN) will surface Unsupported,
                // while the engine's skyline/baseline fallbacks handle them.
                let ranges = bounds
                    .iter()
                    .enumerate()
                    .map(|(index, &(lo, hi))| {
                        crate::weights::RatioRange::new(lo, hi).map_err(|e| match e {
                            EclipseError::InvalidRatioRange { reason, .. } => {
                                EclipseError::InvalidRatioRange { index, reason }
                            }
                            other => other,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                WeightRatioBox::new(ranges)
            }
        }
    }
}

fn check_len(found: usize, expected: usize) -> Result<()> {
    if found != expected {
        return Err(EclipseError::DimensionMismatch {
            expected: expected + 1,
            found: found + 1,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn importance_levels_tile_the_positive_ray() {
        // Consecutive levels must share boundaries and jointly cover (0, ∞).
        let levels = ImportanceLevel::all();
        for w in levels.windows(2) {
            // The upper bound of the less-important level equals the lower
            // bound of the more-important one.
            assert_eq!(
                w[1].ratio_bounds().1,
                w[0].ratio_bounds().0,
                "levels must tile: {w:?}"
            );
        }
        assert_eq!(levels[4].ratio_bounds().0, 0.0);
        assert!(levels[0].ratio_bounds().1.is_infinite());
    }

    #[test]
    fn ratio_ranges_pass_through() {
        let spec = PreferenceSpec::RatioRanges(vec![(0.36, 2.75), (0.5, 1.5)]);
        let b = spec.to_ratio_box(3).unwrap();
        assert_eq!(b.ranges()[0].lo(), 0.36);
        assert_eq!(b.ranges()[1].hi(), 1.5);
        assert!(spec.to_ratio_box(2).is_err());
        assert!(spec.to_ratio_box(1).is_err());
    }

    #[test]
    fn relaxed_weights_spec() {
        let spec = PreferenceSpec::RelaxedWeights {
            ratios: vec![2.0],
            margin: 0.25,
        };
        let b = spec.to_ratio_box(2).unwrap();
        assert_eq!(b.ranges()[0].lo(), 1.5);
        assert_eq!(b.ranges()[0].hi(), 2.5);
    }

    #[test]
    fn weight_range_spec_converts_to_ratios() {
        // w1 ∈ [0.3, 0.5] with w2 = 1 − 0.4 = 0.6 ⇒ r1 ∈ [0.5, 0.8333…].
        let spec = PreferenceSpec::WeightRange(vec![(0.3, 0.5)]);
        let b = spec.to_ratio_box(2).unwrap();
        assert!((b.ranges()[0].lo() - 0.5).abs() < 1e-12);
        assert!((b.ranges()[0].hi() - 0.8333333333333334).abs() < 1e-9);
        // Overweighted ranges are rejected.
        let bad = PreferenceSpec::WeightRange(vec![(0.7, 0.9), (0.4, 0.6)]);
        assert!(bad.to_ratio_box(3).is_err());
    }

    #[test]
    fn categorical_spec_produces_expected_bands() {
        let spec = PreferenceSpec::Categorical(vec![
            ImportanceLevel::Similar,
            ImportanceLevel::VeryImportant,
        ]);
        let b = spec.to_ratio_box(3).unwrap();
        assert_eq!(b.ranges()[0].lo(), 0.84);
        assert_eq!(b.ranges()[0].hi(), 1.19);
        assert_eq!(b.ranges()[1].lo(), 2.75);
        assert!(b.ranges()[1].is_unbounded());
        assert!(b.has_unbounded_range());
    }

    #[test]
    fn categorical_narrow_levels_give_finite_boxes() {
        let spec = PreferenceSpec::Categorical(vec![ImportanceLevel::Unimportant]);
        let b = spec.to_ratio_box(2).unwrap();
        assert!(!b.has_unbounded_range());
        assert_eq!(b.ranges()[0].lo(), 0.36);
        assert_eq!(b.ranges()[0].hi(), 0.84);
    }
}
