//! The verbatim two-dimensional Order Vector / Intersection Index of
//! §IV-A (Algorithms 4 and 5).
//!
//! Build (Algorithm 4): compute the skyline points, map each to its dual line
//! `y = p[1]·x − p[2]`, compute the `C(u,2)` pairwise intersection abscissae,
//! sort them into an interval partition of the x-axis, and store for every
//! interval the *order vector* — for each line the number of lines closer to
//! the x-axis inside that interval (Figure 7).
//!
//! Query (Algorithm 5): the query range `r ∈ [l, h]` maps to the dual range
//! `[−h, −l]`; start from the order vector of the interval containing `−l`,
//! replay every intersection whose abscissa lies inside the range by
//! decrementing the dominated line's counter, and report the lines whose
//! counter reaches zero.
//!
//! Two query entry points are provided:
//!
//! * [`OrderVectorIndex2d::query_general_position`] — the paper's Algorithm 5
//!   as written, which assumes general position (no coincident
//!   intersections, no score ties at the query boundary);
//! * [`OrderVectorIndex2d::query`] — the exact variant that re-adjudicates
//!   every replayed pair (same technique as [`super::ndim::EclipseIndex`]),
//!   safe on degenerate inputs.  The two agree on general-position data.

use eclipse_geom::approx::EPS;
use eclipse_geom::arrangement::{
    intersection_events, order_vector_at, IntersectionEvent, IntervalPartition,
};
use eclipse_geom::hyperplane::DualLine;
use eclipse_geom::point::Point;

use crate::error::{EclipseError, Result};
use crate::weights::WeightRatioBox;

/// Above this many skyline points the per-interval order vectors are not
/// materialized (O(u³) memory) and the initial vector is computed on the fly;
/// the structure stays exact either way.
const MAX_MATERIALIZED_U: usize = 256;

/// The 2-D Order Vector Index + Intersection Index of the paper.
#[derive(Clone, Debug)]
pub struct OrderVectorIndex2d {
    /// Indices (into the original dataset) of the skyline points.
    skyline_ids: Vec<usize>,
    /// Dual lines of the skyline points (same order as `skyline_ids`).
    lines: Vec<DualLine>,
    /// All pairwise intersection events, sorted by abscissa.
    events: Vec<IntersectionEvent>,
    /// Interval partition of the x-axis induced by the events.
    partition: IntervalPartition,
    /// Per-interval order vectors (Figure 7), when materialized.
    interval_ovs: Option<Vec<Vec<usize>>>,
}

impl OrderVectorIndex2d {
    /// Builds the index over a two-dimensional dataset (Algorithm 4).
    ///
    /// # Errors
    /// * [`EclipseError::EmptyDataset`] for an empty dataset.
    /// * [`EclipseError::DimensionMismatch`] if any point is not 2-D.
    pub fn build(points: &[Point]) -> Result<Self> {
        if points.is_empty() {
            return Err(EclipseError::EmptyDataset);
        }
        for p in points {
            if p.dim() != 2 {
                return Err(EclipseError::DimensionMismatch {
                    expected: 2,
                    found: p.dim(),
                });
            }
        }
        let skyline_ids = eclipse_skyline::sweep::skyline_2d(points);
        let lines: Vec<DualLine> = skyline_ids
            .iter()
            .map(|&i| DualLine::from_point(&points[i]))
            .collect();
        let events = intersection_events(&lines);
        let partition = IntervalPartition::new(events.iter().map(|e| e.x).collect());
        let interval_ovs = if lines.len() <= MAX_MATERIALIZED_U {
            Some(
                (0..partition.num_intervals())
                    .map(|i| order_vector_at(&lines, partition.representative(i)))
                    .collect(),
            )
        } else {
            None
        };
        Ok(OrderVectorIndex2d {
            skyline_ids,
            lines,
            events,
            partition,
            interval_ovs,
        })
    }

    /// Number of skyline points (`u`).
    pub fn skyline_len(&self) -> usize {
        self.lines.len()
    }

    /// Indices of the skyline points in the original dataset.
    pub fn skyline_ids(&self) -> &[usize] {
        &self.skyline_ids
    }

    /// Number of stored intersections (`C(u, 2)` minus parallel pairs).
    pub fn num_intersections(&self) -> usize {
        self.events.len()
    }

    /// Number of intervals in the Order Vector Index.
    pub fn num_intervals(&self) -> usize {
        self.partition.num_intervals()
    }

    /// The order vector of the interval containing dual abscissa `x`
    /// (exposed for inspection / the worked example of Figure 7).
    pub fn order_vector_for(&self, x: f64) -> Vec<usize> {
        let interval = self.partition.interval_containing(x);
        match &self.interval_ovs {
            Some(ovs) => ovs[interval].clone(),
            None => order_vector_at(&self.lines, self.partition.representative(interval)),
        }
    }

    /// The paper's Algorithm 5, assuming general position: start from the
    /// order vector of the interval containing `−l` and decrement the loser
    /// of every intersection lying inside `[−h, −l]`.
    ///
    /// # Errors
    /// Same validation as [`OrderVectorIndex2d::query`].
    pub fn query_general_position(&self, ratio_box: &WeightRatioBox) -> Result<Vec<usize>> {
        let (l, h) = self.validate(ratio_box)?;
        let initial: Vec<i64> = self
            .order_vector_for(-l)
            .into_iter()
            .map(|c| c as i64)
            .collect();
        let mut ov = initial.clone();
        for ev in &self.events {
            if ev.x >= -h - EPS && ev.x <= -l + EPS {
                // The pair swaps order inside the query range, so whichever
                // line was dominated at −l loses one (would-be) dominator.
                // The decision is made on the *initial* ranking at −l — the
                // quantity Algorithm 5 reasons about — rather than on the
                // partially decremented counters, which would depend on the
                // replay order.
                if initial[ev.a] < initial[ev.b] {
                    ov[ev.b] -= 1;
                } else {
                    ov[ev.a] -= 1;
                }
            }
        }
        let mut out: Vec<usize> = ov
            .iter()
            .enumerate()
            .filter(|(_, &c)| c <= 0)
            .map(|(k, _)| self.skyline_ids[k])
            .collect();
        out.sort_unstable();
        Ok(out)
    }

    /// Exact eclipse query (tie-aware variant of Algorithm 5).
    ///
    /// # Errors
    /// * [`EclipseError::DimensionMismatch`] for a non-2-D box.
    /// * [`EclipseError::Unsupported`] for unbounded ranges.
    pub fn query(&self, ratio_box: &WeightRatioBox) -> Result<Vec<usize>> {
        let (l, h) = self.validate(ratio_box)?;
        let u = self.lines.len();
        // Initial order vector computed exactly at r = l.
        let scores_l: Vec<f64> = self.lines.iter().map(|ln| ln.score_at_ratio(l)).collect();
        let mut sorted = scores_l.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut ov: Vec<i64> = scores_l
            .iter()
            .map(|&s| sorted.partition_point(|&v| v + EPS < s) as i64)
            .collect();
        debug_assert_eq!(ov.len(), u);

        // Replay the intersections lying in the closed dual range [−h, −l],
        // adjudicating each pair exactly over [l, h].
        for ev in &self.events {
            if ev.x < -h - EPS || ev.x > -l + EPS {
                continue;
            }
            let (a, b) = (ev.a, ev.b);
            let fa_l = self.lines[a].score_at_ratio(l) - self.lines[b].score_at_ratio(l);
            let fa_h = self.lines[a].score_at_ratio(h) - self.lines[b].score_at_ratio(h);
            let max_f = fa_l.max(fa_h);
            let min_f = fa_l.min(fa_h);
            let a_dominates_b = max_f <= EPS && min_f < -EPS;
            let b_dominates_a = min_f >= -EPS && max_f > EPS;
            let a_counted = fa_l + EPS < 0.0;
            let b_counted = fa_l > EPS;
            match (a_counted, a_dominates_b) {
                (true, false) => ov[b] -= 1,
                (false, true) => ov[b] += 1,
                _ => {}
            }
            match (b_counted, b_dominates_a) {
                (true, false) => ov[a] -= 1,
                (false, true) => ov[a] += 1,
                _ => {}
            }
        }

        let mut out: Vec<usize> = ov
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 0)
            .map(|(k, _)| self.skyline_ids[k])
            .collect();
        out.sort_unstable();
        Ok(out)
    }

    fn validate(&self, ratio_box: &WeightRatioBox) -> Result<(f64, f64)> {
        if ratio_box.dim() != 2 {
            return Err(EclipseError::DimensionMismatch {
                expected: 2,
                found: ratio_box.dim(),
            });
        }
        if ratio_box.has_unbounded_range() {
            return Err(EclipseError::Unsupported(
                "the 2-D order-vector index requires finite ratio ranges".to_string(),
            ));
        }
        let r = ratio_box.ranges()[0];
        Ok((r.lo(), r.hi()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::baseline::eclipse_baseline;
    use rand::{Rng, SeedableRng};

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    fn paper_points() -> Vec<Point> {
        vec![
            p(&[1.0, 6.0]),
            p(&[4.0, 4.0]),
            p(&[6.0, 1.0]),
            p(&[8.0, 5.0]),
        ]
    }

    #[test]
    fn build_matches_figure7_structure() {
        let idx = OrderVectorIndex2d::build(&paper_points()).unwrap();
        assert_eq!(idx.skyline_len(), 3);
        assert_eq!(idx.num_intersections(), 3);
        assert_eq!(idx.num_intervals(), 4);
        // Figure 7's last interval (−2/3, 0] stores ⟨2, 1, 0⟩.
        assert_eq!(idx.order_vector_for(-0.25), vec![2, 1, 0]);
        assert_eq!(idx.order_vector_for(-2.0), vec![0, 1, 2]);
        assert_eq!(idx.order_vector_for(-1.25), vec![0, 2, 1]);
        assert_eq!(idx.order_vector_for(-0.8), vec![1, 2, 0]);
    }

    #[test]
    fn example5_query_replay() {
        // Example 5: r ∈ [1/4, 2] ends with ov = ⟨0,0,0⟩ — all of p1, p2, p3.
        let idx = OrderVectorIndex2d::build(&paper_points()).unwrap();
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        assert_eq!(idx.query_general_position(&b).unwrap(), vec![0, 1, 2]);
        assert_eq!(idx.query(&b).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn exact_ratio_returns_1nn() {
        let idx = OrderVectorIndex2d::build(&paper_points()).unwrap();
        let b = WeightRatioBox::exact(&[2.0]).unwrap();
        assert_eq!(idx.query(&b).unwrap(), vec![0]);
        // r = 0.25 favours the cheap hotel p3… let us check against BASE.
        let b2 = WeightRatioBox::exact(&[0.25]).unwrap();
        assert_eq!(
            idx.query(&b2).unwrap(),
            eclipse_baseline(&paper_points(), &b2).unwrap()
        );
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(matches!(
            OrderVectorIndex2d::build(&[]),
            Err(EclipseError::EmptyDataset)
        ));
        assert!(OrderVectorIndex2d::build(&[p(&[1.0, 2.0, 3.0])]).is_err());
        let idx = OrderVectorIndex2d::build(&paper_points()).unwrap();
        assert!(idx
            .query(&WeightRatioBox::uniform(3, 0.5, 1.0).unwrap())
            .is_err());
        assert!(idx.query(&WeightRatioBox::skyline(2).unwrap()).is_err());
    }

    #[test]
    fn exact_query_matches_baseline_on_random_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(81);
        for _ in 0..10 {
            let pts: Vec<Point> = (0..300)
                .map(|_| Point::new(vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]))
                .collect();
            let idx = OrderVectorIndex2d::build(&pts).unwrap();
            for _ in 0..5 {
                let lo = rng.gen_range(0.05..1.5);
                let hi = lo + rng.gen_range(0.05..3.0);
                let b = WeightRatioBox::uniform(2, lo, hi).unwrap();
                assert_eq!(
                    idx.query(&b).unwrap(),
                    eclipse_baseline(&pts, &b).unwrap(),
                    "box {b}"
                );
            }
        }
    }

    #[test]
    fn general_position_query_agrees_on_random_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(82);
        for _ in 0..5 {
            let pts: Vec<Point> = (0..200)
                .map(|_| Point::new(vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]))
                .collect();
            let idx = OrderVectorIndex2d::build(&pts).unwrap();
            let b = WeightRatioBox::uniform(2, 0.36, 2.75).unwrap();
            assert_eq!(
                idx.query_general_position(&b).unwrap(),
                idx.query(&b).unwrap()
            );
        }
    }

    #[test]
    fn large_skyline_skips_materialization_but_stays_exact() {
        // Anti-correlated data: every point is a skyline point, u > MAX_MATERIALIZED_U.
        let n = 300;
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                p(&[x, 1.0 - x])
            })
            .collect();
        let idx = OrderVectorIndex2d::build(&pts).unwrap();
        assert_eq!(idx.skyline_len(), n);
        let b = WeightRatioBox::uniform(2, 0.5, 2.0).unwrap();
        assert_eq!(idx.query(&b).unwrap(), eclipse_baseline(&pts, &b).unwrap());
    }
}
