//! Index-based eclipse query processing (§IV of the paper).
//!
//! The transformation-based algorithm recomputes everything from scratch for
//! every query; the index-based algorithms instead precompute, once per
//! dataset:
//!
//! 1. the skyline points (eclipse results are always a subset of them),
//! 2. the *intersection hyperplanes* — for every pair of skyline points the
//!    locus in weight-ratio space where their scores are equal, and
//! 3. a spatial index over those hyperplanes (the **Intersection Index**):
//!    either a line quadtree / hyperplane octree ([`eclipse_geom::quadtree`],
//!    the paper's QUAD) or a cutting tree ([`eclipse_geom::cutting`], the
//!    paper's CUTTING),
//!
//! so that a query only has to (a) rank the skyline points at one corner of
//! the query box (the **Order Vector**), (b) fetch the intersection
//! hyperplanes crossing the box, and (c) replay them to determine which
//! points stay undominated across the whole box (Algorithms 5 and 7).
//!
//! Two implementations are provided:
//!
//! * [`ndim::EclipseIndex`] — the production index for any `d ≥ 2`, with an
//!   exact tie-aware replay (see the module docs for how it strengthens the
//!   paper's general-position assumption),
//! * [`dual2d::OrderVectorIndex2d`] — the verbatim two-dimensional structure
//!   of Algorithm 4 (interval partition of the dual x-axis with one stored
//!   order vector per interval), kept both as an executable rendition of the
//!   paper's §IV-A example and as an alternative 2-D backend.

pub mod dual2d;
pub mod ndim;

pub use dual2d::OrderVectorIndex2d;
pub use ndim::{
    EclipseIndex, IndexConfig, IntersectionIndexKind, ProbeScratch, SECTION_BACKEND,
    SECTION_DATASET, SECTION_INDEX_CONFIG, SECTION_INDEX_META, SECTION_SKYLINE,
};
