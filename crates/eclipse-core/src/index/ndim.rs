//! The general (any `d ≥ 2`) index-based eclipse query engine.
//!
//! Build phase (Algorithm 6):
//! 1. compute the skyline of the dataset (only skyline points can be eclipse
//!    points);
//! 2. for every pair of skyline points build the *score-difference
//!    hyperplane* in `(d−1)`-dimensional weight-ratio space
//!    (`f(r) = Σ_j (a[j] − b[j])·r_j + (a[d] − b[d])`, see
//!    [`eclipse_geom::dual::score_difference_hyperplane`]) — assembled
//!    directly into a [`HyperplaneSlab`] of dense coefficient rows;
//! 3. index those hyperplanes with a line quadtree (QUAD) or a cutting tree
//!    (CUTTING) over a bounded region of ratio space.
//!
//! Query phase (Algorithms 5/7):
//! 1. score all skyline points at the lower corner of the query box and rank
//!    them (the initial Order Vector — the paper stores per-cell vectors; we
//!    follow its own high-dimensional practical choice of computing the
//!    vector at query time in O(u log u), which it notes "does not impact the
//!    entire time complexity");
//! 2. fetch from the Intersection Index the hyperplanes crossing the query
//!    box — exactly the pairs whose relative order changes inside the box;
//! 3. replay those pairs.  The paper's replay assumes general position; ours
//!    adjudicates every fetched pair exactly (does `a` dominate `b` over the
//!    whole box, or vice versa, or neither?), so ties, duplicate points and
//!    boundary contacts are handled without any assumption.
//! 4. points whose final dominator count is zero are the eclipse points.
//!
//! The query phase is engineered for steady-state serving: every buffer a
//! probe touches lives in a caller-provided [`ProbeScratch`], so
//! [`EclipseIndex::query_with_scratch`] performs **zero heap allocations**
//! once the buffers have grown to their high-water capacity — including the
//! tree traversal (explicit stack + visited bitmap), the candidate list, the
//! initial order vector (an incrementally reused sort buffer) and the result
//! itself.  [`EclipseIndex::query_batch`] fans locality-sorted probes out
//! over an [`ExecutionContext`] with one scratch per worker.

use eclipse_persist::{enc, Cursor, PersistError, SnapshotReader, SnapshotWriter};
use serde::{Deserialize, Serialize};

use eclipse_geom::approx::EPS;
use eclipse_geom::cutting::{CutRule, CuttingTree, CuttingTreeConfig};
use eclipse_geom::hyperplane::HyperplaneSlab;
use eclipse_geom::point::{BoundingBox, Point};
use eclipse_geom::quadtree::{HyperplaneQuadtree, QuadtreeConfig, SplitRule};
use eclipse_geom::traverse::TraversalScratch;

use crate::error::{EclipseError, Result};
use crate::exec::ExecutionContext;
use crate::weights::WeightRatioBox;

/// Which Intersection Index backs the eclipse index.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntersectionIndexKind {
    /// Line quadtree / hyperplane octree (the paper's QUAD).
    #[default]
    Quadtree,
    /// Randomized cutting tree (the paper's CUTTING).
    CuttingTree,
}

/// Construction parameters for [`EclipseIndex`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IndexConfig {
    /// Which spatial structure indexes the intersection hyperplanes.
    pub kind: IntersectionIndexKind,
    /// Upper bound of the indexed region of ratio space: the root cell is
    /// `[0, max_ratio]^{d−1}`.  Queries that are not fully contained in the
    /// root cell still return exact results via a linear fallback scan of the
    /// pairs, so this is a performance knob, not a correctness one.
    pub max_ratio: f64,
    /// Quadtree parameters (used when `kind == Quadtree`).
    pub quadtree: QuadtreeConfig,
    /// Cutting-tree parameters (used when `kind == CuttingTree`).
    pub cutting: CuttingTreeConfig,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            kind: IntersectionIndexKind::Quadtree,
            max_ratio: 16.0,
            quadtree: QuadtreeConfig::default(),
            cutting: CuttingTreeConfig::default(),
        }
    }
}

impl IndexConfig {
    /// Convenience constructor selecting the backend kind with default
    /// parameters otherwise.
    pub fn with_kind(kind: IntersectionIndexKind) -> Self {
        IndexConfig {
            kind,
            ..IndexConfig::default()
        }
    }
}

#[derive(Clone, Debug)]
enum Backend {
    Quad(HyperplaneQuadtree),
    Cutting(CuttingTree),
}

// --- snapshot format --------------------------------------------------------
//
// An index snapshot is an `eclipse_persist` container (magic + format version
// + checksummed sections) with the sections below.  Engine-level snapshots
// prepend a dataset section; the index-level codec ignores sections it does
// not know, so both shapes decode with the same reader.

/// Snapshot section: index metadata (dimensionality, skyline size, pair
/// count) — decoded first so later sections can be cross-validated.
pub const SECTION_INDEX_META: u8 = 0x01;
/// Snapshot section: the full [`IndexConfig`] the index was built with.
pub const SECTION_INDEX_CONFIG: u8 = 0x02;
/// Snapshot section: skyline ids (into the original dataset) and the flat
/// skyline coordinate buffer.
pub const SECTION_SKYLINE: u8 = 0x03;
/// Snapshot section: the backend tree arena (kind tag + tree payload).
pub const SECTION_BACKEND: u8 = 0x04;
/// Snapshot section: dataset label, dimensionality and row-major coordinates
/// (written by [`crate::query::EclipseEngine`]-level snapshots only).
pub const SECTION_DATASET: u8 = 0x05;

/// Wire tag of the quadtree backend inside [`SECTION_BACKEND`].
const BACKEND_TAG_QUAD: u8 = 0;
/// Wire tag of the cutting-tree backend inside [`SECTION_BACKEND`].
const BACKEND_TAG_CUTTING: u8 = 1;

/// Shorthand for a structural snapshot defect found by cross-validation.
fn snapshot_err(reason: impl Into<String>) -> EclipseError {
    EclipseError::Snapshot(reason.into())
}

/// Reusable buffers for the query (probe) path.
///
/// One eclipse query scores all `u` skyline points, ranks them, gathers the
/// candidate pairs from the intersection index and replays them; with fresh
/// buffers that is half a dozen allocations per probe.  Callers answering
/// many queries (servers, the bench harness, [`EclipseIndex::query_batch`])
/// keep one `ProbeScratch` per thread and pass it to
/// [`EclipseIndex::query_with_scratch`]: every buffer — scores, the reused
/// sort buffer, the order vector, the query corners, the candidate list, the
/// tree-traversal stack and visited bitmap, and the result itself — is then
/// reused at its high-water capacity, so a steady-state probe allocates
/// nothing.
#[derive(Clone, Debug, Default)]
pub struct ProbeScratch {
    /// Scores of the skyline points at the query's lower corner.
    scores: Vec<f64>,
    /// The same scores, sorted, for rank computation (incrementally reused).
    sorted: Vec<f64>,
    /// Dominator counts (the Order Vector).
    ov: Vec<i64>,
    /// Lower / upper query corner in ratio space.
    qlo: Vec<f64>,
    qhi: Vec<f64>,
    /// Candidate pair ids fetched from the intersection index.
    candidates: Vec<usize>,
    /// Tree-traversal state (explicit stack + visited bitmap).
    traversal: TraversalScratch,
    /// The most recent query result (dataset indices, ascending).
    out: Vec<usize>,
}

impl ProbeScratch {
    /// A scratch with empty buffers (they grow to the index size on first
    /// use).
    pub fn new() -> Self {
        ProbeScratch::default()
    }
}

/// Index-based eclipse query engine over a fixed dataset.
#[derive(Clone, Debug)]
pub struct EclipseIndex {
    dim: usize,
    /// Indices (into the original dataset) of the skyline points, ascending.
    skyline_ids: Vec<usize>,
    /// Skyline coordinates in one flat row-major buffer (`u` rows × `dim`) —
    /// the single owned copy of the skyline, shared by corner scoring and
    /// hyperplane construction (the dataset points are never cloned).
    skyline_coords: Box<[f64]>,
    /// Pairs of *local* skyline indices, aligned with the hyperplane slab
    /// owned by the backend tree.
    pairs: Vec<(u32, u32)>,
    backend: Backend,
    root_cell: BoundingBox,
    config: IndexConfig,
}

impl EclipseIndex {
    /// Builds the index over `points` with the given configuration, using
    /// the process-wide default execution context for the parallel phases.
    ///
    /// # Errors
    /// * [`EclipseError::EmptyDataset`] for an empty dataset.
    /// * [`EclipseError::DimensionMismatch`] for mixed dimensionalities.
    /// * [`EclipseError::Unsupported`] for 1-dimensional points.
    pub fn build(points: &[Point], config: IndexConfig) -> Result<Self> {
        Self::build_with(points, config, &ExecutionContext::default())
    }

    /// [`EclipseIndex::build`] with an explicit execution context: the
    /// skyline pass runs on the parallel divide-and-conquer executor and the
    /// `C(u, 2)` score-difference hyperplanes are constructed row-parallel.
    /// Both phases are deterministic, so the built index is identical to the
    /// serial one.
    ///
    /// # Errors
    /// Same as [`EclipseIndex::build`].
    pub fn build_with(
        points: &[Point],
        config: IndexConfig,
        ctx: &ExecutionContext,
    ) -> Result<Self> {
        Self::validate_dataset(points)?;
        // 1. Skyline points (forked divide step when the context has lanes).
        // Only the ids and one flat coordinate buffer are kept: no `Point`
        // clones.
        let skyline_ids = eclipse_skyline::dc::skyline_dc_parallel(points, ctx.pool());
        Self::build_from_skyline(points, skyline_ids, config, ctx)
    }

    /// The shared dataset validity requirements of every build entry point.
    fn validate_dataset(points: &[Point]) -> Result<usize> {
        let Some(first) = points.first() else {
            return Err(EclipseError::EmptyDataset);
        };
        let dim = first.dim();
        if dim < 2 {
            return Err(EclipseError::Unsupported(
                "the eclipse index requires d ≥ 2".to_string(),
            ));
        }
        for p in points {
            if p.dim() != dim {
                return Err(EclipseError::DimensionMismatch {
                    expected: dim,
                    found: p.dim(),
                });
            }
        }
        Ok(dim)
    }

    /// [`EclipseIndex::build_with`] with the skyline pass already done:
    /// `skyline_ids` must be exactly what
    /// [`eclipse_skyline::dc::skyline_dc_parallel`] would return for
    /// `points` (the strictly ascending, duplicate-deduplicated skyline).
    /// Incremental maintenance derives the post-mutation skyline from the
    /// pre-mutation one and hands it here, skipping the full-dataset skyline
    /// recomputation; everything downstream is the plain build path, so equal
    /// skyline id sets produce **byte-identical** arenas to a full build
    /// (asserted by the mutation suites and every `experiments -- mutate`
    /// pass).
    ///
    /// # Errors
    /// Same dataset validation as [`EclipseIndex::build`], plus
    /// [`EclipseError::Snapshot`]-free structural checks on the id list
    /// (ascending, in range) surfaced as [`EclipseError::Unsupported`].
    pub fn build_from_skyline(
        points: &[Point],
        skyline_ids: Vec<usize>,
        config: IndexConfig,
        ctx: &ExecutionContext,
    ) -> Result<Self> {
        let dim = Self::validate_dataset(points)?;
        if !skyline_ids.windows(2).all(|w| w[0] < w[1])
            || skyline_ids.last().is_some_and(|&id| id >= points.len())
        {
            return Err(EclipseError::Unsupported(
                "skyline ids must be strictly ascending indices into the dataset".to_string(),
            ));
        }
        let u = skyline_ids.len();
        let mut coords = Vec::with_capacity(u * dim);
        for &i in &skyline_ids {
            coords.extend_from_slice(points[i].coords());
        }
        let skyline_coords: Box<[f64]> = coords.into_boxed_slice();

        // 2. Intersection hyperplanes for every pair, assembled directly into
        // a structure-of-arrays slab; row-parallel over `a` (results are
        // concatenated in row order, so the layout is identical to the serial
        // double loop).
        let k = dim - 1;
        let num_pairs = u * u.saturating_sub(1) / 2;
        let mut pairs = Vec::with_capacity(num_pairs);
        let mut slab = HyperplaneSlab::with_capacity(k, num_pairs);
        let pair_row = |a: usize, row: &mut Vec<f64>, row_slab: &mut HyperplaneSlab| {
            let pa = &skyline_coords[a * dim..(a + 1) * dim];
            for b in a + 1..u {
                let pb = &skyline_coords[b * dim..(b + 1) * dim];
                row.clear();
                row.extend((0..k).map(|j| pa[j] - pb[j]));
                row_slab.push(row, pa[k] - pb[k]);
            }
        };
        if ctx.threads() > 1 && u >= 128 {
            let rows: Vec<usize> = (0..u).collect();
            let built = ctx.pool().par_map(&rows, |&a| {
                let mut row = Vec::with_capacity(k);
                let mut row_slab = HyperplaneSlab::with_capacity(k, u - a - 1);
                pair_row(a, &mut row, &mut row_slab);
                row_slab
            });
            for (a, row_slab) in built.iter().enumerate() {
                for b in a + 1..u {
                    pairs.push((a as u32, b as u32));
                }
                slab.extend_from(row_slab);
            }
        } else {
            let mut row = Vec::with_capacity(k);
            for a in 0..u {
                for b in a + 1..u {
                    pairs.push((a as u32, b as u32));
                }
                pair_row(a, &mut row, &mut slab);
            }
        }

        // 3. Spatial index over the hyperplanes (the tree takes ownership of
        // the slab; the replay phase reads it back through the backend).
        // The same pool handle that ran phases 1–2 drives the level-parallel
        // tree builders; their output is byte-identical to a serial build.
        let root_cell = BoundingBox::new(vec![0.0; k], vec![config.max_ratio; k]);
        let backend = match config.kind {
            IntersectionIndexKind::Quadtree => {
                Backend::Quad(HyperplaneQuadtree::build_from_slab_with(
                    slab,
                    root_cell.clone(),
                    config.quadtree,
                    Some(ctx.pool()),
                ))
            }
            IntersectionIndexKind::CuttingTree => {
                Backend::Cutting(CuttingTree::build_from_slab_with(
                    slab,
                    root_cell.clone(),
                    config.cutting,
                    Some(ctx.pool()),
                ))
            }
        };

        Ok(EclipseIndex {
            dim,
            skyline_ids,
            skyline_coords,
            pairs,
            backend,
            root_cell,
            config,
        })
    }

    /// Dataset dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of skyline points the index covers.
    pub fn skyline_len(&self) -> usize {
        self.skyline_ids.len()
    }

    /// Indices (into the original dataset) of the skyline points.
    pub fn skyline_ids(&self) -> &[usize] {
        &self.skyline_ids
    }

    /// Number of indexed intersection hyperplanes (`C(u, 2)`).
    pub fn num_intersections(&self) -> usize {
        self.pairs.len()
    }

    /// A copy of the index re-targeted at the dataset with row `deleted`
    /// removed: ids above the deleted row shift down by one.  Only valid when
    /// the deleted row is **not** a skyline member — the skyline point-set
    /// (and with it every hyperplane and arena byte) is then unchanged, so
    /// the copy is byte-identical to a fresh build over the mutated dataset.
    pub(crate) fn with_deleted_id(&self, deleted: usize) -> Self {
        debug_assert!(
            !self.skyline_ids.contains(&deleted),
            "id remap is only sound for non-skyline deletes"
        );
        let mut out = self.clone();
        for id in &mut out.skyline_ids {
            if *id > deleted {
                *id -= 1;
            }
        }
        out
    }

    /// The configuration used to build the index.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Diagnostic: depth of the underlying spatial structure.
    pub fn backend_depth(&self) -> usize {
        match &self.backend {
            Backend::Quad(t) => t.depth(),
            Backend::Cutting(t) => t.depth(),
        }
    }

    /// Heap bytes owned by the index: the skyline id/coordinate buffers, the
    /// pair list, the root cell's corners and the whole backend arena
    /// (hyperplane slab, nodes, cells, entries).  Buffers with spare
    /// capacity are counted at capacity; allocator headers and the inline
    /// struct itself are not included.
    pub fn heap_bytes(&self) -> usize {
        let backend = match &self.backend {
            Backend::Quad(t) => t.heap_bytes(),
            Backend::Cutting(t) => t.heap_bytes(),
        };
        self.skyline_ids.capacity() * std::mem::size_of::<usize>()
            + self.skyline_coords.len() * std::mem::size_of::<f64>()
            + self.pairs.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.root_cell.heap_bytes()
            + backend
    }

    /// Diagnostic: node count of the underlying spatial structure.
    pub fn backend_nodes(&self) -> usize {
        match &self.backend {
            Backend::Quad(t) => t.node_count(),
            Backend::Cutting(t) => t.node_count(),
        }
    }

    /// The intersection-hyperplane rows, owned by the backend tree.
    fn slab(&self) -> &HyperplaneSlab {
        match &self.backend {
            Backend::Quad(t) => t.slab(),
            Backend::Cutting(t) => t.slab(),
        }
    }

    /// Answers an eclipse query, returning indices into the original dataset
    /// in ascending order.
    ///
    /// # Errors
    /// * [`EclipseError::DimensionMismatch`] when the box does not match the
    ///   dataset dimensionality.
    /// * [`EclipseError::Unsupported`] when a ratio range is unbounded (route
    ///   the skyline instantiation through [`crate::query::EclipseEngine`]).
    pub fn query(&self, ratio_box: &WeightRatioBox) -> Result<Vec<usize>> {
        let mut scratch = ProbeScratch::new();
        self.query_with_scratch(ratio_box, &mut scratch)?;
        Ok(std::mem::take(&mut scratch.out))
    }

    /// [`EclipseIndex::query`] with caller-provided scratch buffers: the
    /// steady-state serving flavour.  Returns a slice borrowed from the
    /// scratch (valid until the next probe); once the buffers have reached
    /// their high-water capacity a probe performs **no heap allocations** —
    /// on the indexed path and on the exact linear fallback alike.
    ///
    /// # Errors
    /// Same as [`EclipseIndex::query`].
    pub fn query_with_scratch<'s>(
        &self,
        ratio_box: &WeightRatioBox,
        scratch: &'s mut ProbeScratch,
    ) -> Result<&'s [usize]> {
        self.probe_into(ratio_box, scratch)?;
        let ProbeScratch { ov, out, .. } = scratch;
        out.clear();
        // `skyline_ids` is ascending, so the result needs no sort.
        out.extend(
            ov.iter()
                .enumerate()
                .filter(|&(_, &count)| count == 0)
                .map(|(k, _)| self.skyline_ids[k]),
        );
        Ok(out)
    }

    /// Answers a batch of eclipse queries, fanning the probes out over `ctx`
    /// with one [`ProbeScratch`] per worker chunk.  Probes are locality-sorted
    /// (lexicographically by lower corner) before chunking so neighbouring
    /// probes walk the same tree regions; results are returned in input
    /// order.
    ///
    /// # Errors
    /// Validates every box up front ([`EclipseError::DimensionMismatch`] /
    /// [`EclipseError::Unsupported`] for unbounded ranges); no partial
    /// results are returned.
    pub fn query_batch(
        &self,
        boxes: &[WeightRatioBox],
        ctx: &ExecutionContext,
    ) -> Result<Vec<Vec<usize>>> {
        self.validate_batch(boxes)?;
        // Degenerate batches never touch the pool: an empty slice returns
        // immediately and a single probe is answered inline, so tiny serving
        // requests pay no dispatch overhead.
        if boxes.is_empty() {
            return Ok(Vec::new());
        }
        if let [only] = boxes {
            let mut scratch = ProbeScratch::new();
            return Ok(vec![self.query_with_scratch(only, &mut scratch)?.to_vec()]);
        }
        let order = locality_order(boxes);
        let chunk_len = order.len().div_ceil(ctx.threads() * 4).max(1);
        let chunks = ctx.pool().par_chunks(&order, chunk_len, |_, chunk| {
            let mut scratch = ProbeScratch::new();
            chunk
                .iter()
                .map(|&bi| {
                    self.query_with_scratch(&boxes[bi], &mut scratch)
                        .map(<[usize]>::to_vec)
                        .expect("query_batch boxes are validated before dispatch")
                })
                .collect::<Vec<_>>()
        });
        let mut results: Vec<Vec<usize>> = vec![Vec::new(); boxes.len()];
        for (chunk_results, chunk_ids) in chunks.into_iter().zip(order.chunks(chunk_len)) {
            for (res, &bi) in chunk_results.into_iter().zip(chunk_ids) {
                results[bi] = res;
            }
        }
        Ok(results)
    }

    /// Answers an eclipse query with only the result **cardinality** — the
    /// number of eclipse points — computed without materializing a single
    /// result id (the ROADMAP's count-only probe: the order vector is
    /// replayed exactly as in [`EclipseIndex::query_with_scratch`], then the
    /// zero-dominator entries are counted instead of being gathered).
    ///
    /// # Errors
    /// Same as [`EclipseIndex::query`].
    pub fn count(&self, ratio_box: &WeightRatioBox) -> Result<usize> {
        self.count_with_scratch(ratio_box, &mut ProbeScratch::new())
    }

    /// [`EclipseIndex::count`] with caller-provided scratch: the steady-state
    /// serving flavour.  Once the buffers have reached their high-water
    /// capacity a count probe performs **no heap allocations**, and it never
    /// touches the scratch's result buffer.
    ///
    /// # Errors
    /// Same as [`EclipseIndex::query`].
    pub fn count_with_scratch(
        &self,
        ratio_box: &WeightRatioBox,
        scratch: &mut ProbeScratch,
    ) -> Result<usize> {
        self.probe_into(ratio_box, scratch)?;
        Ok(scratch.ov.iter().filter(|&&count| count == 0).count())
    }

    /// The shared core of a probe: validate the box, load its corners into
    /// the scratch, gather the candidate pairs and replay them into the
    /// order vector.  Callers then read the result (`query_with_scratch`)
    /// or just count the zeros (`count_with_scratch`).
    fn probe_into(&self, ratio_box: &WeightRatioBox, scratch: &mut ProbeScratch) -> Result<()> {
        self.validate_probe(ratio_box)?;
        scratch.qlo.clear();
        scratch.qhi.clear();
        for r in ratio_box.ranges() {
            scratch.qlo.push(r.lo());
            scratch.qhi.push(r.hi());
        }
        self.candidate_pairs(scratch);
        self.replay(scratch);
        Ok(())
    }

    /// Answers a batch of count-only eclipse queries, fanning the probes out
    /// over `ctx` exactly like [`EclipseIndex::query_batch`] (locality sort,
    /// one scratch per worker chunk) but returning only the cardinalities —
    /// no per-probe result vector is ever allocated.
    ///
    /// # Errors
    /// Validates every box up front; no partial results are returned.
    pub fn count_batch(
        &self,
        boxes: &[WeightRatioBox],
        ctx: &ExecutionContext,
    ) -> Result<Vec<usize>> {
        self.validate_batch(boxes)?;
        if boxes.is_empty() {
            return Ok(Vec::new());
        }
        if let [only] = boxes {
            return Ok(vec![
                self.count_with_scratch(only, &mut ProbeScratch::new())?
            ]);
        }
        let order = locality_order(boxes);
        let chunk_len = order.len().div_ceil(ctx.threads() * 4).max(1);
        let chunks = ctx.pool().par_chunks(&order, chunk_len, |_, chunk| {
            let mut scratch = ProbeScratch::new();
            chunk
                .iter()
                .map(|&bi| {
                    self.count_with_scratch(&boxes[bi], &mut scratch)
                        .expect("count_batch boxes are validated before dispatch")
                })
                .collect::<Vec<_>>()
        });
        let mut counts: Vec<usize> = vec![0; boxes.len()];
        for (chunk_counts, chunk_ids) in chunks.into_iter().zip(order.chunks(chunk_len)) {
            for (res, &bi) in chunk_counts.into_iter().zip(chunk_ids) {
                counts[bi] = res;
            }
        }
        Ok(counts)
    }

    /// Diagnostic: the number of indexed intersection hyperplanes crossing
    /// `ratio_box` — the candidate-set size a probe of that box replays.
    /// Uses the backend trees' count-only traversal (contained cells are
    /// popcounted straight from their subtree entry list) when the box lies
    /// inside the indexed region, and an exact linear scan otherwise.
    ///
    /// # Errors
    /// Same as [`EclipseIndex::query`].
    pub fn intersections_crossing(&self, ratio_box: &WeightRatioBox) -> Result<usize> {
        self.validate_probe(ratio_box)?;
        let qlo = ratio_box.lower_corner();
        let qhi = ratio_box.upper_corner();
        let contained = self
            .root_cell
            .lo()
            .iter()
            .zip(self.root_cell.hi())
            .zip(qlo.iter().zip(qhi.iter()))
            .all(|((rl, rh), (ql, qh))| rl <= ql && rh >= qh);
        if contained {
            let mut traversal = TraversalScratch::new();
            Ok(match &self.backend {
                Backend::Quad(t) => t.count_in_box(&qlo, &qhi, &mut traversal),
                Backend::Cutting(t) => t.count_in_box(&qlo, &qhi, &mut traversal),
            })
        } else {
            let slab = self.slab();
            Ok((0..slab.len())
                .filter(|&i| slab.intersects_box(i, &qlo, &qhi))
                .count())
        }
    }

    /// Appends the index's snapshot sections (metadata, config, skyline,
    /// backend arena) to a container under construction — the engine-level
    /// snapshot composes this with a dataset section.
    pub fn encode_snapshot_into(&self, writer: &mut SnapshotWriter) {
        let mut meta = Vec::new();
        enc::put_u32(&mut meta, self.dim as u32);
        enc::put_usize(&mut meta, self.skyline_ids.len());
        enc::put_usize(&mut meta, self.pairs.len());
        writer.section(SECTION_INDEX_META, meta);

        let mut config = Vec::new();
        enc::put_u8(
            &mut config,
            match self.config.kind {
                IntersectionIndexKind::Quadtree => BACKEND_TAG_QUAD,
                IntersectionIndexKind::CuttingTree => BACKEND_TAG_CUTTING,
            },
        );
        enc::put_f64(&mut config, self.config.max_ratio);
        enc::put_usize(&mut config, self.config.quadtree.max_capacity);
        enc::put_usize(&mut config, self.config.quadtree.max_depth);
        enc::put_usize(&mut config, self.config.quadtree.max_nodes);
        enc::put_usize(&mut config, self.config.quadtree.max_entries);
        enc::put_usize(&mut config, self.config.cutting.max_capacity);
        enc::put_usize(&mut config, self.config.cutting.max_depth);
        enc::put_usize(&mut config, self.config.cutting.sample_size);
        enc::put_usize(&mut config, self.config.cutting.max_nodes);
        enc::put_usize(&mut config, self.config.cutting.max_entries);
        enc::put_u64(&mut config, self.config.cutting.seed);
        // Format v2: one strategy tag per backend config.  v1 readers never
        // see these bytes (they reject v2 containers up front).
        enc::put_u8(&mut config, self.config.quadtree.split.tag());
        enc::put_u8(&mut config, self.config.cutting.cut.tag());
        writer.section(SECTION_INDEX_CONFIG, config);

        let mut skyline = Vec::new();
        enc::put_usize(&mut skyline, self.skyline_ids.len());
        for &id in &self.skyline_ids {
            enc::put_usize(&mut skyline, id);
        }
        for &c in self.skyline_coords.iter() {
            enc::put_f64(&mut skyline, c);
        }
        writer.section(SECTION_SKYLINE, skyline);

        let mut backend = Vec::new();
        match &self.backend {
            Backend::Quad(t) => {
                enc::put_u8(&mut backend, BACKEND_TAG_QUAD);
                t.encode_into(&mut backend);
            }
            Backend::Cutting(t) => {
                enc::put_u8(&mut backend, BACKEND_TAG_CUTTING);
                t.encode_into(&mut backend);
            }
        }
        writer.section(SECTION_BACKEND, backend);
    }

    /// Serializes the index into a standalone versioned snapshot (magic +
    /// format version + checksummed sections).  The encoding is byte-stable:
    /// the same dataset and config always produce the same bytes, which is
    /// what the committed golden fixtures pin across releases.
    pub fn encode_snapshot(&self) -> Vec<u8> {
        let mut writer = SnapshotWriter::new();
        self.encode_snapshot_into(&mut writer);
        writer.finish()
    }

    /// Decodes an index from the sections of a parsed snapshot container,
    /// re-validating everything the probe path relies on: section
    /// cross-consistency (pair count is `C(u, 2)` and matches the slab,
    /// config matches the backend tree, the tree's root cell is the indexed
    /// region), plus the arena invariants checked by the tree decoders.
    ///
    /// # Errors
    /// [`EclipseError::Snapshot`] for every structural defect; hostile input
    /// never panics and never over-allocates.
    pub(crate) fn from_snapshot_reader(reader: &SnapshotReader<'_>) -> Result<Self> {
        let mut meta = Cursor::new(reader.section(SECTION_INDEX_META)?);
        let dim = meta.u32()? as usize;
        let u = meta.usize64()?;
        let num_pairs = meta.usize64()?;
        meta.finish()?;
        if dim < 2 {
            return Err(snapshot_err(format!(
                "index dimensionality {dim} is below the d ≥ 2 minimum"
            )));
        }
        let expected_pairs = (u as u128 * u.saturating_sub(1) as u128) / 2;
        if num_pairs as u128 != expected_pairs {
            return Err(snapshot_err(format!(
                "pair count {num_pairs} is not C({u}, 2)"
            )));
        }

        let mut cfg = Cursor::new(reader.section(SECTION_INDEX_CONFIG)?);
        let kind = match cfg.u8()? {
            BACKEND_TAG_QUAD => IntersectionIndexKind::Quadtree,
            BACKEND_TAG_CUTTING => IntersectionIndexKind::CuttingTree,
            tag => {
                return Err(PersistError::UnknownTag {
                    context: "index kind",
                    tag,
                }
                .into())
            }
        };
        let max_ratio = cfg.f64()?;
        if !max_ratio.is_finite() || max_ratio < 0.0 {
            return Err(snapshot_err(format!(
                "indexed-region bound {max_ratio} must be finite and non-negative"
            )));
        }
        let mut quadtree = QuadtreeConfig {
            max_capacity: cfg.usize64()?,
            max_depth: cfg.usize64()?,
            max_nodes: cfg.usize64()?,
            max_entries: cfg.usize64()?,
            split: SplitRule::Midpoint,
        };
        let mut cutting = CuttingTreeConfig {
            max_capacity: cfg.usize64()?,
            max_depth: cfg.usize64()?,
            sample_size: cfg.usize64()?,
            max_nodes: cfg.usize64()?,
            max_entries: cfg.usize64()?,
            seed: cfg.u64()?,
            cut: CutRule::SampledCrossings,
        };
        // v1 snapshots predate split/cut strategies and always used the
        // legacy rules assigned above; v2 records the strategy explicitly.
        if reader.version() >= 2 {
            quadtree.split = SplitRule::from_tag(cfg.u8()?)?;
            cutting.cut = CutRule::from_tag(cfg.u8()?)?;
        }
        let config = IndexConfig {
            kind,
            max_ratio,
            quadtree,
            cutting,
        };
        cfg.finish()?;

        let mut sky = Cursor::new(reader.section(SECTION_SKYLINE)?);
        let id_count = sky.count(8)?;
        if id_count != u {
            return Err(snapshot_err(format!(
                "skyline section holds {id_count} ids but the metadata says {u}"
            )));
        }
        let mut skyline_ids = Vec::with_capacity(id_count);
        for _ in 0..id_count {
            skyline_ids.push(sky.usize64()?);
        }
        if !skyline_ids.windows(2).all(|w| w[0] < w[1]) {
            return Err(snapshot_err(
                "skyline ids must be strictly ascending".to_string(),
            ));
        }
        let coord_count = u
            .checked_mul(dim)
            .ok_or_else(|| snapshot_err(format!("{u} skyline rows of dimension {dim} overflow")))?;
        let skyline_coords: Box<[f64]> = sky.f64_vec(coord_count)?.into_boxed_slice();
        sky.finish()?;

        let mut be = Cursor::new(reader.section(SECTION_BACKEND)?);
        let backend_tag = be.u8()?;
        let backend = match backend_tag {
            BACKEND_TAG_QUAD => Backend::Quad(HyperplaneQuadtree::decode_versioned(
                &mut be,
                reader.version(),
            )?),
            BACKEND_TAG_CUTTING => {
                Backend::Cutting(CuttingTree::decode_versioned(&mut be, reader.version())?)
            }
            tag => {
                return Err(PersistError::UnknownTag {
                    context: "backend tree",
                    tag,
                }
                .into())
            }
        };
        be.finish()?;
        let tag_kind = match backend_tag {
            BACKEND_TAG_QUAD => IntersectionIndexKind::Quadtree,
            _ => IntersectionIndexKind::CuttingTree,
        };
        if tag_kind != config.kind {
            return Err(snapshot_err(format!(
                "backend tree kind {tag_kind:?} disagrees with the config kind {:?}",
                config.kind
            )));
        }

        let k = dim - 1;
        let (slab, tree_root) = match &backend {
            Backend::Quad(t) => (t.slab(), t.root_cell()),
            Backend::Cutting(t) => (t.slab(), t.root_cell()),
        };
        if slab.dim() != k {
            return Err(snapshot_err(format!(
                "backend slab dimensionality {} does not match the {k}-dimensional ratio space",
                slab.dim()
            )));
        }
        if slab.len() != num_pairs {
            return Err(snapshot_err(format!(
                "backend indexes {} hyperplanes but the metadata says {num_pairs}",
                slab.len()
            )));
        }
        let root_cell = BoundingBox::new(vec![0.0; k], vec![max_ratio; k]);
        if *tree_root != root_cell {
            return Err(snapshot_err(
                "backend root cell does not match the configured indexed region".to_string(),
            ));
        }
        match &backend {
            Backend::Quad(t) => {
                if t.config() != config.quadtree {
                    return Err(snapshot_err(
                        "backend tree config disagrees with the index config".to_string(),
                    ));
                }
            }
            Backend::Cutting(t) => {
                if t.config() != config.cutting {
                    return Err(snapshot_err(
                        "backend tree config disagrees with the index config".to_string(),
                    ));
                }
            }
        }

        // The pair table is fully determined by the skyline size: pairs are
        // laid out (a, b) for a < b in row order, exactly as construction
        // emits them, so it is reconstructed rather than stored.
        let mut pairs = Vec::with_capacity(num_pairs);
        for a in 0..u {
            for b in a + 1..u {
                pairs.push((a as u32, b as u32));
            }
        }

        Ok(EclipseIndex {
            dim,
            skyline_ids,
            skyline_coords,
            pairs,
            backend,
            root_cell,
            config,
        })
    }

    /// Decodes a standalone index snapshot produced by
    /// [`EclipseIndex::encode_snapshot`] (engine-level snapshots decode too;
    /// their extra dataset section is simply not consulted).
    ///
    /// # Errors
    /// [`EclipseError::Snapshot`] on any container or structural defect —
    /// truncation, bit flips, hostile counts and version mismatches all
    /// surface as typed errors, never panics.
    pub fn decode_snapshot(bytes: &[u8]) -> Result<Self> {
        let reader = SnapshotReader::parse(bytes)?;
        Self::from_snapshot_reader(&reader)
    }

    /// Writes [`EclipseIndex::encode_snapshot`] to a file.
    ///
    /// # Errors
    /// [`EclipseError::Snapshot`] wrapping the I/O failure.
    pub fn save_snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.encode_snapshot())
            .map_err(|e| snapshot_err(format!("write {}: {e}", path.display())))
    }

    /// Reads and decodes a snapshot file written by
    /// [`EclipseIndex::save_snapshot`].
    ///
    /// # Errors
    /// [`EclipseError::Snapshot`] for I/O and decode failures alike.
    pub fn load_snapshot(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| snapshot_err(format!("read {}: {e}", path.display())))?;
        Self::decode_snapshot(&bytes)
    }

    /// Validates the index against the dataset it claims to cover: every
    /// skyline id must address a dataset row whose coordinates are
    /// bit-identical to the stored skyline row.  This is what makes an
    /// engine-level restore safe — a snapshot paired with the wrong dataset
    /// is rejected instead of silently serving that dataset wrong results.
    pub(crate) fn validate_against_dataset(&self, dim: usize, coords: &[f64]) -> Result<()> {
        if self.dim != dim {
            return Err(EclipseError::DimensionMismatch {
                expected: dim,
                found: self.dim,
            });
        }
        let n = coords.len() / dim.max(1);
        for (row, &id) in self.skyline_ids.iter().enumerate() {
            if id >= n {
                return Err(EclipseError::SnapshotMismatch {
                    reason: format!("skyline id {id} out of range for {n} dataset points"),
                });
            }
            let stored = &self.skyline_coords[row * dim..(row + 1) * dim];
            let actual = &coords[id * dim..(id + 1) * dim];
            if stored
                .iter()
                .zip(actual.iter())
                .any(|(s, a)| s.to_bits() != a.to_bits())
            {
                return Err(EclipseError::SnapshotMismatch {
                    reason: format!(
                        "skyline row for dataset point {id} does not match the registered \
                         dataset (the snapshot was built over different data)"
                    ),
                });
            }
        }
        Ok(())
    }

    /// The validity requirements every probe shares: matching
    /// dimensionality and finite ratio ranges.
    fn validate_probe(&self, ratio_box: &WeightRatioBox) -> Result<()> {
        if ratio_box.dim() != self.dim {
            return Err(EclipseError::DimensionMismatch {
                expected: self.dim,
                found: ratio_box.dim(),
            });
        }
        if ratio_box.has_unbounded_range() {
            return Err(EclipseError::Unsupported(
                "a BoundingBox in ratio space requires finite ratio ranges".to_string(),
            ));
        }
        Ok(())
    }

    /// Shared up-front validation of the batch APIs.
    fn validate_batch(&self, boxes: &[WeightRatioBox]) -> Result<()> {
        boxes.iter().try_for_each(|b| self.validate_probe(b))
    }

    /// Fills `scratch.candidates` with the indices (into `self.pairs`) of the
    /// candidate intersection hyperplanes for the query box in
    /// `scratch.qlo/qhi`: exactly those intersecting the closed box.
    fn candidate_pairs(&self, scratch: &mut ProbeScratch) {
        let ProbeScratch {
            qlo,
            qhi,
            candidates,
            traversal,
            ..
        } = scratch;
        let contained = self
            .root_cell
            .lo()
            .iter()
            .zip(self.root_cell.hi())
            .zip(qlo.iter().zip(qhi.iter()))
            .all(|((rl, rh), (ql, qh))| rl <= ql && rh >= qh);
        if contained {
            match &self.backend {
                Backend::Quad(t) => t.query_into(qlo, qhi, traversal, candidates),
                Backend::Cutting(t) => t.query_into(qlo, qhi, traversal, candidates),
            }
        } else {
            // Exact fallback for queries escaping the indexed region — a
            // linear scan over the slab rows, reusing the candidate buffer.
            candidates.clear();
            let slab = self.slab();
            candidates.extend((0..slab.len()).filter(|&i| slab.intersects_box(i, qlo, qhi)));
        }
    }

    /// Computes the final dominator count of every skyline point into
    /// `scratch.ov`: the initial order vector at the lower corner, adjusted
    /// exactly for every candidate pair.
    fn replay(&self, scratch: &mut ProbeScratch) {
        let ProbeScratch {
            scores,
            sorted,
            ov,
            qlo,
            qhi,
            candidates,
            ..
        } = scratch;
        let d = self.dim;
        let k = d - 1;
        let coords = &self.skyline_coords;
        // Initial order vector: how many points score strictly lower at the
        // lower corner.  All buffers are reused across probes.
        scores.clear();
        scores.extend((0..self.skyline_ids.len()).map(|i| {
            let row = &coords[i * d..(i + 1) * d];
            row[..k]
                .iter()
                .zip(qlo.iter())
                .map(|(p, r)| r * p)
                .sum::<f64>()
                + row[k]
        }));
        sorted.clear();
        sorted.extend_from_slice(scores);
        // Unstable sort: equal scores are interchangeable for ranking, and
        // the stable sort would allocate a merge buffer on every probe.
        sorted.sort_unstable_by(|a, b| a.total_cmp(b));
        ov.clear();
        ov.extend(
            scores
                .iter()
                .map(|&s| sorted.partition_point(|&v| v + EPS < s) as i64),
        );

        // Exact adjustment for every pair whose order may change in the box.
        let slab = self.slab();
        for &ci in candidates.iter() {
            let (a, b) = self.pairs[ci];
            let (a, b) = (a as usize, b as usize);
            // f(r) = S_a(r) − S_b(r), read from the slab row.
            let (min_f, max_f) = slab.min_max_over_box(ci, qlo, qhi);
            let a_dominates_b = max_f <= EPS && min_f < -EPS;
            let b_dominates_a = min_f >= -EPS && max_f > EPS;
            let fl = scores[a] - scores[b];
            let a_counted = fl + EPS < 0.0;
            let b_counted = fl > EPS;

            match (a_counted, a_dominates_b) {
                (true, false) => ov[b] -= 1,
                (false, true) => ov[b] += 1,
                _ => {}
            }
            match (b_counted, b_dominates_a) {
                (true, false) => ov[a] -= 1,
                (false, true) => ov[a] += 1,
                _ => {}
            }
        }
    }
}

/// Probe order for the batch APIs: indices sorted lexicographically by lower
/// corner, so neighbouring probes in a chunk walk the same tree regions.
fn locality_order(boxes: &[WeightRatioBox]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..boxes.len()).collect();
    order.sort_unstable_by(|&x, &y| {
        boxes[x]
            .ranges()
            .iter()
            .zip(boxes[y].ranges())
            .map(|(ra, rb)| ra.lo().total_cmp(&rb.lo()))
            .find(|c| *c != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::baseline::eclipse_baseline;
    use rand::{Rng, SeedableRng};

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    fn paper_points() -> Vec<Point> {
        vec![
            p(&[1.0, 6.0]),
            p(&[4.0, 4.0]),
            p(&[6.0, 1.0]),
            p(&[8.0, 5.0]),
        ]
    }

    fn both_kinds() -> [IndexConfig; 2] {
        [
            IndexConfig::with_kind(IntersectionIndexKind::Quadtree),
            IndexConfig::with_kind(IntersectionIndexKind::CuttingTree),
        ]
    }

    #[test]
    fn paper_running_example_both_backends() {
        for cfg in both_kinds() {
            let idx = EclipseIndex::build(&paper_points(), cfg).unwrap();
            assert_eq!(idx.dim(), 2);
            assert_eq!(idx.skyline_len(), 3);
            assert_eq!(idx.num_intersections(), 3);
            let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
            assert_eq!(idx.query(&b).unwrap(), vec![0, 1, 2]);
            // Narrow 1NN-ish box.
            let nn = WeightRatioBox::uniform(2, 2.0, 2.0).unwrap();
            assert_eq!(idx.query(&nn).unwrap(), vec![0]);
        }
    }

    #[test]
    fn empty_and_invalid_inputs() {
        assert!(matches!(
            EclipseIndex::build(&[], IndexConfig::default()),
            Err(EclipseError::EmptyDataset)
        ));
        assert!(EclipseIndex::build(&[p(&[1.0])], IndexConfig::default()).is_err());
        let mixed = vec![p(&[1.0, 2.0]), p(&[1.0, 2.0, 3.0])];
        assert!(EclipseIndex::build(&mixed, IndexConfig::default()).is_err());

        let idx = EclipseIndex::build(&paper_points(), IndexConfig::default()).unwrap();
        let wrong = WeightRatioBox::uniform(3, 0.5, 1.0).unwrap();
        assert!(idx.query(&wrong).is_err());
        let sky = WeightRatioBox::skyline(2).unwrap();
        assert!(idx.query(&sky).is_err());
        // The batch API validates the same way, before any work is done.
        let ctx = ExecutionContext::serial();
        let ok = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        assert!(idx.query_batch(&[ok.clone(), wrong], &ctx).is_err());
        assert!(idx.query_batch(&[ok, sky], &ctx).is_err());
        assert!(idx.query_batch(&[], &ctx).unwrap().is_empty());
    }

    #[test]
    fn agrees_with_baseline_2d_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        for cfg in both_kinds() {
            for _ in 0..5 {
                let pts: Vec<Point> = (0..300)
                    .map(|_| Point::new(vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]))
                    .collect();
                let idx = EclipseIndex::build(&pts, cfg).unwrap();
                for _ in 0..5 {
                    let lo = rng.gen_range(0.05..1.5);
                    let hi = lo + rng.gen_range(0.05..3.0);
                    let b = WeightRatioBox::uniform(2, lo, hi).unwrap();
                    assert_eq!(
                        idx.query(&b).unwrap(),
                        eclipse_baseline(&pts, &b).unwrap(),
                        "kind {:?}, box {b}",
                        cfg.kind
                    );
                }
            }
        }
    }

    #[test]
    fn agrees_with_baseline_high_dim_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(72);
        for cfg in both_kinds() {
            for d in 3..=5usize {
                let pts: Vec<Point> = (0..200)
                    .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
                    .collect();
                let idx = EclipseIndex::build(&pts, cfg).unwrap();
                for _ in 0..5 {
                    let lo = rng.gen_range(0.05..1.5);
                    let hi = lo + rng.gen_range(0.05..3.0);
                    let b = WeightRatioBox::uniform(d, lo, hi).unwrap();
                    assert_eq!(
                        idx.query(&b).unwrap(),
                        eclipse_baseline(&pts, &b).unwrap(),
                        "kind {:?}, d = {d}, box {b}",
                        cfg.kind
                    );
                }
            }
        }
    }

    #[test]
    fn asymmetric_ranges_agree_with_baseline() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(73);
        let pts: Vec<Point> = (0..250)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        for cfg in both_kinds() {
            let idx = EclipseIndex::build(&pts, cfg).unwrap();
            let b = WeightRatioBox::from_bounds(&[(0.2, 0.9), (1.1, 4.5)]).unwrap();
            assert_eq!(idx.query(&b).unwrap(), eclipse_baseline(&pts, &b).unwrap());
        }
    }

    #[test]
    fn query_outside_indexed_region_falls_back_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(74);
        let pts: Vec<Point> = (0..200)
            .map(|_| Point::new(vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]))
            .collect();
        let cfg = IndexConfig {
            max_ratio: 2.0, // deliberately small root cell
            ..Default::default()
        };
        let idx = EclipseIndex::build(&pts, cfg).unwrap();
        let b = WeightRatioBox::uniform(2, 0.5, 8.0).unwrap(); // escapes the root cell
        assert_eq!(idx.query(&b).unwrap(), eclipse_baseline(&pts, &b).unwrap());
        // The fallback path shares the scratch too: alternate in/out probes.
        let mut scratch = ProbeScratch::new();
        let inside = WeightRatioBox::uniform(2, 0.5, 1.5).unwrap();
        for b in [
            WeightRatioBox::uniform(2, 0.5, 8.0).unwrap(),
            inside.clone(),
            WeightRatioBox::uniform(2, 0.25, 4.0).unwrap(),
            inside,
        ] {
            assert_eq!(
                idx.query_with_scratch(&b, &mut scratch).unwrap(),
                &eclipse_baseline(&pts, &b).unwrap()[..],
                "box {b}"
            );
        }
    }

    #[test]
    fn duplicates_and_grid_data_are_handled() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(75);
        for cfg in both_kinds() {
            let pts: Vec<Point> = (0..150)
                .map(|_| {
                    Point::new(vec![
                        rng.gen_range(0..6) as f64,
                        rng.gen_range(0..6) as f64,
                        rng.gen_range(0..6) as f64,
                    ])
                })
                .collect();
            let idx = EclipseIndex::build(&pts, cfg).unwrap();
            for bounds in [[0.5, 1.5], [0.25, 2.0], [1.0, 1.0]] {
                let b = WeightRatioBox::uniform(3, bounds[0], bounds[1]).unwrap();
                assert_eq!(
                    idx.query(&b).unwrap(),
                    eclipse_baseline(&pts, &b).unwrap(),
                    "kind {:?}, box {b}",
                    cfg.kind
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_and_parallel_build_match_plain_query() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let pts: Vec<Point> = (0..500)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        let serial = EclipseIndex::build_with(
            &pts,
            IndexConfig::default(),
            &crate::exec::ExecutionContext::serial(),
        )
        .unwrap();
        let parallel = EclipseIndex::build_with(
            &pts,
            IndexConfig::default(),
            &crate::exec::ExecutionContext::with_threads(4),
        )
        .unwrap();
        assert_eq!(serial.skyline_ids(), parallel.skyline_ids());
        assert_eq!(serial.num_intersections(), parallel.num_intersections());
        let mut scratch = ProbeScratch::new();
        for (lo, hi) in [(0.2, 0.8), (0.36, 2.75), (0.9, 1.1)] {
            let b = WeightRatioBox::uniform(3, lo, hi).unwrap();
            let plain = serial.query(&b).unwrap();
            assert_eq!(
                serial.query_with_scratch(&b, &mut scratch).unwrap(),
                &plain[..]
            );
            assert_eq!(parallel.query(&b).unwrap(), plain);
            assert_eq!(plain, eclipse_baseline(&pts, &b).unwrap());
        }
    }

    #[test]
    fn query_batch_matches_sequential_probes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        let pts: Vec<Point> = (0..400)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        let boxes: Vec<WeightRatioBox> = (0..25)
            .map(|_| {
                let lo = rng.gen_range(0.05..1.5);
                WeightRatioBox::uniform(3, lo, lo + rng.gen_range(0.05..2.0)).unwrap()
            })
            .collect();
        for cfg in both_kinds() {
            let idx = EclipseIndex::build(&pts, cfg).unwrap();
            let expected: Vec<Vec<usize>> = boxes.iter().map(|b| idx.query(b).unwrap()).collect();
            for threads in [1usize, 4] {
                let ctx = ExecutionContext::with_threads(threads);
                assert_eq!(
                    idx.query_batch(&boxes, &ctx).unwrap(),
                    expected,
                    "kind {:?}, threads {threads}",
                    cfg.kind
                );
            }
        }
    }

    #[test]
    fn count_queries_match_query_cardinalities() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(79);
        let pts: Vec<Point> = (0..350)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        let boxes: Vec<WeightRatioBox> = (0..20)
            .map(|_| {
                let lo = rng.gen_range(0.05..1.5);
                // Mix of in-region and escaping boxes: the count path must be
                // exact on the fallback scan too.
                WeightRatioBox::uniform(3, lo, lo + rng.gen_range(0.05..20.0)).unwrap()
            })
            .collect();
        for cfg in both_kinds() {
            let idx = EclipseIndex::build(&pts, cfg).unwrap();
            let expected: Vec<usize> = boxes.iter().map(|b| idx.query(b).unwrap().len()).collect();
            let mut scratch = ProbeScratch::new();
            for (b, &want) in boxes.iter().zip(&expected) {
                assert_eq!(idx.count(b).unwrap(), want, "kind {:?}, box {b}", cfg.kind);
                assert_eq!(
                    idx.count_with_scratch(b, &mut scratch).unwrap(),
                    want,
                    "kind {:?}, box {b}",
                    cfg.kind
                );
            }
            for threads in [1usize, 4] {
                let ctx = ExecutionContext::with_threads(threads);
                assert_eq!(
                    idx.count_batch(&boxes, &ctx).unwrap(),
                    expected,
                    "kind {:?}, threads {threads}",
                    cfg.kind
                );
            }
            // Validation mirrors the id-returning APIs.
            let ctx = ExecutionContext::serial();
            assert!(idx
                .count(&WeightRatioBox::uniform(4, 0.5, 1.0).unwrap())
                .is_err());
            assert!(idx.count(&WeightRatioBox::skyline(3).unwrap()).is_err());
            assert!(idx
                .count_batch(&[WeightRatioBox::skyline(3).unwrap()], &ctx)
                .is_err());
        }
    }

    #[test]
    fn count_scratch_interleaves_with_query_scratch() {
        // One shared scratch alternating between id probes and count probes
        // must stay exact in both directions.
        let mut rng = rand::rngs::StdRng::seed_from_u64(80);
        let pts: Vec<Point> = (0..300)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        let idx = EclipseIndex::build(&pts, IndexConfig::default()).unwrap();
        let mut scratch = ProbeScratch::new();
        for (lo, hi) in [(0.2, 0.8), (0.36, 2.75), (0.9, 1.1), (0.5, 20.0)] {
            let b = WeightRatioBox::uniform(3, lo, hi).unwrap();
            let ids = idx.query(&b).unwrap();
            assert_eq!(idx.count_with_scratch(&b, &mut scratch).unwrap(), ids.len());
            assert_eq!(idx.query_with_scratch(&b, &mut scratch).unwrap(), &ids[..]);
        }
    }

    #[test]
    fn empty_and_single_probe_batches_short_circuit() {
        // Regression (serving-layer PR): an empty batch returns `Ok(vec![])`
        // and a single probe is answered inline — neither touches the pool
        // (the allocation test in tests/zero_alloc_probe.rs pins the probe
        // path itself; here we pin the results at every thread count).
        let idx = EclipseIndex::build(&paper_points(), IndexConfig::default()).unwrap();
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        for threads in [1usize, 4] {
            let ctx = ExecutionContext::with_threads(threads);
            assert!(idx.query_batch(&[], &ctx).unwrap().is_empty());
            assert!(idx.count_batch(&[], &ctx).unwrap().is_empty());
            assert_eq!(
                idx.query_batch(std::slice::from_ref(&b), &ctx).unwrap(),
                vec![idx.query(&b).unwrap()]
            );
            assert_eq!(
                idx.count_batch(std::slice::from_ref(&b), &ctx).unwrap(),
                vec![idx.query(&b).unwrap().len()]
            );
        }
        // Validation still runs before the short circuits.
        let ctx = ExecutionContext::serial();
        let wrong = WeightRatioBox::uniform(3, 0.5, 1.0).unwrap();
        assert!(idx.query_batch(std::slice::from_ref(&wrong), &ctx).is_err());
        assert!(idx.count_batch(std::slice::from_ref(&wrong), &ctx).is_err());
    }

    #[test]
    fn intersections_crossing_counts_candidates_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(81);
        let pts: Vec<Point> = (0..250)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        for cfg in both_kinds() {
            let idx = EclipseIndex::build(&pts, cfg).unwrap();
            let slab_count = |b: &WeightRatioBox| {
                let (qlo, qhi) = (b.lower_corner(), b.upper_corner());
                (0..idx.num_intersections())
                    .filter(|&i| idx.slab().intersects_box(i, &qlo, &qhi))
                    .count()
            };
            for (lo, hi) in [(0.36, 2.75), (0.9, 1.1), (0.5, 20.0), (0.0, 16.0)] {
                let b = WeightRatioBox::uniform(3, lo, hi).unwrap();
                assert_eq!(
                    idx.intersections_crossing(&b).unwrap(),
                    slab_count(&b),
                    "kind {:?}, box {b}",
                    cfg.kind
                );
            }
            assert!(idx
                .intersections_crossing(&WeightRatioBox::skyline(3).unwrap())
                .is_err());
            assert!(idx
                .intersections_crossing(&WeightRatioBox::uniform(4, 0.5, 1.0).unwrap())
                .is_err());
        }
    }

    #[test]
    fn snapshot_round_trips_and_is_byte_stable() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(82);
        let pts: Vec<Point> = (0..200)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        for cfg in both_kinds() {
            let idx = EclipseIndex::build(&pts, cfg).unwrap();
            let bytes = idx.encode_snapshot();
            let back = EclipseIndex::decode_snapshot(&bytes).unwrap();
            assert_eq!(back.dim(), idx.dim());
            assert_eq!(back.skyline_ids(), idx.skyline_ids());
            assert_eq!(back.num_intersections(), idx.num_intersections());
            assert_eq!(back.config(), idx.config());
            assert_eq!(back.backend_nodes(), idx.backend_nodes());
            assert_eq!(back.backend_depth(), idx.backend_depth());
            // Probe equality, including a box escaping the indexed region.
            for (lo, hi) in [(0.2, 0.8), (0.36, 2.75), (0.9, 1.1), (0.5, 20.0)] {
                let b = WeightRatioBox::uniform(3, lo, hi).unwrap();
                assert_eq!(back.query(&b).unwrap(), idx.query(&b).unwrap(), "box {b}");
            }
            // Byte stability: encoding the decoded index reproduces the
            // snapshot exactly, and rebuilding from the same inputs does too.
            assert_eq!(back.encode_snapshot(), bytes);
            assert_eq!(
                EclipseIndex::build(&pts, cfg).unwrap().encode_snapshot(),
                bytes
            );
        }
    }

    #[test]
    fn snapshot_files_round_trip_through_disk() {
        let idx = EclipseIndex::build(&paper_points(), IndexConfig::default()).unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!("eclipse_ndim_snap_{}.eclsnap", std::process::id()));
        idx.save_snapshot(&path).unwrap();
        let back = EclipseIndex::load_snapshot(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        assert_eq!(back.query(&b).unwrap(), idx.query(&b).unwrap());
        // Missing files surface as typed errors, not panics.
        assert!(matches!(
            EclipseIndex::load_snapshot(&path),
            Err(EclipseError::Snapshot(_))
        ));
    }

    #[test]
    fn snapshot_validation_against_datasets() {
        let pts = paper_points();
        let idx = EclipseIndex::build(&pts, IndexConfig::default()).unwrap();
        let flat: Vec<f64> = pts.iter().flat_map(|p| p.coords().to_vec()).collect();
        idx.validate_against_dataset(2, &flat).unwrap();
        // Wrong dimensionality.
        assert!(matches!(
            idx.validate_against_dataset(3, &flat),
            Err(EclipseError::DimensionMismatch { .. })
        ));
        // Different data under the same shape.
        let mut other = flat.clone();
        other[0] += 1.0;
        assert!(matches!(
            idx.validate_against_dataset(2, &other),
            Err(EclipseError::SnapshotMismatch { .. })
        ));
        // Truncated dataset: a skyline id falls out of range.
        assert!(matches!(
            idx.validate_against_dataset(2, &flat[..2]),
            Err(EclipseError::SnapshotMismatch { .. })
        ));
    }

    #[test]
    fn index_reuse_across_many_queries() {
        // The whole point of the index: one build, many queries; verify a
        // sweep of query ranges against the baseline.
        let mut rng = rand::rngs::StdRng::seed_from_u64(76);
        let pts: Vec<Point> = (0..400)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        let idx = EclipseIndex::build(&pts, IndexConfig::default()).unwrap();
        for (lo, hi) in [(0.18, 5.67), (0.36, 2.75), (0.58, 1.73), (0.84, 1.19)] {
            let b = WeightRatioBox::uniform(3, lo, hi).unwrap();
            assert_eq!(idx.query(&b).unwrap(), eclipse_baseline(&pts, &b).unwrap());
        }
        assert!(idx.backend_nodes() >= 1);
    }
}
