//! The high-level query facade.
//!
//! [`EclipseEngine`] owns a dataset and exposes every operator of the paper
//! behind one object: eclipse queries (with automatic algorithm selection or
//! an explicit choice), the classic 1NN / kNN and skyline operators, the
//! convex-hull query, preference-specification lowering, and lazily built,
//! thread-shareable index structures for repeated eclipse queries.
//!
//! # Mutability and epochs
//!
//! The dataset is mutable through [`EclipseEngine::insert`] and
//! [`EclipseEngine::delete`].  Every mutation bumps a monotonically
//! increasing **epoch**; the point vector and every built index slot are
//! tagged with the epoch they belong to, and probes read whatever consistent
//! `(points, index)` version is installed when they start — an in-flight
//! probe holding the old `Arc`s keeps answering from the pre-mutation
//! snapshot while the post-mutation version swaps in atomically behind it.
//!
//! Mutations maintain the skyline (and the built intersection indexes)
//! **incrementally** instead of rebuilding from scratch:
//!
//! * an insert dominated by a skyline member changes nothing — the arenas
//!   are re-tagged with the new epoch as-is;
//! * a skyline-entering insert evicts exactly the members it dominates and
//!   rebuilds the built indexes from the updated skyline (the full-dataset
//!   skyline pass is skipped);
//! * a delete of a non-skyline row leaves the skyline point-set untouched —
//!   the indexes are copied with ids above the deleted row shifted down,
//!   every arena byte unchanged;
//! * a delete of a skyline member promotes exactly the points it exclusively
//!   dominated (an `O(n·d)` candidate scan, not a full skyline recompute).
//!
//! In every case the maintained index is **byte-identical** to a fresh
//! rebuild over the mutated dataset (asserted by the mutation property
//! suites and on every `experiments -- mutate` pass).

use std::sync::{Arc, Mutex, RwLock};

use eclipse_geom::point::Point;
use eclipse_persist::{enc, Cursor, SnapshotReader, SnapshotWriter};
use eclipse_skyline::dominance::dominates;
use eclipse_skyline::knn::{knn_linear_scan, ratio_to_weights, Neighbor};

use crate::algo::baseline::eclipse_baseline;
use crate::algo::transform::{eclipse_transform_with, run_skyline, SkylineBackend};
use crate::dominance::eclipse_naive;
use crate::error::{EclipseError, Result};
use crate::exec::{ExecutionContext, QueryOptions};
use crate::explain::{dominators_of_with, winner_intervals_2d_with, WinnerInterval};
use crate::index::{EclipseIndex, IndexConfig, IntersectionIndexKind};
use crate::prefs::PreferenceSpec;
use crate::relations::RelationReport;
use crate::weights::WeightRatioBox;

/// Which eclipse algorithm answers a query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Algorithm {
    /// Pick automatically: indexes if already built, otherwise the
    /// transformation-based algorithm, with analytic fallbacks for unbounded
    /// ranges.
    #[default]
    Auto,
    /// BASE — the O(n²·2^{d−1}) pairwise algorithm.
    Baseline,
    /// TRAN — the transformation-based algorithm.
    Transform,
    /// QUAD — index-based with the line-quadtree Intersection Index.
    IndexQuadtree,
    /// CUTTING — index-based with the cutting-tree Intersection Index.
    IndexCuttingTree,
}

/// How a mutation changed the skyline (and with it the index maintenance
/// work it required).  Reported over the wire by the serving layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationOutcome {
    /// The inserted point is dominated by a skyline member: the skyline and
    /// every built index are unchanged (re-tagged with the new epoch).
    InsertedDominated,
    /// The inserted point entered the skyline, evicting the members it
    /// dominates; built indexes were rebuilt from the updated skyline.
    InsertedSkyline,
    /// The deleted row was not a skyline member: the skyline point-set is
    /// unchanged and the built indexes were copied with remapped ids.
    DeletedNonSkyline,
    /// The deleted row was a skyline member: its exclusively-dominated
    /// points were promoted and built indexes rebuilt.
    DeletedSkyline,
}

/// What a successful [`EclipseEngine::insert`] / [`EclipseEngine::delete`]
/// did: the classification, the dataset epoch it produced, and the
/// post-mutation point count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MutationSummary {
    /// How the mutation changed the skyline.
    pub outcome: MutationOutcome,
    /// The dataset epoch after the mutation (starts at 0, +1 per mutation).
    pub epoch: u64,
    /// The number of points after the mutation.
    pub len: usize,
}

/// One immutable version of the dataset: the points and the epoch they
/// belong to.  Probes clone the `Arc` under a brief read lock; mutations
/// install the successor version atomically.
#[derive(Clone)]
struct DatasetVersion {
    points: Arc<Vec<Point>>,
    epoch: u64,
}

/// A built index tagged with the dataset epoch it covers.  A slot whose
/// epoch is behind the dataset's is stale — it is never served, and the next
/// build (or mutation) replaces it.
#[derive(Clone)]
struct IndexSlot {
    epoch: u64,
    index: Arc<EclipseIndex>,
}

/// A dataset plus cached index structures, answering all queries from the
/// paper.  Cheap to share across threads (`&self` queries only).
pub struct EclipseEngine {
    dataset: RwLock<DatasetVersion>,
    dim: usize,
    quad_index: RwLock<Option<IndexSlot>>,
    cutting_index: RwLock<Option<IndexSlot>>,
    /// Epoch-tagged skyline ids of the current dataset version, maintained
    /// incrementally by mutations so consecutive mutations never recompute
    /// the skyline from scratch.
    skyline_cache: RwLock<Option<(u64, Arc<Vec<usize>>)>>,
    index_config: IndexConfig,
    exec: ExecutionContext,
    /// Serializes mutations (and snapshot writes) so each computes against a
    /// stable pre-image.  Probes never take this lock.
    mutation: Mutex<()>,
}

impl EclipseEngine {
    /// Creates an engine over the dataset.
    ///
    /// # Errors
    /// * [`EclipseError::EmptyDataset`] for an empty dataset.
    /// * [`EclipseError::Unsupported`] for 1-dimensional data.
    /// * [`EclipseError::DimensionMismatch`] for mixed dimensionalities.
    pub fn new(points: Vec<Point>) -> Result<Self> {
        Self::with_index_config(points, IndexConfig::default())
    }

    /// Creates an engine with explicit index-construction parameters.
    ///
    /// # Errors
    /// Same as [`EclipseEngine::new`].
    pub fn with_index_config(points: Vec<Point>, index_config: IndexConfig) -> Result<Self> {
        let Some(first) = points.first() else {
            return Err(EclipseError::EmptyDataset);
        };
        let dim = first.dim();
        if dim < 2 {
            return Err(EclipseError::Unsupported(
                "eclipse queries require d ≥ 2".to_string(),
            ));
        }
        for p in &points {
            if p.dim() != dim {
                return Err(EclipseError::DimensionMismatch {
                    expected: dim,
                    found: p.dim(),
                });
            }
        }
        Ok(EclipseEngine {
            dataset: RwLock::new(DatasetVersion {
                points: Arc::new(points),
                epoch: 0,
            }),
            dim,
            quad_index: RwLock::new(None),
            cutting_index: RwLock::new(None),
            skyline_cache: RwLock::new(None),
            index_config,
            exec: ExecutionContext::default(),
            mutation: Mutex::new(()),
        })
    }

    /// A consistent `(points, epoch)` snapshot of the current dataset.
    fn version(&self) -> DatasetVersion {
        self.dataset.read().expect("dataset lock poisoned").clone()
    }

    /// The cache slot of the given index kind.
    fn slot(&self, kind: IntersectionIndexKind) -> &RwLock<Option<IndexSlot>> {
        match kind {
            IntersectionIndexKind::Quadtree => &self.quad_index,
            IntersectionIndexKind::CuttingTree => &self.cutting_index,
        }
    }

    /// Replaces the engine's execution context (builder style): the thread
    /// pool used by parallel skyline backends, index construction and
    /// explanations.  Contexts are `Arc`-backed, so many engines can share
    /// one pool.
    pub fn with_execution_context(mut self, exec: ExecutionContext) -> Self {
        self.exec = exec;
        self
    }

    /// The engine's execution context.
    pub fn execution_context(&self) -> &ExecutionContext {
        &self.exec
    }

    /// Number of points in the current dataset version.
    pub fn len(&self) -> usize {
        self.dataset
            .read()
            .expect("dataset lock poisoned")
            .points
            .len()
    }

    /// `true` when the dataset is empty (never true — construction rejects
    /// empty datasets and deletes refuse to remove the last point).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dataset dimensionality (fixed for the lifetime of the engine;
    /// mutations cannot change it).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The current dataset version's points — a cheap `Arc` clone, so the
    /// returned snapshot stays valid (and unchanged) across concurrent
    /// mutations.
    pub fn points(&self) -> Arc<Vec<Point>> {
        self.dataset
            .read()
            .expect("dataset lock poisoned")
            .points
            .clone()
    }

    /// The current dataset epoch: 0 at construction, +1 per mutation.
    /// Snapshots record it and stale-epoch restores are rejected.
    pub fn epoch(&self) -> u64 {
        self.dataset.read().expect("dataset lock poisoned").epoch
    }

    /// Heap bytes owned by the current dataset version: the point vector
    /// (at capacity) plus every point's boxed coordinate slice.  Points all
    /// share the engine's dimensionality, so the coordinate payload is
    /// `len · dim · 8` without walking the points.
    pub fn dataset_heap_bytes(&self) -> usize {
        let guard = self.dataset.read().expect("dataset lock poisoned");
        guard.points.capacity() * std::mem::size_of::<Point>()
            + guard.points.len() * self.dim * std::mem::size_of::<f64>()
    }

    /// Heap bytes owned by the engine: the dataset, any cached index (both
    /// backend kinds, stale or current — a stale slot still occupies memory
    /// until the next build replaces it) and the cached skyline id list.
    /// This is the per-dataset figure the serving layer's memory budget
    /// accounts against; exact up to allocator headers and `Arc`/lock
    /// control blocks.
    pub fn heap_bytes(&self) -> usize {
        let mut total = self.dataset_heap_bytes();
        for slot in [&self.quad_index, &self.cutting_index] {
            if let Some(slot) = slot.read().expect("index lock poisoned").as_ref() {
                total += slot.index.heap_bytes();
            }
        }
        if let Some((_, ids)) = self
            .skyline_cache
            .read()
            .expect("skyline cache poisoned")
            .as_ref()
        {
            total += ids.capacity() * std::mem::size_of::<usize>();
        }
        total
    }

    /// Eagerly builds (and caches) the index of the given kind **for the
    /// current dataset epoch**, returning a shared handle.  Subsequent
    /// `Auto` queries will use it; a cached index left behind by an older
    /// epoch is ignored and rebuilt.
    ///
    /// # Errors
    /// Propagates index-construction errors.
    pub fn build_index(&self, kind: IntersectionIndexKind) -> Result<Arc<EclipseIndex>> {
        let slot = self.slot(kind);
        loop {
            let version = self.version();
            if let Some(s) = slot.read().expect("index lock poisoned").as_ref() {
                if s.epoch == version.epoch {
                    return Ok(Arc::clone(&s.index));
                }
            }
            let mut config = self.index_config;
            config.kind = kind;
            let built = Arc::new(EclipseIndex::build_with(
                &version.points,
                config,
                &self.exec,
            )?);
            // Install only if the dataset has not moved on while we built; a
            // racing mutation installs its own maintained index for the new
            // epoch, so a stale build is discarded and retried.
            let dataset = self.dataset.read().expect("dataset lock poisoned");
            if dataset.epoch == version.epoch {
                *slot.write().expect("index lock poisoned") = Some(IndexSlot {
                    epoch: version.epoch,
                    index: Arc::clone(&built),
                });
                return Ok(built);
            }
        }
    }

    /// Answers an eclipse query with automatic algorithm selection.
    ///
    /// # Errors
    /// Propagates validation errors (dimension mismatch, malformed ranges).
    pub fn eclipse(&self, ratio_box: &WeightRatioBox) -> Result<Vec<usize>> {
        self.eclipse_with(ratio_box, Algorithm::Auto)
    }

    /// Answers an eclipse query with an explicit algorithm (and the default
    /// skyline backend).
    ///
    /// # Errors
    /// Propagates validation errors; explicitly chosen algorithms that cannot
    /// handle unbounded ranges surface [`EclipseError::Unsupported`].
    pub fn eclipse_with(
        &self,
        ratio_box: &WeightRatioBox,
        algorithm: Algorithm,
    ) -> Result<Vec<usize>> {
        self.eclipse_query(ratio_box, &QueryOptions::with_algorithm(algorithm))
    }

    /// Answers an eclipse query with full per-query control: algorithm and
    /// skyline-backend selection from `options`, parallelism from the
    /// engine's [`ExecutionContext`].
    ///
    /// # Errors
    /// Propagates validation errors; explicitly chosen algorithms that cannot
    /// handle unbounded ranges surface [`EclipseError::Unsupported`].
    pub fn eclipse_query(
        &self,
        ratio_box: &WeightRatioBox,
        options: &QueryOptions,
    ) -> Result<Vec<usize>> {
        if ratio_box.dim() != self.dim {
            return Err(EclipseError::DimensionMismatch {
                expected: self.dim,
                found: ratio_box.dim(),
            });
        }
        match options.algorithm {
            Algorithm::Baseline => eclipse_baseline(&self.points(), ratio_box),
            Algorithm::Transform => {
                eclipse_transform_with(&self.points(), ratio_box, options.backend, &self.exec)
            }
            Algorithm::IndexQuadtree => self
                .build_index(IntersectionIndexKind::Quadtree)?
                .query(ratio_box),
            Algorithm::IndexCuttingTree => self
                .build_index(IntersectionIndexKind::CuttingTree)?
                .query(ratio_box),
            Algorithm::Auto => self.eclipse_auto(ratio_box, options.backend),
        }
    }

    /// Answers a batch of eclipse queries, fanning the probes out over the
    /// engine's execution context — the serving-layer entry point.
    ///
    /// Index algorithms (and `Auto` over bounded boxes) route through
    /// [`EclipseIndex::query_batch`]: probes are locality-sorted, chunked
    /// over the shared `eclipse-exec` pool and answered with one reusable
    /// [`crate::index::ProbeScratch`] per worker, so the steady-state cost
    /// per probe is allocation-free tree traversal plus replay.  `Auto`
    /// prefers an already-built index and otherwise builds the engine's
    /// configured default kind once for the whole batch; batches containing
    /// unbounded boxes fall back to per-box [`Algorithm::Auto`] answering.
    /// `Baseline` / `Transform` have no batch-level structure to exploit and
    /// simply answer per box.  Results are returned in input order.
    ///
    /// # Errors
    /// Validates every box up front; no partial results are returned.
    pub fn eclipse_query_batch(
        &self,
        boxes: &[WeightRatioBox],
        options: &QueryOptions,
    ) -> Result<Vec<Vec<usize>>> {
        for b in boxes {
            if b.dim() != self.dim {
                return Err(EclipseError::DimensionMismatch {
                    expected: self.dim,
                    found: b.dim(),
                });
            }
        }
        if boxes.is_empty() {
            // Nothing to answer — in particular, do not build an index.
            return Ok(Vec::new());
        }
        match options.algorithm {
            Algorithm::IndexQuadtree => self
                .build_index(IntersectionIndexKind::Quadtree)?
                .query_batch(boxes, &self.exec),
            Algorithm::IndexCuttingTree => self
                .build_index(IntersectionIndexKind::CuttingTree)?
                .query_batch(boxes, &self.exec),
            Algorithm::Auto if boxes.iter().all(|b| !b.has_unbounded_range()) => {
                self.auto_index()?.query_batch(boxes, &self.exec)
            }
            _ => boxes
                .iter()
                .map(|b| self.eclipse_query(b, options))
                .collect(),
        }
    }

    /// Answers a batch of **count-only** eclipse queries: the result
    /// cardinality of every box, without materializing per-probe result
    /// vectors.  Index algorithms (and `Auto` over bounded boxes) route
    /// through [`EclipseIndex::count_batch`] — the same locality-sorted,
    /// scratch-per-worker fan-out as [`EclipseEngine::eclipse_query_batch`],
    /// with the order vector counted in place; other algorithms answer per
    /// box and take the length.  Results are returned in input order.
    ///
    /// # Errors
    /// Validates every box up front; no partial results are returned.
    pub fn eclipse_count_batch(
        &self,
        boxes: &[WeightRatioBox],
        options: &QueryOptions,
    ) -> Result<Vec<usize>> {
        for b in boxes {
            if b.dim() != self.dim {
                return Err(EclipseError::DimensionMismatch {
                    expected: self.dim,
                    found: b.dim(),
                });
            }
        }
        if boxes.is_empty() {
            // Nothing to answer — in particular, do not build an index.
            return Ok(Vec::new());
        }
        match options.algorithm {
            Algorithm::IndexQuadtree => self
                .build_index(IntersectionIndexKind::Quadtree)?
                .count_batch(boxes, &self.exec),
            Algorithm::IndexCuttingTree => self
                .build_index(IntersectionIndexKind::CuttingTree)?
                .count_batch(boxes, &self.exec),
            Algorithm::Auto if boxes.iter().all(|b| !b.has_unbounded_range()) => {
                self.auto_index()?.count_batch(boxes, &self.exec)
            }
            _ => boxes
                .iter()
                .map(|b| self.eclipse_query(b, options).map(|ids| ids.len()))
                .collect(),
        }
    }

    /// The cached index of the given kind, if one has been built (by
    /// [`EclipseEngine::build_index`] or lazily by a query) **and it covers
    /// the current dataset epoch** — a cheap accessor for serving-layer
    /// statistics that must not trigger an index build.
    pub fn cached_index(&self, kind: IntersectionIndexKind) -> Option<Arc<EclipseIndex>> {
        let epoch = self.epoch();
        self.slot(kind)
            .read()
            .expect("index lock poisoned")
            .as_ref()
            .filter(|s| s.epoch == epoch)
            .map(|s| Arc::clone(&s.index))
    }

    /// The index-construction parameters the engine builds indexes with.
    pub fn index_config(&self) -> &IndexConfig {
        &self.index_config
    }

    /// Serializes the dataset plus the built index of the given kind into a
    /// versioned snapshot (building and caching the index first if needed).
    /// `label` is stored alongside the dataset — servers use it to re-derive
    /// the dataset name on a warm restart — and so is the dataset **epoch**,
    /// so a restore can tell a snapshot of the same bytes at an older epoch
    /// apart from a current one.
    ///
    /// # Errors
    /// Propagates index-construction errors.
    pub fn save_snapshot(&self, label: &str, kind: IntersectionIndexKind) -> Result<Vec<u8>> {
        // Hold the mutation lock so the encoded (points, epoch, index)
        // triple is one consistent version.
        let _guard = self.mutation.lock().expect("mutation lock poisoned");
        let index = self.build_index(kind)?;
        let version = self.version();
        let mut writer = SnapshotWriter::new();
        let mut dataset = Vec::new();
        enc::put_str(&mut dataset, label);
        enc::put_u32(&mut dataset, self.dim as u32);
        enc::put_usize(&mut dataset, version.points.len());
        for p in version.points.iter() {
            for &c in p.coords() {
                enc::put_f64(&mut dataset, c);
            }
        }
        // Format v3: the dataset epoch rides at the end of the section (v1/v2
        // snapshots predate mutability and decode as epoch 0).
        enc::put_u64(&mut dataset, version.epoch);
        writer.section(crate::index::SECTION_DATASET, dataset);
        index.encode_snapshot_into(&mut writer);
        Ok(writer.finish())
    }

    /// Decodes the dataset section of an engine-level snapshot: the label,
    /// dimensionality, row-major coordinate buffer and dataset epoch (0 for
    /// pre-v3 snapshots, which predate mutability).
    fn decode_dataset_section(
        reader: &SnapshotReader<'_>,
    ) -> Result<(String, usize, Vec<f64>, u64)> {
        let mut cur = Cursor::new(reader.section(crate::index::SECTION_DATASET)?);
        let label = cur.str()?;
        let dim = cur.u32()? as usize;
        if dim < 2 {
            return Err(EclipseError::Snapshot(format!(
                "snapshot dataset dimensionality {dim} is below the d ≥ 2 minimum"
            )));
        }
        let n = cur.count(dim.saturating_mul(8))?;
        if n == 0 {
            return Err(EclipseError::Snapshot(
                "snapshot holds an empty dataset".to_string(),
            ));
        }
        let coords = cur.f64_vec(n.checked_mul(dim).ok_or_else(|| {
            EclipseError::Snapshot(format!("{n} points of dimension {dim} overflow"))
        })?)?;
        let epoch = if reader.version() >= 3 { cur.u64()? } else { 0 };
        cur.finish()?;
        Ok((label, dim, coords, epoch))
    }

    /// Reads just the dataset label out of an engine-level snapshot —
    /// container checksums are verified but nothing else is decoded, so
    /// this is the cheap way to route a snapshot file to its dataset
    /// before committing to a full restore.
    ///
    /// # Errors
    /// [`EclipseError::Snapshot`] when the container or dataset section is
    /// malformed.
    pub fn snapshot_label(bytes: &[u8]) -> Result<String> {
        let reader = SnapshotReader::parse(bytes)?;
        let mut cur = Cursor::new(reader.section(crate::index::SECTION_DATASET)?);
        Ok(cur.str()?)
    }

    /// Restores a built index from an engine-level snapshot into this
    /// engine's cache, **after validating the snapshot against the
    /// registered dataset**: the dimensionality, point count and every
    /// coordinate bit must match, and the snapshot's index configuration
    /// must agree with the engine's (apart from which backend kind it is).
    /// A snapshot of different data or an incompatible configuration is
    /// rejected with a typed error instead of being installed and serving
    /// wrong results.
    ///
    /// # Errors
    /// * [`EclipseError::Snapshot`] — the bytes are not a valid snapshot;
    /// * [`EclipseError::DimensionMismatch`] — the snapshot's dataset
    ///   dimensionality differs from the engine's;
    /// * [`EclipseError::SnapshotMismatch`] — dataset contents or index
    ///   configuration disagree.
    pub fn restore_index_snapshot(&self, bytes: &[u8]) -> Result<Arc<EclipseIndex>> {
        let reader = SnapshotReader::parse(bytes)?;
        let (_label, dim, coords, epoch) = Self::decode_dataset_section(&reader)?;
        if dim != self.dim {
            return Err(EclipseError::DimensionMismatch {
                expected: self.dim,
                found: dim,
            });
        }
        let version = self.version();
        if coords.len() != version.points.len() * self.dim
            || !version
                .points
                .iter()
                .flat_map(|p| p.coords().iter())
                .zip(coords.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits())
        {
            return Err(EclipseError::SnapshotMismatch {
                reason: format!(
                    "snapshot dataset ({} coordinates) differs from the registered dataset \
                     ({} points of dimension {})",
                    coords.len(),
                    version.points.len(),
                    self.dim
                ),
            });
        }
        if epoch != version.epoch {
            return Err(EclipseError::SnapshotMismatch {
                reason: format!(
                    "snapshot dataset epoch {epoch} differs from the engine's epoch {} \
                     (the snapshot predates or postdates a mutation)",
                    version.epoch
                ),
            });
        }
        let index = EclipseIndex::from_snapshot_reader(&reader)?;
        let mut want = self.index_config;
        want.kind = index.config().kind;
        if *index.config() != want {
            return Err(EclipseError::SnapshotMismatch {
                reason: "snapshot index configuration differs from the engine's".to_string(),
            });
        }
        index.validate_against_dataset(self.dim, &coords)?;
        let index = Arc::new(index);
        *self
            .slot(index.config().kind)
            .write()
            .expect("index lock poisoned") = Some(IndexSlot {
            epoch: version.epoch,
            index: Arc::clone(&index),
        });
        Ok(index)
    }

    /// Reconstructs a whole engine — dataset and built index — from an
    /// engine-level snapshot: the cold-start warm-restore path, paying only
    /// decode cost instead of skyline + hyperplane + tree construction.
    /// Returns the stored label alongside the engine; the restored index is
    /// installed in the engine's cache, and the engine adopts the snapshot's
    /// index configuration.
    ///
    /// # Errors
    /// [`EclipseError::Snapshot`] / [`EclipseError::SnapshotMismatch`] on
    /// any structural defect, including a skyline that does not belong to
    /// the stored dataset.
    pub fn from_snapshot(bytes: &[u8]) -> Result<(String, EclipseEngine)> {
        let reader = SnapshotReader::parse(bytes)?;
        let (label, dim, coords, epoch) = Self::decode_dataset_section(&reader)?;
        let index = EclipseIndex::from_snapshot_reader(&reader)?;
        if index.dim() != dim {
            return Err(EclipseError::Snapshot(format!(
                "index dimensionality {} disagrees with the dataset dimensionality {dim}",
                index.dim()
            )));
        }
        index.validate_against_dataset(dim, &coords)?;
        let points: Vec<Point> = coords.chunks_exact(dim).map(Point::from_slice).collect();
        let engine = EclipseEngine::with_index_config(points, *index.config())?;
        // Adopt the stored epoch so subsequent saves/restores line up with
        // the mutation history the snapshot captured.
        engine.dataset.write().expect("dataset lock poisoned").epoch = epoch;
        let kind = index.config().kind;
        let index = Arc::new(index);
        *engine.slot(kind).write().expect("index lock poisoned") = Some(IndexSlot { epoch, index });
        Ok((label, engine))
    }

    /// The index `Auto` batches route through: an already-built one of either
    /// kind if available, otherwise the engine's configured default kind
    /// (built and cached).
    fn auto_index(&self) -> Result<Arc<EclipseIndex>> {
        if let Some(idx) = self.cached_index(IntersectionIndexKind::Quadtree) {
            return Ok(idx);
        }
        if let Some(idx) = self.cached_index(IntersectionIndexKind::CuttingTree) {
            return Ok(idx);
        }
        self.build_index(self.index_config.kind)
    }

    fn eclipse_auto(
        &self,
        ratio_box: &WeightRatioBox,
        backend: SkylineBackend,
    ) -> Result<Vec<usize>> {
        // Pure skyline instantiation: use the skyline substrate directly.
        if ratio_box.is_skyline() {
            return Ok(self.skyline());
        }
        // Other unbounded ranges: the analytic pairwise predicate is the only
        // exact option (O(n²) but fully general).
        if ratio_box.has_unbounded_range() {
            return Ok(eclipse_naive(&self.points(), ratio_box));
        }
        // Finite boxes: prefer an already-built index, else TRAN.
        if let Some(idx) = self.cached_index(IntersectionIndexKind::Quadtree) {
            return idx.query(ratio_box);
        }
        if let Some(idx) = self.cached_index(IntersectionIndexKind::CuttingTree) {
            return idx.query(ratio_box);
        }
        eclipse_transform_with(&self.points(), ratio_box, backend, &self.exec)
    }

    /// Eclipse query returning the points themselves instead of indices.
    ///
    /// # Errors
    /// Same as [`EclipseEngine::eclipse`].
    pub fn eclipse_points(&self, ratio_box: &WeightRatioBox) -> Result<Vec<Point>> {
        let points = self.points();
        Ok(self
            .eclipse(ratio_box)?
            .into_iter()
            .map(|i| points[i].clone())
            .collect())
    }

    /// Answers an eclipse query from a user preference specification.
    ///
    /// # Errors
    /// Propagates preference-lowering and query errors.
    pub fn eclipse_with_preference(&self, pref: &PreferenceSpec) -> Result<Vec<usize>> {
        let ratio_box = pref.to_ratio_box(self.dim)?;
        self.eclipse(&ratio_box)
    }

    /// Size-controlled eclipse query around an exact preference: the widest
    /// symmetric relaxation of `center_ratios` whose result fits in `k`
    /// points (see [`crate::algo::keclipse`]).
    ///
    /// # Errors
    /// Propagates validation errors from the underlying computation.
    pub fn eclipse_top_k(
        &self,
        center_ratios: &[f64],
        k: usize,
    ) -> Result<crate::algo::keclipse::KEclipseResult> {
        if center_ratios.len() + 1 != self.dim {
            return Err(EclipseError::DimensionMismatch {
                expected: self.dim,
                found: center_ratios.len() + 1,
            });
        }
        crate::algo::keclipse::eclipse_top_k(&self.points(), center_ratios, k)
    }

    /// Eclipse query with a result budget: returns the eclipse points of
    /// `ratio_box` if they fit in `k`, otherwise the result of the largest
    /// centred shrink of the box that does.
    ///
    /// # Errors
    /// Propagates validation errors from the underlying computation.
    pub fn eclipse_with_budget(
        &self,
        ratio_box: &WeightRatioBox,
        k: usize,
    ) -> Result<crate::algo::keclipse::KEclipseResult> {
        if ratio_box.dim() != self.dim {
            return Err(EclipseError::DimensionMismatch {
                expected: self.dim,
                found: ratio_box.dim(),
            });
        }
        crate::algo::keclipse::eclipse_with_budget(&self.points(), ratio_box, k)
    }

    /// The skyline of the dataset (indices, ascending), computed with the
    /// divide-and-conquer algorithm; the divide step forks on the engine's
    /// execution context when it has more than one lane (results are
    /// identical at every thread count).
    pub fn skyline(&self) -> Vec<usize> {
        let version = self.version();
        self.current_skyline(&version).to_vec()
    }

    /// The skyline of the dataset computed with an explicit backend, running
    /// on the engine's execution context.  [`SkylineBackend::Auto`] picks the
    /// 2-D sweep for planar data and sort-filter otherwise.
    pub fn skyline_with(&self, backend: SkylineBackend) -> Vec<usize> {
        run_skyline(&self.points(), backend, &self.exec)
    }

    /// The skyline of `version`, from (in preference order) the epoch-tagged
    /// cache, the skyline ids of an already-built index slot at the same
    /// epoch, or a fresh divide-and-conquer run.  The result is cached under
    /// `version.epoch` so consecutive mutations never recompute it.
    fn current_skyline(&self, version: &DatasetVersion) -> Arc<Vec<usize>> {
        if let Some((epoch, sky)) = self
            .skyline_cache
            .read()
            .expect("skyline cache poisoned")
            .as_ref()
        {
            if *epoch == version.epoch {
                return Arc::clone(sky);
            }
        }
        let from_slot = [
            IntersectionIndexKind::Quadtree,
            IntersectionIndexKind::CuttingTree,
        ]
        .iter()
        .find_map(|&kind| {
            self.slot(kind)
                .read()
                .expect("index lock poisoned")
                .as_ref()
                .filter(|s| s.epoch == version.epoch)
                .map(|s| s.index.skyline_ids().to_vec())
        });
        let sky = Arc::new(from_slot.unwrap_or_else(|| {
            eclipse_skyline::dc::skyline_dc_parallel(&version.points, self.exec.pool())
        }));
        *self.skyline_cache.write().expect("skyline cache poisoned") =
            Some((version.epoch, Arc::clone(&sky)));
        sky
    }

    /// Explains why `target` is (or is not) in the eclipse result: the
    /// indices of the points eclipse-dominating it (empty exactly when
    /// `target` is an eclipse point).  The dominance scan fans out over the
    /// engine's execution context on large datasets.
    ///
    /// # Errors
    /// [`EclipseError::DimensionMismatch`] for a mismatched box,
    /// [`EclipseError::Unsupported`] for an out-of-range `target`.
    pub fn explain(&self, target: usize, ratio_box: &WeightRatioBox) -> Result<Vec<usize>> {
        if ratio_box.dim() != self.dim {
            return Err(EclipseError::DimensionMismatch {
                expected: self.dim,
                found: ratio_box.dim(),
            });
        }
        let points = self.points();
        if target >= points.len() {
            return Err(EclipseError::Unsupported(format!(
                "explain target {target} out of range for {} points",
                points.len()
            )));
        }
        Ok(dominators_of_with(&points, target, ratio_box, &self.exec))
    }

    /// For 2-D data: the partition of the query ratio range into maximal
    /// sub-intervals with a constant 1NN winner (see
    /// [`crate::explain::winner_intervals_2d`]).
    ///
    /// # Errors
    /// Propagates the validation errors of the underlying computation.
    pub fn winner_intervals(&self, ratio_box: &WeightRatioBox) -> Result<Vec<WinnerInterval>> {
        winner_intervals_2d_with(&self.points(), ratio_box, &self.exec)
    }

    /// The convex-hull-query points of the dataset (origin's view).
    pub fn convex_hull(&self) -> Vec<usize> {
        eclipse_skyline::hull::hull_query_lp(&self.points())
    }

    /// Top-k points under the linear scoring function induced by a ratio
    /// vector (the paper's kNN).
    ///
    /// # Errors
    /// [`EclipseError::DimensionMismatch`] when `ratios.len() + 1 != d`.
    pub fn knn(&self, ratios: &[f64], k: usize) -> Result<Vec<Neighbor>> {
        if ratios.len() + 1 != self.dim {
            return Err(EclipseError::DimensionMismatch {
                expected: self.dim,
                found: ratios.len() + 1,
            });
        }
        Ok(knn_linear_scan(
            &self.points(),
            &ratio_to_weights(ratios),
            k,
        ))
    }

    /// The single nearest neighbour under a ratio vector (1NN).
    ///
    /// # Errors
    /// Same as [`EclipseEngine::knn`].
    pub fn nn(&self, ratios: &[f64]) -> Result<Option<Neighbor>> {
        Ok(self.knn(ratios, 1)?.into_iter().next())
    }

    /// Side-by-side relationship report (1NN / eclipse / hull / skyline).
    ///
    /// # Errors
    /// Propagates eclipse-query errors.
    pub fn relations(&self, ratio_box: &WeightRatioBox) -> Result<RelationReport> {
        RelationReport::compute(&self.points(), ratio_box)
    }

    /// Inserts a point, incrementally maintaining the skyline and any built
    /// index arenas, and bumps the dataset epoch.  In-flight probes holding
    /// the previous dataset/index `Arc`s keep reading the old version; the
    /// new one swaps in atomically.
    ///
    /// Maintenance rules (exact, duplicate-inclusive skyline):
    /// * some skyline member dominates `p` → the skyline is unchanged
    ///   ([`MutationOutcome::InsertedDominated`]); built arenas are re-tagged
    ///   at the new epoch without rebuilding.
    /// * otherwise `p` enters the skyline and evicts exactly the members it
    ///   dominates ([`MutationOutcome::InsertedSkyline`]); built index kinds
    ///   are reconstructed from the maintained skyline (byte-identical to a
    ///   from-scratch build, which recomputes the skyline too).
    ///
    /// # Errors
    /// [`EclipseError::DimensionMismatch`] when the point's dimensionality
    /// differs from the engine's; index-construction errors propagate.
    pub fn insert(&self, point: Point) -> Result<MutationSummary> {
        if point.dim() != self.dim {
            return Err(EclipseError::DimensionMismatch {
                expected: self.dim,
                found: point.dim(),
            });
        }
        let _guard = self.mutation.lock().expect("mutation lock poisoned");
        let version = self.version();
        let sky = self.current_skyline(&version);
        let new_id = version.points.len();
        if sky.iter().any(|&id| dominates(&version.points[id], &point)) {
            // Dominated insert: skyline and arenas are unchanged — re-tag the
            // built slots at the new epoch so probes keep hitting them.
            let slots = self.built_slots(version.epoch);
            let mut dataset = self.dataset.write().expect("dataset lock poisoned");
            Arc::make_mut(&mut dataset.points).push(point);
            dataset.epoch += 1;
            let epoch = dataset.epoch;
            let len = dataset.points.len();
            self.install_slots(epoch, slots);
            *self.skyline_cache.write().expect("skyline cache poisoned") =
                Some((epoch, Arc::clone(&sky)));
            drop(dataset);
            return Ok(MutationSummary {
                outcome: MutationOutcome::InsertedDominated,
                epoch,
                len,
            });
        }
        // Skyline-entering insert: evict the members the new point dominates
        // and rebuild the built index kinds from the maintained skyline.
        let mut new_sky: Vec<usize> = sky
            .iter()
            .copied()
            .filter(|&id| !dominates(&point, &version.points[id]))
            .collect();
        new_sky.push(new_id);
        let mut new_points: Vec<Point> = (*version.points).clone();
        new_points.push(point);
        let rebuilt = self.rebuild_built_slots(&new_points, &new_sky, version.epoch)?;
        let mut dataset = self.dataset.write().expect("dataset lock poisoned");
        dataset.points = Arc::new(new_points);
        dataset.epoch += 1;
        let epoch = dataset.epoch;
        let len = dataset.points.len();
        self.install_slots(epoch, rebuilt);
        *self.skyline_cache.write().expect("skyline cache poisoned") =
            Some((epoch, Arc::new(new_sky)));
        drop(dataset);
        Ok(MutationSummary {
            outcome: MutationOutcome::InsertedSkyline,
            epoch,
            len,
        })
    }

    /// Deletes the point with index `id`, incrementally maintaining the
    /// skyline and any built index arenas, and bumps the dataset epoch.
    /// Point ids above `id` shift down by one, exactly as if the engine had
    /// been rebuilt from the mutated dataset.
    ///
    /// Maintenance rules (exact, duplicate-inclusive skyline):
    /// * `id` is not a skyline member → the skyline *point set* is unchanged
    ///   ([`MutationOutcome::DeletedNonSkyline`]); built arenas are patched
    ///   by remapping stored ids, byte-identical to a rebuild.
    /// * `id` is a skyline member → exactly its exclusively-dominated points
    ///   are promoted ([`MutationOutcome::DeletedSkyline`]): candidates are
    ///   the points `id` dominates, survivors those no remaining skyline
    ///   member dominates, and the promoted set is the skyline of the
    ///   survivors.  A remaining bit-identical duplicate promotes nothing.
    ///
    /// # Errors
    /// [`EclipseError::Unsupported`] for an out-of-range `id` or when the
    /// delete would empty the dataset; index-construction errors propagate.
    pub fn delete(&self, id: usize) -> Result<MutationSummary> {
        let _guard = self.mutation.lock().expect("mutation lock poisoned");
        let version = self.version();
        if id >= version.points.len() {
            return Err(EclipseError::Unsupported(format!(
                "delete id {id} out of range for {} points",
                version.points.len()
            )));
        }
        if version.points.len() == 1 {
            return Err(EclipseError::Unsupported(
                "deleting the last point would empty the dataset".to_string(),
            ));
        }
        let sky = self.current_skyline(&version);
        match sky.binary_search(&id) {
            Err(_) => {
                // Non-skyline delete: everything `id` dominated is still
                // dominated by `id`'s own dominator, so the skyline point set
                // is unchanged — patch the stored ids in the built arenas.
                let slots = self.built_slots(version.epoch);
                let patched: Vec<(IntersectionIndexKind, Arc<EclipseIndex>)> = slots
                    .into_iter()
                    .map(|(kind, index)| (kind, Arc::new(index.with_deleted_id(id))))
                    .collect();
                let remapped: Vec<usize> = sky
                    .iter()
                    .map(|&s| if s > id { s - 1 } else { s })
                    .collect();
                let mut dataset = self.dataset.write().expect("dataset lock poisoned");
                Arc::make_mut(&mut dataset.points).remove(id);
                dataset.epoch += 1;
                let epoch = dataset.epoch;
                let len = dataset.points.len();
                self.install_slots(epoch, patched);
                *self.skyline_cache.write().expect("skyline cache poisoned") =
                    Some((epoch, Arc::new(remapped)));
                drop(dataset);
                Ok(MutationSummary {
                    outcome: MutationOutcome::DeletedNonSkyline,
                    epoch,
                    len,
                })
            }
            Ok(pos) => {
                let removed = &version.points[id];
                // A remaining bit-identical duplicate still dominates every
                // candidate the removed member dominated: nothing promotes.
                let has_duplicate = sky.iter().any(|&s| {
                    s != id
                        && version.points[s]
                            .coords()
                            .iter()
                            .zip(removed.coords().iter())
                            .all(|(a, b)| a.to_bits() == b.to_bits())
                });
                let promoted: Vec<usize> = if has_duplicate {
                    Vec::new()
                } else {
                    // Candidates: the points the removed member dominated
                    // (skyline members are never dominated, so they are
                    // excluded automatically).  Survivors: candidates no
                    // remaining skyline member dominates — a non-candidate
                    // non-skyline dominator is itself dominated by a skyline
                    // member, so checking the skyline suffices.
                    let survivors: Vec<usize> = (0..version.points.len())
                        .filter(|&q| q != id && dominates(removed, &version.points[q]))
                        .filter(|&q| {
                            !sky.iter().any(|&s| {
                                s != id && dominates(&version.points[s], &version.points[q])
                            })
                        })
                        .collect();
                    let survivor_points: Vec<Point> = survivors
                        .iter()
                        .map(|&q| version.points[q].clone())
                        .collect();
                    eclipse_skyline::dc::skyline_dc_parallel(&survivor_points, self.exec.pool())
                        .into_iter()
                        .map(|local| survivors[local])
                        .collect()
                };
                let mut new_sky: Vec<usize> = sky
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != pos)
                    .map(|(_, &s)| s)
                    .chain(promoted)
                    .collect();
                new_sky.sort_unstable();
                for s in &mut new_sky {
                    if *s > id {
                        *s -= 1;
                    }
                }
                let mut new_points: Vec<Point> = (*version.points).clone();
                new_points.remove(id);
                let rebuilt = self.rebuild_built_slots(&new_points, &new_sky, version.epoch)?;
                let mut dataset = self.dataset.write().expect("dataset lock poisoned");
                dataset.points = Arc::new(new_points);
                dataset.epoch += 1;
                let epoch = dataset.epoch;
                let len = dataset.points.len();
                self.install_slots(epoch, rebuilt);
                *self.skyline_cache.write().expect("skyline cache poisoned") =
                    Some((epoch, Arc::new(new_sky)));
                drop(dataset);
                Ok(MutationSummary {
                    outcome: MutationOutcome::DeletedSkyline,
                    epoch,
                    len,
                })
            }
        }
    }

    /// The index slots currently built at `epoch`, as (kind, index) pairs.
    fn built_slots(&self, epoch: u64) -> Vec<(IntersectionIndexKind, Arc<EclipseIndex>)> {
        [
            IntersectionIndexKind::Quadtree,
            IntersectionIndexKind::CuttingTree,
        ]
        .iter()
        .filter_map(|&kind| {
            self.slot(kind)
                .read()
                .expect("index lock poisoned")
                .as_ref()
                .filter(|s| s.epoch == epoch)
                .map(|s| (kind, Arc::clone(&s.index)))
        })
        .collect()
    }

    /// Rebuilds each currently-built index kind from the maintained skyline
    /// of the mutated dataset.  Because equal skyline id sets produce
    /// byte-identical arenas, the result is exactly what a from-scratch
    /// build would install.
    fn rebuild_built_slots(
        &self,
        points: &[Point],
        skyline_ids: &[usize],
        epoch: u64,
    ) -> Result<Vec<(IntersectionIndexKind, Arc<EclipseIndex>)>> {
        self.built_slots(epoch)
            .into_iter()
            .map(|(kind, _)| {
                let mut config = self.index_config;
                config.kind = kind;
                EclipseIndex::build_from_skyline(points, skyline_ids.to_vec(), config, &self.exec)
                    .map(|idx| (kind, Arc::new(idx)))
            })
            .collect()
    }

    /// Installs `slots` at `epoch`, clearing built slots of kinds not in the
    /// list (their arenas are stale).  Callers hold the dataset write lock,
    /// so probes observe the dataset and its index slots move together.
    fn install_slots(&self, epoch: u64, slots: Vec<(IntersectionIndexKind, Arc<EclipseIndex>)>) {
        for kind in [
            IntersectionIndexKind::Quadtree,
            IntersectionIndexKind::CuttingTree,
        ] {
            let replacement = slots
                .iter()
                .find(|(k, _)| *k == kind)
                .map(|(_, index)| IndexSlot {
                    epoch,
                    index: Arc::clone(index),
                });
            let mut slot = self.slot(kind).write().expect("index lock poisoned");
            if replacement.is_some() || slot.is_some() {
                *slot = replacement;
            }
        }
    }
}

impl std::fmt::Debug for EclipseEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let version = self.version();
        f.debug_struct("EclipseEngine")
            .field("points", &version.points.len())
            .field("epoch", &version.epoch)
            .field("dim", &self.dim)
            .field(
                "quad_index_built",
                &self
                    .quad_index
                    .read()
                    .expect("index lock poisoned")
                    .is_some(),
            )
            .field(
                "cutting_index_built",
                &self
                    .cutting_index
                    .read()
                    .expect("index lock poisoned")
                    .is_some(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    fn paper_points() -> Vec<Point> {
        vec![
            p(&[1.0, 6.0]),
            p(&[4.0, 4.0]),
            p(&[6.0, 1.0]),
            p(&[8.0, 5.0]),
        ]
    }

    fn paper_engine() -> EclipseEngine {
        EclipseEngine::new(paper_points()).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(matches!(
            EclipseEngine::new(vec![]),
            Err(EclipseError::EmptyDataset)
        ));
        assert!(EclipseEngine::new(vec![p(&[1.0])]).is_err());
        assert!(EclipseEngine::new(vec![p(&[1.0, 2.0]), p(&[1.0, 2.0, 3.0])]).is_err());
        let e = paper_engine();
        assert_eq!(e.len(), 4);
        assert_eq!(e.dim(), 2);
        assert!(!e.is_empty());
        assert_eq!(e.points().len(), 4);
        assert!(format!("{e:?}").contains("EclipseEngine"));
    }

    #[test]
    fn all_algorithms_agree_on_the_running_example() {
        let e = paper_engine();
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        for alg in [
            Algorithm::Auto,
            Algorithm::Baseline,
            Algorithm::Transform,
            Algorithm::IndexQuadtree,
            Algorithm::IndexCuttingTree,
        ] {
            assert_eq!(e.eclipse_with(&b, alg).unwrap(), vec![0, 1, 2], "{alg:?}");
        }
        let pts = e.eclipse_points(&b).unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], p(&[1.0, 6.0]));
    }

    #[test]
    fn auto_uses_skyline_for_skyline_instantiation() {
        let e = paper_engine();
        let sky = WeightRatioBox::skyline(2).unwrap();
        assert_eq!(e.eclipse(&sky).unwrap(), vec![0, 1, 2]);
        assert_eq!(e.skyline(), vec![0, 1, 2]);
        // Explicit algorithms that need finite ranges refuse it.
        assert!(e.eclipse_with(&sky, Algorithm::Transform).is_err());
        assert!(e.eclipse_with(&sky, Algorithm::Baseline).is_err());
    }

    #[test]
    fn auto_handles_partially_unbounded_boxes() {
        let e = paper_engine();
        let b = WeightRatioBox::from_bounds(&[(1.0, f64::INFINITY)]).unwrap();
        let got = e.eclipse(&b).unwrap();
        // Exact answer: dominance needs S(p) ≤ S(q) at r = 1 and p[0] ≤ q[0];
        // p1(1,6): no one has both smaller x and smaller r=1 score; p2(4,4)
        // undominated (p1 has bigger sum at r=1? 7 vs 8 — p1 smaller sum but
        // larger x? no, x=1 < 4 — p1 dominates p2? needs p1[0] ≤ p2[0] (1 ≤ 4)
        // and score at r=1: 7 ≤ 8 — yes, with strictness ⇒ p2 is dominated).
        assert!(got.contains(&0));
        assert!(!got.contains(&3));
        assert_eq!(got, crate::dominance::eclipse_naive(&e.points(), &b));
    }

    #[test]
    fn preference_specs_route_through_the_engine() {
        let e = paper_engine();
        let pref = PreferenceSpec::RelaxedWeights {
            ratios: vec![1.0],
            margin: 0.5,
        };
        let got = e.eclipse_with_preference(&pref).unwrap();
        let b = WeightRatioBox::uniform(2, 0.5, 1.5).unwrap();
        assert_eq!(got, e.eclipse(&b).unwrap());

        // Categorical preference with an unbounded top level still answers.
        let pref = PreferenceSpec::Categorical(vec![crate::prefs::ImportanceLevel::VeryImportant]);
        let got = e.eclipse_with_preference(&pref).unwrap();
        assert!(!got.is_empty());
    }

    #[test]
    fn knn_and_hull_accessors() {
        let e = paper_engine();
        let nn = e.nn(&[2.0]).unwrap().unwrap();
        assert_eq!(nn.index, 0);
        let top2 = e.knn(&[2.0], 2).unwrap();
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[1].index, 1);
        assert!(e.knn(&[2.0, 1.0], 1).is_err());
        assert_eq!(e.convex_hull(), vec![0, 2]);
        let rel = e
            .relations(&WeightRatioBox::uniform(2, 0.25, 2.0).unwrap())
            .unwrap();
        assert_eq!(rel.eclipse, vec![0, 1, 2]);
    }

    #[test]
    fn size_controlled_queries_through_the_engine() {
        let e = paper_engine();
        let top1 = e.eclipse_top_k(&[2.0], 1).unwrap();
        assert_eq!(top1.indices, vec![0]);
        let budget = e
            .eclipse_with_budget(&WeightRatioBox::uniform(2, 0.25, 2.0).unwrap(), 2)
            .unwrap();
        assert!(budget.indices.len() <= 2);
        assert!(!budget.indices.is_empty());
        // Dimension mismatches are caught up front.
        assert!(e.eclipse_top_k(&[2.0, 1.0], 1).is_err());
        assert!(e
            .eclipse_with_budget(&WeightRatioBox::uniform(3, 0.5, 1.0).unwrap(), 2)
            .is_err());
    }

    #[test]
    fn index_is_cached_and_reused() {
        let e = paper_engine();
        let a = e.build_index(IntersectionIndexKind::Quadtree).unwrap();
        let b = e.build_index(IntersectionIndexKind::Quadtree).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // Auto now routes through the cached index.
        let bx = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        assert_eq!(e.eclipse(&bx).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn dimension_mismatch_is_rejected_up_front() {
        let e = paper_engine();
        let wrong = WeightRatioBox::uniform(3, 0.5, 1.0).unwrap();
        assert!(matches!(
            e.eclipse(&wrong),
            Err(EclipseError::DimensionMismatch {
                expected: 2,
                found: 3
            })
        ));
    }

    #[test]
    fn algorithms_agree_on_random_3d_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        let pts: Vec<Point> = (0..250)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        let e = EclipseEngine::new(pts).unwrap();
        let b = WeightRatioBox::uniform(3, 0.36, 2.75).unwrap();
        let baseline = e.eclipse_with(&b, Algorithm::Baseline).unwrap();
        for alg in [
            Algorithm::Auto,
            Algorithm::Transform,
            Algorithm::IndexQuadtree,
            Algorithm::IndexCuttingTree,
        ] {
            assert_eq!(e.eclipse_with(&b, alg).unwrap(), baseline, "{alg:?}");
        }
    }

    #[test]
    fn eclipse_query_options_and_contexts_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(103);
        let pts: Vec<Point> = (0..2000)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        let b = WeightRatioBox::uniform(3, 0.36, 2.75).unwrap();
        let serial = EclipseEngine::new(pts.clone())
            .unwrap()
            .with_execution_context(ExecutionContext::serial());
        let wide = EclipseEngine::new(pts)
            .unwrap()
            .with_execution_context(ExecutionContext::with_threads(4));
        assert_eq!(serial.execution_context().threads(), 1);
        assert_eq!(wide.execution_context().threads(), 4);
        let expected = serial.eclipse(&b).unwrap();
        for backend in [
            SkylineBackend::Auto,
            SkylineBackend::SortFilter,
            SkylineBackend::ParallelBlockNestedLoop,
            SkylineBackend::ParallelSortFilter,
            SkylineBackend::ParallelDivideConquer,
        ] {
            let opts = QueryOptions::transform(backend);
            assert_eq!(serial.eclipse_query(&b, &opts).unwrap(), expected);
            assert_eq!(wide.eclipse_query(&b, &opts).unwrap(), expected);
        }
        assert_eq!(
            wide.eclipse_query(&b, &QueryOptions::parallel()).unwrap(),
            expected
        );
        // The skyline itself is context-invariant too, for every backend.
        let sky = serial.skyline();
        assert_eq!(wide.skyline(), sky);
        for backend in [
            SkylineBackend::BlockNestedLoop,
            SkylineBackend::DivideConquer,
            SkylineBackend::ParallelDivideConquer,
            SkylineBackend::ParallelSortFilter,
        ] {
            assert_eq!(wide.skyline_with(backend), sky, "{backend:?}");
        }
    }

    #[test]
    fn batched_queries_agree_with_per_probe_answers() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(104);
        let pts: Vec<Point> = (0..300)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        let boxes: Vec<WeightRatioBox> = (0..20)
            .map(|_| {
                let lo = rng.gen_range(0.05..1.5);
                WeightRatioBox::uniform(3, lo, lo + rng.gen_range(0.05..2.0)).unwrap()
            })
            .collect();
        let e = EclipseEngine::new(pts).unwrap();
        let expected: Vec<Vec<usize>> = boxes.iter().map(|b| e.eclipse(b).unwrap()).collect();
        for alg in [
            Algorithm::Auto,
            Algorithm::Baseline,
            Algorithm::Transform,
            Algorithm::IndexQuadtree,
            Algorithm::IndexCuttingTree,
        ] {
            let opts = QueryOptions::with_algorithm(alg);
            assert_eq!(
                e.eclipse_query_batch(&boxes, &opts).unwrap(),
                expected,
                "{alg:?}"
            );
        }
        // Empty batches and mixed dimensionalities are handled up front.
        assert!(e
            .eclipse_query_batch(&[], &QueryOptions::default())
            .unwrap()
            .is_empty());
        let wrong = WeightRatioBox::uniform(4, 0.5, 1.0).unwrap();
        assert!(e
            .eclipse_query_batch(&[wrong], &QueryOptions::default())
            .is_err());
    }

    #[test]
    fn count_batches_agree_with_query_batch_lengths() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(105);
        let pts: Vec<Point> = (0..300)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        let boxes: Vec<WeightRatioBox> = (0..20)
            .map(|_| {
                let lo = rng.gen_range(0.05..1.5);
                WeightRatioBox::uniform(3, lo, lo + rng.gen_range(0.05..2.0)).unwrap()
            })
            .collect();
        let e = EclipseEngine::new(pts).unwrap();
        let expected: Vec<usize> = boxes.iter().map(|b| e.eclipse(b).unwrap().len()).collect();
        for alg in [
            Algorithm::Auto,
            Algorithm::Baseline,
            Algorithm::Transform,
            Algorithm::IndexQuadtree,
            Algorithm::IndexCuttingTree,
        ] {
            let opts = QueryOptions::with_algorithm(alg);
            assert_eq!(
                e.eclipse_count_batch(&boxes, &opts).unwrap(),
                expected,
                "{alg:?}"
            );
        }
        // Empty / single-probe / mixed-dimension handling mirrors the
        // id-returning batch API.
        assert!(e
            .eclipse_count_batch(&[], &QueryOptions::default())
            .unwrap()
            .is_empty());
        assert_eq!(
            e.eclipse_count_batch(&boxes[..1], &QueryOptions::default())
                .unwrap(),
            expected[..1]
        );
        let wrong = WeightRatioBox::uniform(4, 0.5, 1.0).unwrap();
        assert!(e
            .eclipse_count_batch(&[wrong], &QueryOptions::default())
            .is_err());
        // Unbounded boxes fall back to per-probe Auto answering.
        let sky = WeightRatioBox::skyline(3).unwrap();
        let got = e
            .eclipse_count_batch(std::slice::from_ref(&sky), &QueryOptions::default())
            .unwrap();
        assert_eq!(got, vec![e.eclipse(&sky).unwrap().len()]);
    }

    #[test]
    fn cached_index_accessor_never_builds() {
        let e = paper_engine();
        assert!(e.cached_index(IntersectionIndexKind::Quadtree).is_none());
        assert!(e.cached_index(IntersectionIndexKind::CuttingTree).is_none());
        assert_eq!(
            e.index_config().kind,
            IndexConfig::default().kind,
            "default config is exposed"
        );
        let built = e.build_index(IntersectionIndexKind::Quadtree).unwrap();
        let cached = e.cached_index(IntersectionIndexKind::Quadtree).unwrap();
        assert!(Arc::ptr_eq(&built, &cached));
        assert!(e.cached_index(IntersectionIndexKind::CuttingTree).is_none());
    }

    #[test]
    fn auto_batches_with_unbounded_boxes_fall_back_per_probe() {
        let e = paper_engine();
        let sky = WeightRatioBox::skyline(2).unwrap();
        let bounded = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        let got = e
            .eclipse_query_batch(&[sky.clone(), bounded.clone()], &QueryOptions::default())
            .unwrap();
        assert_eq!(got[0], e.eclipse(&sky).unwrap());
        assert_eq!(got[1], e.eclipse(&bounded).unwrap());
        // Explicit index algorithms refuse unbounded boxes, batched too.
        assert!(e
            .eclipse_query_batch(
                &[sky],
                &QueryOptions::with_algorithm(Algorithm::IndexQuadtree)
            )
            .is_err());
    }

    #[test]
    fn explain_and_winner_intervals_through_the_engine() {
        let e = paper_engine();
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        assert_eq!(e.explain(0, &b).unwrap(), Vec::<usize>::new());
        assert_eq!(e.explain(3, &b).unwrap(), vec![0, 1, 2]);
        assert!(e.explain(7, &b).is_err());
        assert!(e
            .explain(0, &WeightRatioBox::uniform(3, 0.5, 1.0).unwrap())
            .is_err());
        let intervals = e.winner_intervals(&b).unwrap();
        assert_eq!(intervals.first().unwrap().winner, 2);
        assert_eq!(intervals.last().unwrap().winner, 0);
    }

    #[test]
    fn engine_snapshots_restore_and_cold_start() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(106);
        let pts: Vec<Point> = (0..250)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        let e = EclipseEngine::new(pts.clone()).unwrap();
        let b = WeightRatioBox::uniform(3, 0.36, 2.75).unwrap();
        let expected = e.eclipse(&b).unwrap();
        for kind in [
            IntersectionIndexKind::Quadtree,
            IntersectionIndexKind::CuttingTree,
        ] {
            let bytes = e.save_snapshot("inde", kind).unwrap();
            assert_eq!(EclipseEngine::snapshot_label(&bytes).unwrap(), "inde");
            assert!(EclipseEngine::snapshot_label(&bytes[..8]).is_err());

            // Warm-restore into a fresh engine over the same dataset.
            let fresh = EclipseEngine::new(pts.clone()).unwrap();
            assert!(fresh.cached_index(kind).is_none());
            let restored = fresh.restore_index_snapshot(&bytes).unwrap();
            assert_eq!(restored.config().kind, kind);
            let cached = fresh.cached_index(kind).unwrap();
            assert!(
                Arc::ptr_eq(&restored, &cached),
                "restore installs the index"
            );
            assert_eq!(fresh.eclipse(&b).unwrap(), expected);

            // Cold-start: dataset and index both come from the snapshot.
            let (label, cold) = EclipseEngine::from_snapshot(&bytes).unwrap();
            assert_eq!(label, "inde");
            assert_eq!(cold.len(), pts.len());
            assert!(cold.cached_index(kind).is_some());
            assert_eq!(cold.eclipse(&b).unwrap(), expected);
        }
    }

    #[test]
    fn snapshot_mismatches_are_typed_errors() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(107);
        let pts: Vec<Point> = (0..100)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        let e = EclipseEngine::new(pts.clone()).unwrap();
        let bytes = e
            .save_snapshot("ds", IntersectionIndexKind::Quadtree)
            .unwrap();

        // A different dataset of the same shape is rejected.
        let mut other_pts = pts.clone();
        other_pts[0] = Point::new(vec![9.0, 9.0, 9.0]);
        let other = EclipseEngine::new(other_pts).unwrap();
        assert!(matches!(
            other.restore_index_snapshot(&bytes),
            Err(EclipseError::SnapshotMismatch { .. })
        ));

        // A different dimensionality is rejected up front.
        let flat: Vec<Point> = (0..100)
            .map(|_| Point::new(vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]))
            .collect();
        let e2d = EclipseEngine::new(flat).unwrap();
        assert!(matches!(
            e2d.restore_index_snapshot(&bytes),
            Err(EclipseError::DimensionMismatch {
                expected: 2,
                found: 3
            })
        ));

        // An incompatible index configuration is rejected even over the same
        // dataset.
        let tweaked = EclipseEngine::with_index_config(
            pts,
            IndexConfig {
                max_ratio: 4.0,
                ..IndexConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            tweaked.restore_index_snapshot(&bytes),
            Err(EclipseError::SnapshotMismatch { .. })
        ));

        // Garbage bytes surface as snapshot errors, not panics.
        assert!(matches!(
            e.restore_index_snapshot(b"not a snapshot"),
            Err(EclipseError::Snapshot(_))
        ));
        assert!(matches!(
            EclipseEngine::from_snapshot(&bytes[..bytes.len() / 2]),
            Err(EclipseError::Snapshot(_))
        ));
    }

    /// The snapshot bytes of the engine's cached index of `kind` — the
    /// strictest observable identity between two indexes.
    fn cached_index_bytes(e: &EclipseEngine, kind: IntersectionIndexKind) -> Vec<u8> {
        e.cached_index(kind)
            .expect("index must be cached")
            .encode_snapshot()
    }

    #[test]
    fn dominated_insert_is_absorbed_without_rebuilding() {
        let e = paper_engine();
        let before = e.build_index(IntersectionIndexKind::Quadtree).unwrap();
        let summary = e.insert(p(&[5.0, 5.0])).unwrap();
        assert_eq!(summary.outcome, MutationOutcome::InsertedDominated);
        assert_eq!(summary.epoch, 1);
        assert_eq!(summary.len, 5);
        assert_eq!(e.epoch(), 1);
        // The arena was re-tagged, not rebuilt: same allocation.
        let after = e
            .cached_index(IntersectionIndexKind::Quadtree)
            .expect("index stays cached across an absorbed insert");
        assert!(Arc::ptr_eq(&before, &after));
        // Results agree with a from-scratch engine on the mutated dataset.
        let rebuilt = EclipseEngine::new(e.points().to_vec()).unwrap();
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        assert_eq!(
            e.eclipse_with(&b, Algorithm::IndexQuadtree).unwrap(),
            rebuilt.eclipse_with(&b, Algorithm::IndexQuadtree).unwrap()
        );
        assert_eq!(e.skyline(), rebuilt.skyline());
    }

    #[test]
    fn skyline_entering_insert_matches_rebuild_bytes() {
        let e = paper_engine();
        e.build_index(IntersectionIndexKind::Quadtree).unwrap();
        e.build_index(IntersectionIndexKind::CuttingTree).unwrap();
        // (2.0, 3.0) dominates (4.0, 4.0) and enters the skyline.
        let summary = e.insert(p(&[2.0, 3.0])).unwrap();
        assert_eq!(summary.outcome, MutationOutcome::InsertedSkyline);
        assert_eq!(summary.epoch, 1);
        let rebuilt = EclipseEngine::new(e.points().to_vec()).unwrap();
        assert_eq!(e.skyline(), rebuilt.skyline());
        for kind in [
            IntersectionIndexKind::Quadtree,
            IntersectionIndexKind::CuttingTree,
        ] {
            rebuilt.build_index(kind).unwrap();
            assert_eq!(
                cached_index_bytes(&e, kind),
                cached_index_bytes(&rebuilt, kind),
                "maintained {kind:?} arena must be byte-identical to a rebuild"
            );
        }
    }

    #[test]
    fn deletes_match_rebuild_bytes() {
        // id 3 = (8.0, 5.0) is dominated (non-skyline delete); id 1 =
        // (4.0, 4.0) is a skyline member whose eviction promotes nothing
        // ((8.0, 5.0) is still dominated by (6.0, 1.0)... by (1.0, 6.0)? no —
        // by remaining member (6.0, 1.0)).
        for (id, outcome) in [
            (3, MutationOutcome::DeletedNonSkyline),
            (1, MutationOutcome::DeletedSkyline),
        ] {
            let e = paper_engine();
            e.build_index(IntersectionIndexKind::Quadtree).unwrap();
            e.build_index(IntersectionIndexKind::CuttingTree).unwrap();
            let summary = e.delete(id).unwrap();
            assert_eq!(summary.outcome, outcome);
            assert_eq!(summary.epoch, 1);
            assert_eq!(summary.len, 3);
            let rebuilt = EclipseEngine::new(e.points().to_vec()).unwrap();
            assert_eq!(e.skyline(), rebuilt.skyline());
            for kind in [
                IntersectionIndexKind::Quadtree,
                IntersectionIndexKind::CuttingTree,
            ] {
                rebuilt.build_index(kind).unwrap();
                assert_eq!(
                    cached_index_bytes(&e, kind),
                    cached_index_bytes(&rebuilt, kind),
                    "delete({id}) {kind:?} arena must be byte-identical to a rebuild"
                );
            }
        }
    }

    #[test]
    fn skyline_delete_promotes_exclusively_dominated_points() {
        // (3.0, 3.0) exclusively dominates (3.5, 3.5); deleting it must
        // promote exactly that point, while (9.0, 9.0) (also dominated by
        // the surviving member (1.0, 6.0)? no — dominated by (3.5, 3.5))
        // stays out because its dominator (3.5, 3.5) is promoted.
        let e = EclipseEngine::new(vec![
            p(&[3.0, 3.0]),
            p(&[3.5, 3.5]),
            p(&[9.0, 9.0]),
            p(&[1.0, 6.0]),
        ])
        .unwrap();
        assert_eq!(e.skyline(), vec![0, 3]);
        let summary = e.delete(0).unwrap();
        assert_eq!(summary.outcome, MutationOutcome::DeletedSkyline);
        // After the remap (ids shift down): (3.5, 3.5) is id 0, (1.0, 6.0)
        // is id 2.
        assert_eq!(e.skyline(), vec![0, 2]);
        assert_eq!(
            e.skyline(),
            EclipseEngine::new(e.points().to_vec()).unwrap().skyline()
        );
    }

    #[test]
    fn duplicate_points_mutate_exactly_like_a_rebuild() {
        let e = paper_engine();
        // A bit-identical duplicate of skyline member (4.0, 4.0) enters the
        // skyline (duplicates are mutually non-dominating).
        let summary = e.insert(p(&[4.0, 4.0])).unwrap();
        assert_eq!(summary.outcome, MutationOutcome::InsertedSkyline);
        assert_eq!(e.skyline(), vec![0, 1, 2, 4]);
        assert_eq!(
            e.skyline(),
            EclipseEngine::new(e.points().to_vec()).unwrap().skyline()
        );
        // Deleting one duplicate promotes nothing: its twin still covers
        // everything it dominated.
        let summary = e.delete(1).unwrap();
        assert_eq!(summary.outcome, MutationOutcome::DeletedSkyline);
        assert_eq!(e.skyline(), vec![0, 1, 3]);
        assert_eq!(
            e.skyline(),
            EclipseEngine::new(e.points().to_vec()).unwrap().skyline()
        );
    }

    #[test]
    fn mutation_validation_errors() {
        let e = paper_engine();
        assert!(matches!(
            e.insert(p(&[1.0, 2.0, 3.0])),
            Err(EclipseError::DimensionMismatch { .. })
        ));
        assert!(matches!(e.delete(4), Err(EclipseError::Unsupported(_))));
        let tiny = EclipseEngine::new(vec![p(&[1.0, 2.0]), p(&[2.0, 1.0])]).unwrap();
        tiny.delete(0).unwrap();
        assert!(matches!(tiny.delete(0), Err(EclipseError::Unsupported(_))));
    }

    #[test]
    fn snapshot_epochs_gate_restores() {
        let e = paper_engine();
        let stale = e
            .save_snapshot("epochs", IntersectionIndexKind::Quadtree)
            .unwrap();
        // Insert then delete the same trailing point: dataset bits return to
        // the original, but the epoch advances to 2 — the stale snapshot no
        // longer matches.
        e.insert(p(&[9.0, 9.0])).unwrap();
        e.delete(4).unwrap();
        assert_eq!(e.points().to_vec(), paper_points());
        assert_eq!(e.epoch(), 2);
        assert!(matches!(
            e.restore_index_snapshot(&stale),
            Err(EclipseError::SnapshotMismatch { reason }) if reason.contains("epoch")
        ));
        // A snapshot taken now restores, and a cold start adopts the epoch.
        let fresh = e
            .save_snapshot("epochs", IntersectionIndexKind::Quadtree)
            .unwrap();
        e.restore_index_snapshot(&fresh).unwrap();
        let (label, cold) = EclipseEngine::from_snapshot(&fresh).unwrap();
        assert_eq!(label, "epochs");
        assert_eq!(cold.epoch(), 2);
        // ...and the adopted epoch round-trips through the cold engine.
        cold.restore_index_snapshot(&fresh).unwrap();
    }

    #[test]
    fn engine_is_usable_from_multiple_threads() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(102);
        let pts: Vec<Point> = (0..300)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        let e = Arc::new(EclipseEngine::new(pts).unwrap());
        let expected = e
            .eclipse(&WeightRatioBox::uniform(3, 0.36, 2.75).unwrap())
            .unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let e = Arc::clone(&e);
            let expected = expected.clone();
            handles.push(std::thread::spawn(move || {
                let b = WeightRatioBox::uniform(3, 0.36, 2.75).unwrap();
                let alg = if t % 2 == 0 {
                    Algorithm::IndexQuadtree
                } else {
                    Algorithm::IndexCuttingTree
                };
                assert_eq!(e.eclipse_with(&b, alg).unwrap(), expected);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
