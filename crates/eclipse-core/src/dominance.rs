//! 1NN-, skyline- and eclipse-dominance predicates (Definitions 1–3).
//!
//! The strictness convention is spelled out in DESIGN.md §1: `p ≺e p′`
//! ("p eclipse-dominates p′") holds when `S(p) ≤ S(p′)` for **every** ratio
//! vector in the box and `S(p) < S(p′)` for **at least one** — identical
//! points therefore never dominate each other, which keeps the relation
//! asymmetric (Property 1) and transitive (Property 2).  The weak (all-≤)
//! variant of Definition 3 is exposed as [`eclipse_dominates_weak`].
//!
//! By Theorems 1 and 2 it suffices to evaluate the scores at the `2^{d−1}`
//! corner (domination) vectors; for *unbounded* ranges (the skyline
//! instantiation) the corner set is infinite, and the predicate instead uses
//! the equivalent analytic condition on the per-dimension coefficients.

use eclipse_geom::approx::EPS;
use eclipse_geom::point::Point;

use crate::score::score_with_ratios;
use crate::weights::WeightRatioBox;

/// Returns `true` if `p` 1NN-dominates `q` for the exact ratio vector
/// `ratios`, i.e. `S(p) < S(q)` (Definition 1).
///
/// # Panics
/// Panics if `ratios.len() + 1` does not match the point dimensionality.
pub fn nn_dominates(p: &Point, q: &Point, ratios: &[f64]) -> bool {
    score_with_ratios(p, ratios) < score_with_ratios(q, ratios)
}

/// Skyline dominance (Definition 2), re-exported from the skyline substrate
/// so that callers of this crate need only one import path.
pub use eclipse_skyline::dominance::dominates as skyline_dominates;

// The skyline crate owns the single definition of every coordinate-wise
// dominance predicate; this module adds only the eclipse-specific (ratio-box)
// predicates and re-exports the rest so no caller is tempted to re-implement
// them here.
pub use eclipse_skyline::dominance::{
    compare as skyline_compare, same_point_set, skyline_naive,
    strictly_dominates as skyline_strictly_dominates, weakly_dominates as skyline_weakly_dominates,
    DominanceOrdering,
};

/// Returns `true` if `p` eclipse-dominates `q` over the ratio box (strict
/// convention: `≤` everywhere, `<` somewhere).
///
/// # Panics
/// Panics if the dimensionality of the points does not match the box.
pub fn eclipse_dominates(p: &Point, q: &Point, ratio_box: &WeightRatioBox) -> bool {
    let (max_diff, min_diff) = score_difference_extrema(p, q, ratio_box);
    max_diff <= EPS && min_diff < -EPS
}

/// Returns `true` if `p` *weakly* eclipse-dominates `q`: `S(p) ≤ S(q)` for
/// every ratio vector in the box (Definition 3 verbatim; identical points
/// weakly dominate each other).
pub fn eclipse_dominates_weak(p: &Point, q: &Point, ratio_box: &WeightRatioBox) -> bool {
    let (max_diff, _) = score_difference_extrema(p, q, ratio_box);
    max_diff <= EPS
}

/// The extrema of `S(p)_r − S(q)_r` over the ratio box.
///
/// The difference is linear in `r`, so over a finite box its extrema are
/// attained at corners; per dimension the contribution is
/// `(p[j] − q[j])·r[j]`, maximized at `h_j` when the coefficient is positive
/// and at `l_j` otherwise (and vice versa for the minimum).  Unbounded upper
/// bounds contribute `+∞`/`−∞` when the coefficient is non-zero, which is
/// precisely the analytic skyline condition.
fn score_difference_extrema(p: &Point, q: &Point, ratio_box: &WeightRatioBox) -> (f64, f64) {
    let d = ratio_box.dim();
    assert_eq!(p.dim(), d, "point dimensionality must match the ratio box");
    assert_eq!(q.dim(), d, "point dimensionality must match the ratio box");
    let mut max_diff = p.coord(d - 1) - q.coord(d - 1);
    let mut min_diff = max_diff;
    for (j, range) in ratio_box.ranges().iter().enumerate() {
        let coeff = p.coord(j) - q.coord(j);
        if coeff == 0.0 {
            continue;
        }
        let (lo, hi) = (range.lo(), range.hi());
        if coeff > 0.0 {
            max_diff += coeff * hi; // +∞ when hi is infinite
            min_diff += coeff * lo;
        } else {
            max_diff += coeff * lo;
            min_diff += coeff * hi; // −∞ when hi is infinite
        }
    }
    (max_diff, min_diff)
}

/// Brute-force eclipse points ("not eclipse-dominated by any other point"),
/// used as the oracle in tests of the faster algorithms.  O(n²·d).
pub fn eclipse_naive(points: &[Point], ratio_box: &WeightRatioBox) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, q)| j != i && eclipse_dominates(q, &points[i], ratio_box))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightRatioBox;

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    fn paper_points() -> Vec<Point> {
        vec![
            p(&[1.0, 6.0]),
            p(&[4.0, 4.0]),
            p(&[6.0, 1.0]),
            p(&[8.0, 5.0]),
        ]
    }

    #[test]
    fn skyline_predicates_are_reexported_from_the_substrate() {
        // One definition lives in eclipse-skyline; this module only adds the
        // eclipse-specific predicates on top.
        let a = p(&[1.0, 2.0]);
        let b = p(&[2.0, 3.0]);
        assert!(skyline_dominates(&a, &b));
        assert!(skyline_strictly_dominates(&a, &b));
        assert!(skyline_weakly_dominates(&a, &a));
        assert_eq!(skyline_compare(&a, &b), DominanceOrdering::LeftDominates);
        assert_eq!(skyline_naive(&[a.clone(), b.clone()]), vec![0]);
        assert!(same_point_set(&[a, b], &[0], &[0]));
    }

    #[test]
    fn paper_figure3_eclipse_dominance() {
        // r ∈ [1/4, 2]: p1, p2, p3 each eclipse-dominate p4; none of p1, p2,
        // p3 dominates another.
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        let pts = paper_points();
        assert!(eclipse_dominates(&pts[0], &pts[3], &b));
        assert!(eclipse_dominates(&pts[1], &pts[3], &b));
        assert!(eclipse_dominates(&pts[2], &pts[3], &b));
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert!(!eclipse_dominates(&pts[i], &pts[j], &b), "{i} vs {j}");
                }
            }
        }
        assert_eq!(eclipse_naive(&pts, &b), vec![0, 1, 2]);
    }

    #[test]
    fn example2_boundary_check() {
        // Example 2: S(p2) < S(p4) at both r = 1/4 and r = 2 implies p2 ≺e p4.
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        assert!(eclipse_dominates(&p(&[4.0, 4.0]), &p(&[8.0, 5.0]), &b));
    }

    #[test]
    fn nn_instantiation_matches_nn_dominance() {
        let b = WeightRatioBox::exact(&[2.0]).unwrap();
        let pts = paper_points();
        // With r = 2, p1 has the smallest score and dominates everything.
        for j in 1..4 {
            assert!(eclipse_dominates(&pts[0], &pts[j], &b));
            assert!(nn_dominates(&pts[0], &pts[j], &[2.0]));
        }
        assert_eq!(eclipse_naive(&pts, &b), vec![0]);
    }

    #[test]
    fn skyline_instantiation_matches_skyline_dominance() {
        let b = WeightRatioBox::skyline(2).unwrap();
        let pts = paper_points();
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    continue;
                }
                assert_eq!(
                    eclipse_dominates(&pts[i], &pts[j], &b),
                    skyline_dominates(&pts[i], &pts[j]),
                    "{i} vs {j}"
                );
            }
        }
        assert_eq!(eclipse_naive(&pts, &b), vec![0, 1, 2]);
    }

    #[test]
    fn skyline_instantiation_matches_on_random_data() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for d in 2..=4usize {
            let b = WeightRatioBox::skyline(d).unwrap();
            let pts: Vec<Point> = (0..100)
                .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
                .collect();
            for i in 0..pts.len() {
                for j in 0..pts.len() {
                    if i == j {
                        continue;
                    }
                    assert_eq!(
                        eclipse_dominates(&pts[i], &pts[j], &b),
                        skyline_dominates(&pts[i], &pts[j]),
                        "d = {d}, {i} vs {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn asymmetry_property_1() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let b = WeightRatioBox::uniform(3, 0.36, 2.75).unwrap();
        let pts: Vec<Point> = (0..60)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                if i != j && eclipse_dominates(&pts[i], &pts[j], &b) {
                    assert!(!eclipse_dominates(&pts[j], &pts[i], &b));
                }
            }
        }
    }

    #[test]
    fn transitivity_property_2() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let b = WeightRatioBox::uniform(3, 0.5, 1.5).unwrap();
        let pts: Vec<Point> = (0..40)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        for a in 0..pts.len() {
            for bb in 0..pts.len() {
                for c in 0..pts.len() {
                    if a != bb
                        && bb != c
                        && a != c
                        && eclipse_dominates(&pts[a], &pts[bb], &b)
                        && eclipse_dominates(&pts[bb], &pts[c], &b)
                    {
                        assert!(eclipse_dominates(&pts[a], &pts[c], &b));
                    }
                }
            }
        }
    }

    #[test]
    fn skyline_dominance_implies_eclipse_dominance_property_3() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let b = WeightRatioBox::uniform(3, 0.36, 2.75).unwrap();
        let pts: Vec<Point> = (0..80)
            .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect();
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                if i != j && skyline_dominates(&pts[i], &pts[j]) {
                    assert!(eclipse_dominates(&pts[i], &pts[j], &b));
                }
            }
        }
    }

    #[test]
    fn eclipse_without_skyline_dominance_property_4() {
        // Figure 3: p1 does not skyline-dominate p4 but does eclipse-dominate it.
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        let pts = paper_points();
        assert!(!skyline_dominates(&pts[0], &pts[3]));
        assert!(eclipse_dominates(&pts[0], &pts[3], &b));
    }

    #[test]
    fn identical_points_weakly_dominate_but_not_strictly() {
        let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
        let a = p(&[1.0, 1.0]);
        let c = p(&[1.0, 1.0]);
        assert!(eclipse_dominates_weak(&a, &c, &b));
        assert!(!eclipse_dominates(&a, &c, &b));
        // And both stay in the eclipse result.
        assert_eq!(eclipse_naive(&[a, c], &b), vec![0, 1]);
    }

    #[test]
    fn unbounded_non_skyline_box() {
        // r ∈ [1, +∞): dominance requires p[0] ≤ q[0] (the unbounded direction)
        // plus S(p) ≤ S(q) at r = 1.
        let b = WeightRatioBox::from_bounds(&[(1.0, f64::INFINITY)]).unwrap();
        // (2, 0) vs (1, 5): at r = 1 scores are 2 vs 6, but p[0] = 2 > 1 means
        // for huge r the first point loses — no dominance.
        assert!(!eclipse_dominates(&p(&[2.0, 0.0]), &p(&[1.0, 5.0]), &b));
        // (1, 1) vs (2, 3) dominates for every r ≥ 1 (and indeed skyline-dominates).
        assert!(eclipse_dominates(&p(&[1.0, 1.0]), &p(&[2.0, 3.0]), &b));
        // (3, 0) vs (1, 1): wins at r = 1? 3 vs 2 — no. Loses everywhere.
        assert!(!eclipse_dominates(&p(&[3.0, 0.0]), &p(&[1.0, 1.0]), &b));
    }
}
