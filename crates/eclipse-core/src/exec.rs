//! Execution context and per-query options: how wide a query runs and which
//! algorithm/backend answers it.
//!
//! [`ExecutionContext`] owns (a shared handle to) the
//! [`eclipse_exec::ThreadPool`] every parallel code path in this crate draws
//! from — the TRAN corner mapping, the parallel skyline backends, index
//! construction and the explanation utilities.  One context can be shared by
//! many engines (the pool is behind an [`Arc`]), and the default context
//! uses the process-wide pool sized by `ECLIPSE_THREADS` / the hardware.
//!
//! [`QueryOptions`] is the per-call companion: algorithm selection plus
//! skyline-backend selection for the transformation-based path, consumed by
//! [`crate::query::EclipseEngine::eclipse_query`].

use std::sync::Arc;

use eclipse_exec::ThreadPool;

use crate::algo::transform::SkylineBackend;
use crate::query::Algorithm;

/// Shared execution resources for query evaluation.
#[derive(Clone, Debug)]
pub struct ExecutionContext {
    pool: Arc<ThreadPool>,
}

impl ExecutionContext {
    /// A context over an explicit (possibly shared) pool.
    pub fn new(pool: Arc<ThreadPool>) -> Self {
        ExecutionContext { pool }
    }

    /// A context over a fresh private pool of exactly `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        ExecutionContext::new(Arc::new(ThreadPool::with_threads(threads)))
    }

    /// A context that never parallelises (one-thread pool); useful to pin
    /// down serial behaviour regardless of `ECLIPSE_THREADS`.
    pub fn serial() -> Self {
        ExecutionContext::with_threads(1)
    }

    /// The thread pool backing this context.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// Number of execution lanes.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }
}

impl Default for ExecutionContext {
    /// The process-wide shared pool (`ECLIPSE_THREADS` / hardware sized).
    fn default() -> Self {
        ExecutionContext::new(ThreadPool::global())
    }
}

/// Per-query knobs consumed by
/// [`EclipseEngine::eclipse_query`](crate::query::EclipseEngine::eclipse_query).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryOptions {
    /// Which eclipse algorithm answers the query.
    pub algorithm: Algorithm,
    /// Which skyline backend finishes the transformation-based algorithm
    /// (ignored by the baseline and index algorithms).
    pub backend: SkylineBackend,
}

impl QueryOptions {
    /// Options selecting an explicit algorithm, default backend.
    pub fn with_algorithm(algorithm: Algorithm) -> Self {
        QueryOptions {
            algorithm,
            ..QueryOptions::default()
        }
    }

    /// Options selecting the transformation-based algorithm with an explicit
    /// skyline backend.
    pub fn transform(backend: SkylineBackend) -> Self {
        QueryOptions {
            algorithm: Algorithm::Transform,
            backend,
        }
    }

    /// Options routing TRAN through the parallel divide-and-conquer backend
    /// — the widest configuration for large datasets.
    pub fn parallel() -> Self {
        QueryOptions::transform(SkylineBackend::ParallelDivideConquer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_constructors() {
        assert_eq!(ExecutionContext::serial().threads(), 1);
        assert_eq!(ExecutionContext::with_threads(3).threads(), 3);
        assert!(ExecutionContext::default().threads() >= 1);
        let pool = Arc::new(ThreadPool::with_threads(2));
        let ctx = ExecutionContext::new(pool.clone());
        assert!(Arc::ptr_eq(ctx.pool(), &pool));
        let cloned = ctx.clone();
        assert!(Arc::ptr_eq(cloned.pool(), &pool), "{cloned:?}");
    }

    #[test]
    fn query_options_shortcuts() {
        let defaults = QueryOptions::default();
        assert_eq!(defaults.algorithm, Algorithm::Auto);
        assert_eq!(defaults.backend, SkylineBackend::Auto);
        let explicit = QueryOptions::with_algorithm(Algorithm::Baseline);
        assert_eq!(explicit.algorithm, Algorithm::Baseline);
        assert_eq!(explicit.backend, SkylineBackend::Auto);
        let par = QueryOptions::parallel();
        assert_eq!(par.algorithm, Algorithm::Transform);
        assert_eq!(par.backend, SkylineBackend::ParallelDivideConquer);
        assert!(par.backend.is_parallel());
    }
}
