//! Proves the acceptance criterion of the arena-index refactor: a
//! steady-state [`EclipseIndex::query_with_scratch`] probe performs **zero
//! heap allocations** — on the indexed path and on the exact linear fallback
//! alike — once the scratch buffers have reached their high-water capacity.
//!
//! The whole test binary runs under a counting global allocator; this file
//! intentionally holds a single test so no concurrent test case can disturb
//! the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use eclipse_core::exec::ExecutionContext;
use eclipse_core::index::{EclipseIndex, IndexConfig, IntersectionIndexKind, ProbeScratch};
use eclipse_core::{Point, WeightRatioBox};
use rand::{Rng, SeedableRng};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_probes_do_not_allocate() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2021);
    let pts: Vec<Point> = (0..600)
        .map(|_| Point::new((0..3).map(|_| rng.gen_range(0.0..1.0)).collect()))
        .collect();
    // One in-region box, one escaping the indexed region (exact fallback),
    // one narrow box — the probe mix a serving loop would see.
    let boxes = [
        WeightRatioBox::uniform(3, 0.36, 2.75).unwrap(),
        WeightRatioBox::uniform(3, 0.5, 20.0).unwrap(),
        WeightRatioBox::uniform(3, 0.9, 1.1).unwrap(),
    ];
    for kind in [
        IntersectionIndexKind::Quadtree,
        IntersectionIndexKind::CuttingTree,
    ] {
        let index = EclipseIndex::build_with(
            &pts,
            IndexConfig::with_kind(kind),
            &ExecutionContext::serial(),
        )
        .unwrap();
        let mut scratch = ProbeScratch::new();
        let expected: Vec<Vec<usize>> = boxes
            .iter()
            .map(|b| index.query_with_scratch(b, &mut scratch).unwrap().to_vec())
            .collect();

        // Buffers are now at high-water capacity: from here on, probing is
        // allocation-free.
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..50 {
            for (b, want) in boxes.iter().zip(&expected) {
                let got = index.query_with_scratch(b, &mut scratch).unwrap();
                assert_eq!(got, &want[..]);
            }
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "steady-state probes allocated ({kind:?})"
        );

        // The count-only probe (the CountBatch serving path) shares the same
        // scratch and allocates nothing either — it never even touches the
        // result buffer.
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..50 {
            for (b, want) in boxes.iter().zip(&expected) {
                let got = index.count_with_scratch(b, &mut scratch).unwrap();
                assert_eq!(got, want.len());
            }
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "steady-state count probes allocated ({kind:?})"
        );
    }
}
