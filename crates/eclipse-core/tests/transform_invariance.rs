//! Property suite: `eclipse_transform` is invariant under skyline-backend
//! and thread-count choice — every (backend, threads) pair returns exactly
//! the indices the default serial configuration returns, which in turn match
//! the brute-force eclipse oracle.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use eclipse_core::algo::transform::{eclipse_transform, eclipse_transform_with, SkylineBackend};
use eclipse_core::dominance::eclipse_naive;
use eclipse_core::exec::ExecutionContext;
use eclipse_core::{Point, WeightRatioBox};

const ALL_BACKENDS: [SkylineBackend; 7] = [
    SkylineBackend::Auto,
    SkylineBackend::BlockNestedLoop,
    SkylineBackend::SortFilter,
    SkylineBackend::DivideConquer,
    SkylineBackend::ParallelBlockNestedLoop,
    SkylineBackend::ParallelSortFilter,
    SkylineBackend::ParallelDivideConquer,
];

fn random_points(seed: u64, n: usize, d: usize, grid: bool) -> Vec<Point> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new(
                (0..d)
                    .map(|_| {
                        if grid {
                            rng.gen_range(0..5) as f64
                        } else {
                            rng.gen_range(0.0..1.0)
                        }
                    })
                    .collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Backend and thread count are invisible in the result, and the result
    /// is the true eclipse set.
    #[test]
    fn transform_is_invariant_under_backend_and_threads(
        seed in 0u64..100_000,
        n in 0usize..150,
        d in 2usize..5,
        lo in 0.05f64..1.0,
        width in 0.1f64..3.0,
        grid in 0u8..2,
    ) {
        let pts = random_points(seed, n, d, grid == 1);
        let b = WeightRatioBox::uniform(d, lo, lo + width).unwrap();
        let reference = eclipse_transform(&pts, &b, SkylineBackend::Auto).unwrap();
        prop_assert_eq!(&reference, &eclipse_naive(&pts, &b), "oracle mismatch");
        for threads in [1usize, 2, 4] {
            let ctx = ExecutionContext::with_threads(threads);
            for backend in ALL_BACKENDS {
                prop_assert_eq!(
                    eclipse_transform_with(&pts, &b, backend, &ctx).unwrap(),
                    reference.clone(),
                    "{:?} at {} threads (seed={}, n={}, d={})",
                    backend, threads, seed, n, d
                );
            }
        }
    }
}

/// Above the parallel mapping cutoff, so the fanned-out corner mapping and
/// the parallel skyline phase are both genuinely exercised.
#[test]
fn transform_invariance_on_a_large_dataset() {
    let pts = random_points(11, 5000, 4, false);
    let b = WeightRatioBox::uniform(4, 0.36, 2.75).unwrap();
    let reference = eclipse_transform(&pts, &b, SkylineBackend::SortFilter).unwrap();
    for threads in [2usize, 4, 8] {
        let ctx = ExecutionContext::with_threads(threads);
        for backend in ALL_BACKENDS {
            assert_eq!(
                eclipse_transform_with(&pts, &b, backend, &ctx).unwrap(),
                reference,
                "{backend:?} at {threads} threads"
            );
        }
    }
}
