//! Validates the memory-governance accounting ([`EclipseEngine::heap_bytes`]
//! and the `heap_bytes()` chain below it) against ground truth: the whole
//! test binary runs under a byte-tracking global allocator, and the live-byte
//! delta across building an engine must bracket the accounted figure.
//!
//! The accounting intentionally skips allocator headers and the `Arc`/lock
//! control blocks (a handful of fixed-size allocations), so the accounted
//! figure must be *at most* the measured delta and still capture the
//! dominant share of it.
//!
//! Like `zero_alloc_probe`, this file holds a single test so no concurrent
//! test case can disturb the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use eclipse_core::exec::ExecutionContext;
use eclipse_core::index::IntersectionIndexKind;
use eclipse_core::{EclipseEngine, Point};
use rand::{Rng, SeedableRng};

struct ByteTrackingAllocator;

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for ByteTrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        LIVE_BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        LIVE_BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_add(new_size, Ordering::Relaxed);
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: ByteTrackingAllocator = ByteTrackingAllocator;

fn dataset(n: usize, dim: usize, seed: u64) -> Vec<Point> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new((0..dim).map(|_| rng.gen_range(0.0..1.0)).collect()))
        .collect()
}

/// Builds an engine with both index backends warm and the skyline cached —
/// the fully-resident shape the serving layer accounts for.
fn build_full(points: Vec<Point>) -> EclipseEngine {
    let engine = EclipseEngine::new(points)
        .unwrap()
        .with_execution_context(ExecutionContext::serial());
    engine.build_index(IntersectionIndexKind::Quadtree).unwrap();
    engine
        .build_index(IntersectionIndexKind::CuttingTree)
        .unwrap();
    engine.skyline();
    engine
}

#[test]
fn heap_bytes_matches_the_allocator_ground_truth() {
    // Warm-up: populate any lazily-initialised process-wide state (thread
    // locals, scratch pools, the default execution context) so the measured
    // build below only retains what the engine itself owns.
    drop(build_full(dataset(400, 3, 7)));

    for (n, dim, seed) in [(400usize, 3usize, 2021u64), (250, 4, 2022), (600, 2, 2023)] {
        // Snapshot before generating the points: the dataset vector is moved
        // into the engine, so its bytes belong to the measured window.
        let before = LIVE_BYTES.load(Ordering::Relaxed);
        let engine = build_full(dataset(n, dim, seed));
        let after = LIVE_BYTES.load(Ordering::Relaxed);
        let delta = after - before;
        let accounted = engine.heap_bytes();

        // Never over-count: everything heap_bytes() reports is genuinely
        // retained by the engine.
        assert!(
            accounted <= delta,
            "n={n} dim={dim}: accounted {accounted} exceeds live delta {delta}"
        );
        // And capture the dominant share: the only retained bytes outside
        // the accounting are allocator headers and a fixed handful of
        // `Arc`/lock control blocks.
        assert!(
            accounted * 10 >= delta * 8,
            "n={n} dim={dim}: accounted {accounted} is under 80% of live delta {delta}"
        );

        // The rollup decomposes: the dataset share alone is also exact.
        let points_bytes = engine.dataset_heap_bytes();
        assert!(points_bytes >= n * (std::mem::size_of::<Point>() + dim * 8));
        assert!(points_bytes < accounted);
        drop(engine);
        let freed = LIVE_BYTES.load(Ordering::Relaxed);
        assert!(
            freed <= before + (delta - accounted),
            "dropping the engine must return at least the accounted bytes"
        );
    }
}
