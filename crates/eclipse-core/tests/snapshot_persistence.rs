//! Property suite for index persistence: `load(save(idx))` answers every
//! probe identically to the original — across dimensionalities, backends,
//! duplicate points (degenerate hyperplane rows) and edge floats — and
//! snapshot decoding is **total**: truncations, bit flips, garbage headers
//! and hostile section counts all surface as typed errors, never panics and
//! never oversized allocations.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use eclipse_core::index::{EclipseIndex, IndexConfig, IntersectionIndexKind, SECTION_SKYLINE};
use eclipse_core::{EclipseEngine, EclipseError, Point, WeightRatioBox};
use eclipse_persist::{enc, SnapshotReader, SnapshotWriter};

/// Deterministic pseudo-random dataset for a seed: moderate sizes, dimension
/// 2–4, a mix of plain values, duplicated points (their score-difference
/// hyperplanes are degenerate rows) and edge floats (−0.0, huge and tiny
/// magnitudes) that must survive the bit-pattern encoding exactly.
fn arbitrary_dataset(seed: u64) -> Vec<Point> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dim = rng.gen_range(2..5usize);
    let n = rng.gen_range(1..60usize);
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    for i in 0..n {
        if i > 0 && rng.gen_range(0..5u32) == 0 {
            // Duplicate an earlier point verbatim.
            let j = rng.gen_range(0..i);
            pts.push(pts[j].clone());
            continue;
        }
        let coords: Vec<f64> = (0..dim)
            .map(|_| match rng.gen_range(0..10u32) {
                0 => -0.0,
                1 => 0.0,
                2 => 1e12,
                3 => 1e-12,
                _ => rng.gen_range(0.0..1.0),
            })
            .collect();
        pts.push(Point::new(coords));
    }
    pts
}

/// Deterministic pseudo-random index configuration: both backends, tight and
/// loose budgets (tight budgets exercise the breadth-first degradation
/// paths), and two indexed-region sizes.
fn arbitrary_config(seed: u64) -> IndexConfig {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut cfg = IndexConfig::with_kind(if rng.gen_range(0..2u32) == 0 {
        IntersectionIndexKind::Quadtree
    } else {
        IntersectionIndexKind::CuttingTree
    });
    cfg.max_ratio = if rng.gen_range(0..2u32) == 0 {
        16.0
    } else {
        2.0
    };
    cfg.quadtree.max_capacity = rng.gen_range(1..9usize);
    cfg.quadtree.max_depth = rng.gen_range(3..12usize);
    cfg.cutting.max_capacity = rng.gen_range(1..9usize);
    cfg.cutting.max_depth = rng.gen_range(3..16usize);
    cfg.cutting.sample_size = rng.gen_range(1..20usize);
    if rng.gen_range(0..4u32) == 0 {
        // Starved budgets: construction stops early, queries stay exact.
        cfg.quadtree.max_nodes = 16;
        cfg.cutting.max_nodes = 16;
    }
    cfg
}

/// Probe boxes covering the interesting regimes: inside the indexed region,
/// escaping it (exact linear fallback), exact 1NN-style boxes.
fn probe_boxes(dim: usize, seed: u64) -> Vec<WeightRatioBox> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xb0f);
    let mut boxes = Vec::new();
    for _ in 0..6 {
        let lo = rng.gen_range(0.05..1.5);
        let hi = lo + rng.gen_range(0.0..3.0);
        boxes.push(WeightRatioBox::uniform(dim, lo, hi).unwrap());
    }
    boxes.push(WeightRatioBox::uniform(dim, 0.5, 40.0).unwrap()); // escapes
    boxes.push(WeightRatioBox::uniform(dim, 1.0, 1.0).unwrap()); // exact
    boxes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole property: a restored index is query-identical to the
    /// index it was saved from, and the snapshot encoding is byte-stable
    /// (decode → encode reproduces the bytes, which is what lets the golden
    /// fixtures pin the format).
    #[test]
    fn load_save_answers_every_probe_identically(seed in 0u64..1_000_000) {
        let pts = arbitrary_dataset(seed);
        let cfg = arbitrary_config(seed);
        let idx = EclipseIndex::build(&pts, cfg).unwrap();
        let bytes = idx.encode_snapshot();
        let back = EclipseIndex::decode_snapshot(&bytes).unwrap();
        prop_assert_eq!(back.skyline_ids(), idx.skyline_ids());
        prop_assert_eq!(back.num_intersections(), idx.num_intersections());
        for b in probe_boxes(pts[0].dim(), seed) {
            prop_assert_eq!(back.query(&b).unwrap(), idx.query(&b).unwrap(), "box {}", b);
            prop_assert_eq!(back.count(&b).unwrap(), idx.count(&b).unwrap(), "box {}", b);
        }
        // Unbounded boxes are rejected by both, identically.
        let sky = WeightRatioBox::skyline(pts[0].dim()).unwrap();
        prop_assert!(back.query(&sky).is_err() && idx.query(&sky).is_err());
        prop_assert_eq!(back.encode_snapshot(), bytes);
    }

    /// The engine-level snapshot (dataset + index) cold-starts into an
    /// engine answering identically, and restores into a same-dataset
    /// engine.
    #[test]
    fn engine_snapshots_round_trip(seed in 0u64..1_000_000) {
        let pts = arbitrary_dataset(seed);
        let cfg = arbitrary_config(seed);
        let engine = EclipseEngine::with_index_config(pts.clone(), cfg).unwrap();
        let bytes = engine.save_snapshot("prop", cfg.kind).unwrap();

        let (label, cold) = EclipseEngine::from_snapshot(&bytes).unwrap();
        prop_assert_eq!(label, "prop");
        let fresh = EclipseEngine::with_index_config(pts.clone(), cfg).unwrap();
        fresh.restore_index_snapshot(&bytes).unwrap();
        for b in probe_boxes(pts[0].dim(), seed) {
            let want = engine.eclipse(&b).unwrap();
            prop_assert_eq!(&cold.eclipse(&b).unwrap(), &want, "box {}", b);
            prop_assert_eq!(&fresh.eclipse(&b).unwrap(), &want, "box {}", b);
        }
    }

    /// Parallel and serial builds snapshot to identical bytes, so a snapshot
    /// taken on a many-core server restores bit-identically anywhere.
    #[test]
    fn snapshot_bytes_are_thread_invariant(seed in 0u64..100_000) {
        use eclipse_core::exec::ExecutionContext;
        let pts = arbitrary_dataset(seed);
        let cfg = arbitrary_config(seed);
        let serial = EclipseIndex::build_with(&pts, cfg, &ExecutionContext::serial()).unwrap();
        let wide = EclipseIndex::build_with(&pts, cfg, &ExecutionContext::with_threads(4)).unwrap();
        prop_assert_eq!(serial.encode_snapshot(), wide.encode_snapshot());
    }

    /// Every proper prefix of a valid snapshot is rejected cleanly.
    #[test]
    fn truncations_error_cleanly(seed in 0u64..100_000, cut in 0.0f64..1.0) {
        let pts = arbitrary_dataset(seed);
        let bytes = EclipseIndex::build(&pts, arbitrary_config(seed))
            .unwrap()
            .encode_snapshot();
        let cut = (cut * bytes.len() as f64) as usize;
        if cut < bytes.len() {
            prop_assert!(EclipseIndex::decode_snapshot(&bytes[..cut]).is_err());
        }
    }

    /// Single-bit corruption anywhere in a snapshot is detected: every byte
    /// is under magic/version/length/checksum protection (checksums cover
    /// section tags too), so a flipped snapshot never decodes — and never
    /// panics.
    #[test]
    fn bit_flips_are_always_detected(seed in 0u64..100_000, pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let pts = arbitrary_dataset(seed);
        let mut bytes = EclipseIndex::build(&pts, arbitrary_config(seed))
            .unwrap()
            .encode_snapshot();
        let pos = (pos_frac * bytes.len() as f64) as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            EclipseIndex::decode_snapshot(&bytes).is_err(),
            "flip at byte {} bit {} must be detected",
            pos,
            bit
        );
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(seed in 0u64..100_000, len in 0usize..512) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen_range(0..256u32) as u8).collect();
        prop_assert!(EclipseIndex::decode_snapshot(&garbage).is_err());
        prop_assert!(EclipseEngine::from_snapshot(&garbage).is_err());
    }
}

/// A crafted snapshot with valid framing and checksums but a hostile element
/// count must be rejected by the count-vs-remaining-bytes validation before
/// any allocation happens — this is the codec-level guarantee that composes
/// with the checksum layer against *malicious* (not just corrupted) input.
#[test]
fn hostile_section_counts_are_rejected_before_allocation() {
    let pts = vec![
        Point::new(vec![1.0, 6.0]),
        Point::new(vec![4.0, 4.0]),
        Point::new(vec![6.0, 1.0]),
    ];
    let idx = EclipseIndex::build(&pts, IndexConfig::default()).unwrap();
    let bytes = idx.encode_snapshot();
    let reader = SnapshotReader::parse(&bytes).unwrap();

    // Rebuild the container with the skyline section claiming u64::MAX ids.
    let mut hostile_skyline = Vec::new();
    enc::put_u64(&mut hostile_skyline, u64::MAX);
    let mut writer = SnapshotWriter::new();
    for (tag, payload) in reader.sections() {
        if tag == SECTION_SKYLINE {
            writer.section(tag, hostile_skyline.clone());
        } else {
            writer.section(tag, payload.to_vec());
        }
    }
    match EclipseIndex::decode_snapshot(&writer.finish()) {
        Err(EclipseError::Snapshot(m)) => {
            assert!(m.contains("count") || m.contains("element"), "{m}")
        }
        other => panic!("expected a hostile-count rejection, got {other:?}"),
    }

    // A snapshot missing a required section is a typed error too.
    let mut writer = SnapshotWriter::new();
    for (tag, payload) in reader.sections().filter(|&(t, _)| t != SECTION_SKYLINE) {
        writer.section(tag, payload.to_vec());
    }
    assert!(matches!(
        EclipseIndex::decode_snapshot(&writer.finish()),
        Err(EclipseError::Snapshot(m)) if m.contains("missing")
    ));
}

/// Edge floats — signed zeros, infinities in offsets, huge magnitudes —
/// survive an index snapshot bit-exactly (the dataset layer forbids
/// non-finite coordinates, but the format itself must not care).
#[test]
fn edge_float_datasets_round_trip_bit_exactly() {
    let pts = vec![
        Point::new(vec![-0.0, 1e308]),
        Point::new(vec![1e-308, 0.0]),
        Point::new(vec![f64::MIN_POSITIVE, -0.0]),
        Point::new(vec![-0.0, 1e308]), // duplicate → degenerate pair row
    ];
    let engine = EclipseEngine::new(pts.clone()).unwrap();
    let bytes = engine
        .save_snapshot("edge", IntersectionIndexKind::Quadtree)
        .unwrap();
    let (_, cold) = EclipseEngine::from_snapshot(&bytes).unwrap();
    for (a, b) in cold.points().iter().zip(pts.iter()) {
        for (x, y) in a.coords().iter().zip(b.coords().iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "coordinate bits must survive");
        }
    }
    // And the restored engine still answers (degenerate rows included).
    let b = WeightRatioBox::uniform(2, 0.25, 2.0).unwrap();
    assert_eq!(cold.eclipse(&b).unwrap(), engine.eclipse(&b).unwrap());
}
