//! Property suite for mutable datasets: `insert`/`delete` are invisible
//! maintenance — after any interleaving of mutations, the engine answers
//! every query exactly as an engine rebuilt from scratch over the mutated
//! point set would, its skyline matches, and its maintained index arenas are
//! byte-identical to fresh builds.  Holds for both index backends and for
//! serial and pooled execution contexts.
//!
//! (The CI thread-parity matrix additionally runs this suite under
//! `ECLIPSE_THREADS=1` and `=4`; the explicit `with_threads` contexts below
//! cover both regimes regardless of the environment.)
//!
//! The non-proptest test at the bottom pins epoch consistency under
//! concurrency: probes racing a mutator thread always observe some complete
//! dataset version — a probe sandwiched between two reads of the same epoch
//! returns exactly that epoch's reference answer, never a half-applied blend.

use std::sync::Arc;
use std::thread;

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use eclipse_core::index::{IndexConfig, IntersectionIndexKind};
use eclipse_core::{EclipseEngine, ExecutionContext, Point, QueryOptions, WeightRatioBox};

/// Grid-valued points (coordinates in `{0..4}`) so random datasets are rich
/// in ties, duplicates, and dominance chains — the cases where incremental
/// skyline maintenance can disagree with a recompute.
fn grid_points(seed: u64, n: usize, d: usize) -> Vec<Point> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new((0..d).map(|_| rng.gen_range(0..5) as f64).collect()))
        .collect()
}

/// Probe boxes spanning the indexed region plus one escaping it, so both the
/// arena probe path and the linear fallback answer under mutation.
fn probe_boxes(d: usize) -> Vec<WeightRatioBox> {
    vec![
        WeightRatioBox::uniform(d, 0.25, 2.0).unwrap(),
        WeightRatioBox::uniform(d, 0.6, 0.9).unwrap(),
        WeightRatioBox::uniform(d, 0.05, 18.0).unwrap(),
    ]
}

/// One encoded mutation: even discriminants insert a fresh grid point,
/// odd ones delete `payload % len` (skipped when only one point remains,
/// which the engine rejects by contract).
#[derive(Clone, Debug)]
struct Op {
    discriminant: u8,
    payload: u64,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..255, 0u64..u64::MAX).prop_map(|(discriminant, payload)| Op {
        discriminant,
        payload,
    })
}

/// Applies `ops` to `engine` while mirroring them on a plain `Vec<Point>`;
/// returns the mirror and the number of mutations actually applied.
fn apply_ops(
    engine: &EclipseEngine,
    mut mirror: Vec<Point>,
    ops: &[Op],
    d: usize,
) -> (Vec<Point>, u64) {
    let mut applied = 0u64;
    for op in ops {
        if op.discriminant.is_multiple_of(2) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(op.payload);
            let p = Point::new((0..d).map(|_| rng.gen_range(0..5) as f64).collect());
            engine.insert(p.clone()).expect("insert failed");
            mirror.push(p);
        } else {
            if mirror.len() <= 1 {
                continue;
            }
            let id = (op.payload as usize) % mirror.len();
            engine.delete(id).expect("delete failed");
            mirror.remove(id);
        }
        applied += 1;
    }
    (mirror, applied)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Mutate-then-query ≡ rebuild-from-the-mutated-dataset-then-query, for
    /// every backend × thread-count combination, down to the bytes of the
    /// maintained index arenas.
    #[test]
    fn mutate_then_query_matches_rebuild(
        seed in 0u64..u64::MAX,
        n in 3usize..24,
        d in 2usize..4,
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        let points = grid_points(seed, n, d);
        let boxes = probe_boxes(d);
        let options = QueryOptions::default();
        for kind in [IntersectionIndexKind::Quadtree, IntersectionIndexKind::CuttingTree] {
            for threads in [1usize, 4] {
                let exec = ExecutionContext::with_threads(threads);
                let config = IndexConfig { kind, ..IndexConfig::default() };
                let engine = EclipseEngine::with_index_config(points.clone(), config)
                    .unwrap()
                    .with_execution_context(exec.clone());
                // Warm the arena *before* mutating so every maintenance path
                // (re-tag, id patch, skyline rebuild) runs, not a cold build.
                engine.build_index(kind).unwrap();
                let (mirror, applied) = apply_ops(&engine, points.clone(), &ops, d);

                prop_assert_eq!(engine.epoch(), applied, "every mutation bumps the epoch once");
                prop_assert_eq!(engine.len(), mirror.len());

                let rebuilt = EclipseEngine::with_index_config(mirror.clone(), config)
                    .unwrap()
                    .with_execution_context(exec);
                prop_assert_eq!(engine.skyline(), rebuilt.skyline(),
                    "maintained skyline diverged from recompute ({kind:?}, {threads} threads)");
                prop_assert_eq!(
                    engine.eclipse_query_batch(&boxes, &options).unwrap(),
                    rebuilt.eclipse_query_batch(&boxes, &options).unwrap(),
                    "mutated engine answers diverged from rebuilt engine ({kind:?}, {threads} threads)");
                prop_assert_eq!(
                    engine.build_index(kind).unwrap().encode_snapshot(),
                    rebuilt.build_index(kind).unwrap().encode_snapshot(),
                    "maintained arena is not byte-identical to a fresh build ({kind:?}, {threads} threads)");
            }
        }
    }
}

/// Probes racing a mutator observe epoch-consistent snapshots: a probe whose
/// surrounding `epoch()` reads agree returns exactly the reference answer for
/// that epoch — atomic version swap, never a half-applied dataset.
#[test]
fn concurrent_probes_during_mutation_are_epoch_consistent() {
    const OPS: usize = 60;
    let d = 3;
    let points = grid_points(0x00EC_115E, 90, d);
    let bx = WeightRatioBox::uniform(d, 0.25, 2.0).unwrap();

    // Deterministic mutation schedule (every op applies, so epoch == ops so
    // far) and, per epoch, the reference answer from a from-scratch engine.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut mirror = points.clone();
    let mut schedule: Vec<Op> = Vec::with_capacity(OPS);
    let mut expected: Vec<Vec<usize>> = Vec::with_capacity(OPS + 1);
    expected.push(
        EclipseEngine::new(mirror.clone())
            .unwrap()
            .eclipse(&bx)
            .unwrap(),
    );
    for _ in 0..OPS {
        let op = Op {
            discriminant: rng.gen::<u32>() as u8,
            payload: rng.gen::<u64>(),
        };
        if op.discriminant.is_multiple_of(2) {
            let mut prng = rand::rngs::StdRng::seed_from_u64(op.payload);
            mirror.push(Point::new(
                (0..d).map(|_| prng.gen_range(0..5) as f64).collect(),
            ));
        } else {
            let id = (op.payload as usize) % mirror.len();
            mirror.remove(id);
        }
        schedule.push(op);
        expected.push(
            EclipseEngine::new(mirror.clone())
                .unwrap()
                .eclipse(&bx)
                .unwrap(),
        );
    }

    let engine = Arc::new(
        EclipseEngine::new(points)
            .unwrap()
            .with_execution_context(ExecutionContext::serial()),
    );
    engine.build_index(IntersectionIndexKind::Quadtree).unwrap();

    thread::scope(|scope| {
        let mutator = {
            let engine = Arc::clone(&engine);
            let schedule = &schedule;
            scope.spawn(move || {
                for op in schedule {
                    if op.discriminant.is_multiple_of(2) {
                        let mut prng = rand::rngs::StdRng::seed_from_u64(op.payload);
                        let p = Point::new((0..d).map(|_| prng.gen_range(0..5) as f64).collect());
                        engine.insert(p).expect("insert failed");
                    } else {
                        let id = (op.payload as usize) % engine.len();
                        engine.delete(id).expect("delete failed");
                    }
                }
            })
        };
        let mut checked = [0usize; 2];
        let probes: Vec<_> = (0..2)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let expected = &expected;
                let bx = &bx;
                scope.spawn(move || {
                    let mut pinned = 0usize;
                    while engine.epoch() < OPS as u64 {
                        let before = engine.epoch();
                        let result = engine.eclipse(bx).expect("racing probe failed");
                        let after = engine.epoch();
                        if before == after {
                            assert_eq!(
                                result, expected[before as usize],
                                "probe at stable epoch {before} saw a non-snapshot answer"
                            );
                            pinned += 1;
                        }
                        // When the epoch moved mid-probe the answer belongs
                        // to *some* version in between; consistency of those
                        // is pinned by the stable-epoch case plus atomicity
                        // of the version swap.
                    }
                    // One guaranteed stable-epoch probe after the mutator is
                    // done, so the invariant is exercised even if the racing
                    // loop never caught a quiescent window.
                    assert_eq!(
                        engine.eclipse(bx).expect("final probe failed"),
                        expected[OPS],
                        "probe at final epoch saw a non-snapshot answer"
                    );
                    pinned + 1
                })
            })
            .collect();
        for (i, probe) in probes.into_iter().enumerate() {
            checked[i] = probe.join().expect("probe thread panicked");
        }
        mutator.join().expect("mutator thread panicked");
        assert!(
            checked.iter().sum::<usize>() > 0,
            "no probe ever ran at a stable epoch — the race never exercised the invariant"
        );
    });

    assert_eq!(engine.epoch(), OPS as u64);
    assert_eq!(
        *engine.points(),
        mirror,
        "final dataset diverged from the mirror"
    );
    assert_eq!(
        engine.eclipse(&bx).unwrap(),
        expected[OPS],
        "final answer diverged from the rebuilt reference"
    );
}
