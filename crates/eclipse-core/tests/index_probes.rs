//! Property suite for the index query hot path: scratch-reusing probes and
//! the batched API are invisible optimizations — for any dataset, backend and
//! thread count they return exactly what fresh per-probe queries return,
//! which in turn match the brute-force eclipse oracle.
//!
//! (The CI thread-parity matrix additionally runs this suite under
//! `ECLIPSE_THREADS=1` and `=4`, pinning the process-wide default pool to
//! both regimes; the explicit `with_threads` contexts below cover the two
//! regimes regardless of the environment.)

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use eclipse_core::dominance::eclipse_naive;
use eclipse_core::exec::ExecutionContext;
use eclipse_core::index::{EclipseIndex, IndexConfig, IntersectionIndexKind, ProbeScratch};
use eclipse_core::{Point, WeightRatioBox};

fn random_points(seed: u64, n: usize, d: usize, grid: bool) -> Vec<Point> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new(
                (0..d)
                    .map(|_| {
                        if grid {
                            rng.gen_range(0..5) as f64
                        } else {
                            rng.gen_range(0.0..1.0)
                        }
                    })
                    .collect(),
            )
        })
        .collect()
}

fn random_boxes(seed: u64, m: usize, d: usize) -> Vec<WeightRatioBox> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            let lo = rng.gen_range(0.05..1.5);
            // Occasionally escape the indexed region to cover the exact
            // linear fallback inside a batch.
            let width = if rng.gen_range(0..4) == 0 {
                rng.gen_range(10.0..20.0)
            } else {
                rng.gen_range(0.05..2.5)
            };
            WeightRatioBox::uniform(d, lo, lo + width).unwrap()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One reused scratch over a probe sequence returns, probe for probe,
    /// what fresh queries return — and both match the oracle.
    #[test]
    fn scratch_probes_match_fresh_queries(
        seed in 0u64..100_000,
        n in 1usize..150,
        d in 2usize..5,
        grid in 0u8..2,
    ) {
        let pts = random_points(seed, n, d, grid == 1);
        let boxes = random_boxes(seed ^ 0xbeef, 6, d);
        for kind in [IntersectionIndexKind::Quadtree, IntersectionIndexKind::CuttingTree] {
            let idx = EclipseIndex::build(&pts, IndexConfig::with_kind(kind)).unwrap();
            let mut scratch = ProbeScratch::new();
            for b in &boxes {
                let fresh = idx.query(b).unwrap();
                prop_assert_eq!(&fresh, &eclipse_naive(&pts, b), "oracle mismatch, {:?}", kind);
                let reused = idx.query_with_scratch(b, &mut scratch).unwrap();
                prop_assert_eq!(reused, &fresh[..], "scratch mismatch, {:?}", kind);
            }
        }
    }

    /// `query_batch` equals sequential per-probe queries for both backends at
    /// 1 and 4 threads, in input order, including fallback-path probes.
    #[test]
    fn batched_probes_match_sequential(
        seed in 0u64..100_000,
        n in 1usize..150,
        d in 2usize..4,
        m in 1usize..24,
        grid in 0u8..2,
    ) {
        let pts = random_points(seed, n, d, grid == 1);
        let boxes = random_boxes(seed ^ 0xf00d, m, d);
        for kind in [IntersectionIndexKind::Quadtree, IntersectionIndexKind::CuttingTree] {
            let idx = EclipseIndex::build(&pts, IndexConfig::with_kind(kind)).unwrap();
            let expected: Vec<Vec<usize>> =
                boxes.iter().map(|b| idx.query(b).unwrap()).collect();
            for threads in [1usize, 4] {
                let ctx = ExecutionContext::with_threads(threads);
                let got = idx.query_batch(&boxes, &ctx).unwrap();
                prop_assert_eq!(&got, &expected, "{:?} at {} threads", kind, threads);
            }
        }
    }
}
