//! Property suites for the skyline executors: every executor — serial or
//! parallel, at every thread count — must return the identical index set as
//! the brute-force `skyline_naive` oracle, on continuous data, on discrete
//! grids full of duplicates and degenerate ties, and on adversarial shapes.

use std::sync::Arc;

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use eclipse_exec::ThreadPool;
use eclipse_geom::point::Point;
use eclipse_skyline::dominance::skyline_naive;
use eclipse_skyline::exec::{
    ParallelBnl, ParallelDc, ParallelSfs, SerialBnl, SerialDc, SerialSfs, SkylineExecutor,
};

/// Random dataset: continuous uniform coordinates, or a 0..4 integer grid
/// (lots of exact duplicates and per-dimension ties) when `grid` is set.
fn random_points(seed: u64, n: usize, d: usize, grid: bool) -> Vec<Point> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new(
                (0..d)
                    .map(|_| {
                        if grid {
                            rng.gen_range(0..4) as f64
                        } else {
                            rng.gen_range(0.0..1.0)
                        }
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Every executor variant under test, with cutoffs low enough that the
/// parallel code paths run even on property-sized inputs.
fn all_executors(pool: &Arc<ThreadPool>) -> Vec<Box<dyn SkylineExecutor>> {
    vec![
        Box::new(SerialBnl),
        Box::new(SerialSfs),
        Box::new(SerialDc),
        Box::new(ParallelBnl::with_cutoff(pool.clone(), 8)),
        Box::new(ParallelSfs::with_cutoff(pool.clone(), 8)),
        Box::new(ParallelDc::with_cutoff(pool.clone(), 8)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All executors agree with the oracle on random data, 2–6 dims, with
    /// and without duplicates, at 1/2/4 threads.
    #[test]
    fn executors_match_naive(
        seed in 0u64..100_000,
        n in 0usize..180,
        d in 2usize..7,
        grid in 0u8..2,
    ) {
        let pts = random_points(seed, n, d, grid == 1);
        let expected = skyline_naive(&pts);
        for threads in [1usize, 2, 4] {
            let pool = Arc::new(ThreadPool::with_threads(threads));
            for exec in all_executors(&pool) {
                prop_assert_eq!(
                    exec.skyline(&pts),
                    expected.clone(),
                    "executor {} at {} threads (n={}, d={}, grid={})",
                    exec.name(), threads, n, d, grid
                );
            }
        }
    }

    /// Thread count never changes a parallel executor's answer: 2 and 8
    /// threads agree with each other on identical input.
    #[test]
    fn thread_count_is_invisible(seed in 0u64..100_000, n in 0usize..150, d in 2usize..5) {
        let pts = random_points(seed, n, d, false);
        let pool2 = Arc::new(ThreadPool::with_threads(2));
        let pool8 = Arc::new(ThreadPool::with_threads(8));
        for (narrow, wide) in all_executors(&pool2).iter().zip(all_executors(&pool8).iter()) {
            prop_assert_eq!(
                narrow.skyline(&pts),
                wide.skyline(&pts),
                "{} 2 vs 8 threads", narrow.name()
            );
        }
    }
}

/// A dataset large enough to cross the *default* parallel cutoffs, so the
/// production configuration (not just the test-lowered one) is exercised.
#[test]
fn default_cutoff_executors_match_serial_on_large_input() {
    let pts = random_points(7, 6000, 4, false);
    let expected = SerialDc.skyline(&pts);
    let pool = Arc::new(ThreadPool::with_threads(4));
    let execs: Vec<Box<dyn SkylineExecutor>> = vec![
        Box::new(ParallelBnl::new(pool.clone())),
        Box::new(ParallelSfs::new(pool.clone())),
        Box::new(ParallelDc::new(pool.clone())),
    ];
    for exec in execs {
        assert_eq!(exec.skyline(&pts), expected, "{}", exec.name());
    }
}

/// Anti-correlated plane: everything is on the skyline, the hardest case for
/// the merge filter (candidates = entire input).
#[test]
fn anti_correlated_everything_survives_in_parallel() {
    let n = 1200;
    let pts: Vec<Point> = (0..n)
        .map(|i| {
            let x = i as f64 / n as f64;
            Point::new(vec![x, 1.0 - x, 0.5])
        })
        .collect();
    let pool = Arc::new(ThreadPool::with_threads(4));
    for exec in all_executors(&pool) {
        assert_eq!(exec.skyline(&pts).len(), n, "{}", exec.name());
    }
}
