//! Skyline, kNN and convex-hull-query substrate.
//!
//! The eclipse operator of the paper reduces to (and is compared against)
//! three classic operators, all implemented here from scratch:
//!
//! * [`dominance`] — skyline dominance predicates (minimisation convention),
//! * [`bnl`] — block-nested-loop skyline (the classic baseline of Börzsönyi
//!   et al.),
//! * [`sfs`] — sort-filter skyline (pre-sort by a monotone score, single pass),
//! * [`sweep`] — the O(n log n) two-dimensional sort + sweep skyline,
//! * [`dc`] — Bentley's multidimensional divide-and-conquer (ECDF) skyline,
//!   the O(n log^{d-1} n) routine called by the paper's Algorithm 3,
//! * [`knn`] — generalized 1NN / kNN under a linear scoring function (linear
//!   scan, binary-heap top-k, and R-tree accelerated variants),
//! * [`hull`] — the convex-hull query from the origin's view (2-D monotone
//!   chain and d-dimensional LP-feasibility membership), used for the
//!   relationship experiments around Fig. 4 of the paper,
//! * [`layers`] — skyline layers (onion peeling), the decomposition several
//!   result-size-control schemes in the paper's related work build on,
//! * [`exec`] — pluggable [`exec::SkylineExecutor`] strategies: the primary
//!   API since the parallel substrate landed.  Serial executors wrap the
//!   free functions below; parallel executors run the same algorithms over
//!   an [`eclipse_exec::ThreadPool`] (partition → local skyline →
//!   merge-filter for BNL/SFS, forked divide step for DC) and return
//!   bit-identical results at every thread count.
//!
//! # Example
//!
//! ```
//! use eclipse_geom::point::Point;
//! use eclipse_skyline::{skyline_bnl, skyline_dc};
//!
//! let pts = vec![
//!     Point::new(vec![1.0, 6.0]),
//!     Point::new(vec![4.0, 4.0]),
//!     Point::new(vec![6.0, 1.0]),
//!     Point::new(vec![8.0, 5.0]),
//! ];
//! assert_eq!(skyline_bnl(&pts), vec![0, 1, 2]);
//! assert_eq!(skyline_dc(&pts), skyline_bnl(&pts));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod bnl;
pub mod dc;
pub mod dominance;
pub mod exec;
pub mod hull;
pub mod knn;
pub mod layers;
pub mod sfs;
pub mod sweep;

pub use bnl::skyline_bnl;
pub use dc::{skyline_dc, skyline_dc_parallel};
pub use dominance::{dominates, strictly_dominates, DominanceOrdering};
pub use exec::{
    ParallelBnl, ParallelDc, ParallelSfs, SerialBnl, SerialDc, SerialSfs, SkylineExecutor,
};
pub use layers::{skyline_layers, SkylineLayers};
pub use sfs::skyline_sfs;
pub use sweep::skyline_2d;
