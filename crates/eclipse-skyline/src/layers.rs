//! Skyline layers (onion peeling).
//!
//! Repeatedly removing the skyline of the remaining points partitions the
//! dataset into *layers*: layer 0 is the skyline, layer 1 is the skyline of
//! what is left, and so on.  Several of the result-size-control proposals the
//! paper discusses in its related work (e.g. top-k representative skylines
//! "based on skyline layers") build on this decomposition, and the examples
//! use it to rank non-skyline records.  The implementation peels with the
//! sort-filter skyline, which is the fastest of the substrate algorithms when
//! each layer is small.

use eclipse_geom::point::Point;

use crate::sfs::skyline_sfs;

/// The layer decomposition of a dataset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SkylineLayers {
    /// `layers[k]` holds the dataset indices of layer `k`, each ascending.
    layers: Vec<Vec<usize>>,
    /// For every point, the index of its layer.
    assignment: Vec<usize>,
}

impl SkylineLayers {
    /// Number of layers (0 for an empty dataset).
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the dataset was empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The indices of layer `k`.
    ///
    /// # Panics
    /// Panics if `k >= self.len()`.
    pub fn layer(&self, k: usize) -> &[usize] {
        &self.layers[k]
    }

    /// All layers, outermost (the skyline) first.
    pub fn layers(&self) -> &[Vec<usize>] {
        &self.layers
    }

    /// The layer index of point `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn layer_of(&self, i: usize) -> usize {
        self.assignment[i]
    }

    /// The indices of the first `k` points encountered when walking layers
    /// outermost-first (a simple representative-selection heuristic; within a
    /// layer lower indices win).
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(k);
        for layer in &self.layers {
            for &i in layer {
                if out.len() == k {
                    return out;
                }
                out.push(i);
            }
        }
        out
    }
}

/// Computes the full skyline-layer decomposition.
pub fn skyline_layers(points: &[Point]) -> SkylineLayers {
    let mut remaining: Vec<usize> = (0..points.len()).collect();
    let mut layers: Vec<Vec<usize>> = Vec::new();
    let mut assignment = vec![0usize; points.len()];
    while !remaining.is_empty() {
        let sub: Vec<Point> = remaining.iter().map(|&i| points[i].clone()).collect();
        let local = skyline_sfs(&sub);
        let layer: Vec<usize> = local.iter().map(|&k| remaining[k]).collect();
        let in_layer: std::collections::HashSet<usize> = layer.iter().copied().collect();
        for &i in &layer {
            assignment[i] = layers.len();
        }
        remaining.retain(|i| !in_layer.contains(i));
        layers.push(layer);
    }
    SkylineLayers { layers, assignment }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::dominates;
    use rand::{Rng, SeedableRng};

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    #[test]
    fn empty_and_singleton() {
        let l = skyline_layers(&[]);
        assert!(l.is_empty());
        assert_eq!(l.len(), 0);
        assert_eq!(l.top_k(3), Vec::<usize>::new());
        let l = skyline_layers(&[p(&[1.0, 2.0])]);
        assert_eq!(l.len(), 1);
        assert_eq!(l.layer(0), &[0]);
        assert_eq!(l.layer_of(0), 0);
    }

    #[test]
    fn paper_running_example_has_two_layers() {
        let pts = vec![
            p(&[1.0, 6.0]),
            p(&[4.0, 4.0]),
            p(&[6.0, 1.0]),
            p(&[8.0, 5.0]),
        ];
        let l = skyline_layers(&pts);
        assert_eq!(l.len(), 2);
        assert_eq!(l.layer(0), &[0, 1, 2]);
        assert_eq!(l.layer(1), &[3]);
        assert_eq!(l.layer_of(3), 1);
        assert_eq!(l.top_k(2), vec![0, 1]);
        assert_eq!(l.top_k(4), vec![0, 1, 2, 3]);
        assert_eq!(l.top_k(10).len(), 4);
    }

    #[test]
    fn chain_produces_one_layer_per_point() {
        let pts: Vec<Point> = (0..8).map(|i| p(&[i as f64, i as f64])).collect();
        let l = skyline_layers(&pts);
        assert_eq!(l.len(), 8);
        for (k, layer) in l.layers().iter().enumerate() {
            assert_eq!(layer, &vec![k]);
        }
    }

    #[test]
    fn layers_partition_the_dataset() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        for d in 2..=4usize {
            let pts: Vec<Point> = (0..300)
                .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
                .collect();
            let l = skyline_layers(&pts);
            let total: usize = l.layers().iter().map(Vec::len).sum();
            assert_eq!(total, pts.len(), "d = {d}");
            // Every point appears exactly once and its assignment matches.
            let mut seen = vec![false; pts.len()];
            for (k, layer) in l.layers().iter().enumerate() {
                for &i in layer {
                    assert!(!seen[i]);
                    seen[i] = true;
                    assert_eq!(l.layer_of(i), k);
                }
            }
        }
    }

    #[test]
    fn no_point_is_dominated_within_its_layer_and_every_inner_point_is_dominated_by_an_outer_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(56);
        let pts: Vec<Point> = (0..200)
            .map(|_| {
                Point::new(vec![
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                ])
            })
            .collect();
        let l = skyline_layers(&pts);
        for (k, layer) in l.layers().iter().enumerate() {
            for &i in layer {
                for &j in layer {
                    assert!(!dominates(&pts[j], &pts[i]) || i == j);
                }
                if k > 0 {
                    let dominated_by_outer = l.layers()[..k]
                        .iter()
                        .flatten()
                        .any(|&j| dominates(&pts[j], &pts[i]));
                    assert!(
                        dominated_by_outer,
                        "point {i} in layer {k} has no outer dominator"
                    );
                }
            }
        }
    }
}
