//! Skyline dominance predicates.
//!
//! All operators in this workspace follow the paper's minimisation
//! convention: the query point sits at the origin and **smaller attribute
//! values are better** (closer to the query).  A point `p` skyline-dominates
//! `p′` when it is at least as close on every dimension and strictly closer
//! on at least one (Definition 2 together with the standard skyline
//! literature; see DESIGN.md §1 for the strictness discussion).

use eclipse_geom::approx::EPS;
use eclipse_geom::point::Point;

/// The three-way outcome of comparing two points under skyline dominance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DominanceOrdering {
    /// The left point dominates the right one.
    LeftDominates,
    /// The right point dominates the left one.
    RightDominates,
    /// Neither dominates the other (they are incomparable or equal).
    Incomparable,
}

/// Returns `true` if `p` skyline-dominates `q`: `p[i] ≤ q[i]` on every
/// dimension and `p[i] < q[i]` on at least one.
///
/// Exact (non-tolerance) comparisons are used: the skyline definition is
/// purely ordinal, and introducing an epsilon here would make dominance
/// non-transitive.  Points with identical coordinates do not dominate each
/// other.
///
/// # Panics
/// Panics if the points have different dimensionality.
pub fn dominates(p: &Point, q: &Point) -> bool {
    assert_eq!(p.dim(), q.dim(), "dimension mismatch in dominates");
    let mut strictly_better = false;
    for i in 0..p.dim() {
        if p.coord(i) > q.coord(i) {
            return false;
        }
        if p.coord(i) < q.coord(i) {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Returns `true` if `p` dominates `q` strictly on *every* dimension.
/// (A stronger notion occasionally useful for pruning and for tests.)
///
/// # Panics
/// Panics if the points have different dimensionality.
pub fn strictly_dominates(p: &Point, q: &Point) -> bool {
    assert_eq!(p.dim(), q.dim(), "dimension mismatch in strictly_dominates");
    (0..p.dim()).all(|i| p.coord(i) < q.coord(i))
}

/// Returns `true` if `p` weakly dominates `q`: `p[i] ≤ q[i]` on every
/// dimension (identical points weakly dominate each other).
///
/// # Panics
/// Panics if the points have different dimensionality.
pub fn weakly_dominates(p: &Point, q: &Point) -> bool {
    assert_eq!(p.dim(), q.dim(), "dimension mismatch in weakly_dominates");
    (0..p.dim()).all(|i| p.coord(i) <= q.coord(i))
}

/// Compares two points and reports which (if either) dominates.
///
/// # Panics
/// Panics if the points have different dimensionality.
pub fn compare(p: &Point, q: &Point) -> DominanceOrdering {
    assert_eq!(p.dim(), q.dim(), "dimension mismatch in compare");
    let mut p_better = false;
    let mut q_better = false;
    for i in 0..p.dim() {
        if p.coord(i) < q.coord(i) {
            p_better = true;
        } else if p.coord(i) > q.coord(i) {
            q_better = true;
        }
        if p_better && q_better {
            return DominanceOrdering::Incomparable;
        }
    }
    match (p_better, q_better) {
        (true, false) => DominanceOrdering::LeftDominates,
        (false, true) => DominanceOrdering::RightDominates,
        _ => DominanceOrdering::Incomparable,
    }
}

/// Returns `true` if `p` dominates `q` when both are first re-expressed
/// relative to the query point `origin` (absolute distances per dimension).
///
/// This is the "any monotonic scoring function around a query point" reading
/// of dominance used when the query point is not the coordinate origin.
///
/// # Panics
/// Panics if the dimensionalities disagree.
pub fn dominates_wrt(p: &Point, q: &Point, origin: &Point) -> bool {
    assert_eq!(p.dim(), q.dim(), "dimension mismatch in dominates_wrt");
    assert_eq!(p.dim(), origin.dim(), "origin dimension mismatch");
    let pd: Vec<f64> = (0..p.dim())
        .map(|i| (p.coord(i) - origin.coord(i)).abs())
        .collect();
    let qd: Vec<f64> = (0..q.dim())
        .map(|i| (q.coord(i) - origin.coord(i)).abs())
        .collect();
    dominates(&Point::new(pd), &Point::new(qd))
}

/// Brute-force O(n²·d) skyline used as the ground-truth oracle in tests and
/// as a correctness fallback: returns the indices of all points not dominated
/// by any other point.
pub fn skyline_naive(points: &[Point]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, q)| j != i && dominates(q, &points[i]))
        })
        .collect()
}

/// Returns `true` if the two result index sets denote the same subset of
/// points, treating duplicate coordinates as interchangeable.  Helper shared
/// by the algorithm-equivalence tests of the downstream crates.
pub fn same_point_set(points: &[Point], a: &[usize], b: &[usize]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut left: Vec<&Point> = a.iter().map(|&i| &points[i]).collect();
    let mut right: Vec<&Point> = b.iter().map(|&i| &points[i]).collect();
    left.sort_by(|x, y| x.lex_cmp(y));
    right.sort_by(|x, y| x.lex_cmp(y));
    left.iter().zip(right.iter()).all(|(x, y)| {
        x.coords()
            .iter()
            .zip(y.coords())
            .all(|(a, b)| (a - b).abs() <= EPS)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    #[test]
    fn basic_dominance() {
        assert!(dominates(&p(&[1.0, 1.0]), &p(&[2.0, 2.0])));
        assert!(dominates(&p(&[1.0, 2.0]), &p(&[1.0, 3.0])));
        assert!(!dominates(&p(&[1.0, 3.0]), &p(&[2.0, 2.0])));
        assert!(!dominates(&p(&[1.0, 1.0]), &p(&[1.0, 1.0])));
        assert!(strictly_dominates(&p(&[1.0, 1.0]), &p(&[2.0, 2.0])));
        assert!(!strictly_dominates(&p(&[1.0, 2.0]), &p(&[1.0, 3.0])));
        assert!(weakly_dominates(&p(&[1.0, 1.0]), &p(&[1.0, 1.0])));
    }

    #[test]
    fn paper_running_example_dominance() {
        // Figure 2: p1(1,6), p2(4,4), p3(6,1), p4(8,5); p2 dominates p4, the
        // skyline is {p1, p2, p3}.
        let pts = vec![
            p(&[1.0, 6.0]),
            p(&[4.0, 4.0]),
            p(&[6.0, 1.0]),
            p(&[8.0, 5.0]),
        ];
        assert!(dominates(&pts[1], &pts[3]));
        assert!(!dominates(&pts[0], &pts[3])); // p1 cannot skyline-dominate p4
        assert_eq!(skyline_naive(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn compare_is_consistent_with_dominates() {
        let a = p(&[1.0, 5.0]);
        let b = p(&[2.0, 6.0]);
        let c = p(&[5.0, 1.0]);
        assert_eq!(compare(&a, &b), DominanceOrdering::LeftDominates);
        assert_eq!(compare(&b, &a), DominanceOrdering::RightDominates);
        assert_eq!(compare(&a, &c), DominanceOrdering::Incomparable);
        assert_eq!(compare(&a, &a), DominanceOrdering::Incomparable);
    }

    #[test]
    fn dominance_wrt_query_point() {
        // Relative to query (5,5): (4,4) is closer than (1,1) on both axes.
        let origin = p(&[5.0, 5.0]);
        assert!(dominates_wrt(&p(&[4.0, 4.0]), &p(&[1.0, 1.0]), &origin));
        assert!(!dominates_wrt(&p(&[1.0, 1.0]), &p(&[4.0, 4.0]), &origin));
    }

    #[test]
    fn naive_skyline_handles_duplicates_and_singletons() {
        let pts = vec![p(&[1.0, 1.0]), p(&[1.0, 1.0]), p(&[2.0, 2.0])];
        // Identical points do not dominate each other: both stay.
        assert_eq!(skyline_naive(&pts), vec![0, 1]);
        assert_eq!(skyline_naive(&[p(&[3.0, 7.0])]), vec![0]);
        assert_eq!(skyline_naive(&[]), Vec::<usize>::new());
    }

    #[test]
    fn same_point_set_tolerates_permutation_and_duplicates() {
        let pts = vec![p(&[1.0, 1.0]), p(&[1.0, 1.0]), p(&[2.0, 2.0])];
        assert!(same_point_set(&pts, &[0, 1], &[1, 0]));
        assert!(!same_point_set(&pts, &[0], &[2]));
        assert!(!same_point_set(&pts, &[0], &[0, 1]));
        assert!(same_point_set(&pts, &[0, 2], &[1, 2]));
    }
}
