//! Sort-filter skyline (SFS).
//!
//! Pre-sorting the points by any monotone scoring function (here: the sum of
//! coordinates, with a lexicographic tie-break) guarantees that a point can
//! only be dominated by points appearing *earlier* in the order.  A single
//! pass comparing each point against the skyline found so far therefore
//! suffices, and — unlike plain BNL — no window eviction is ever needed.
//! This is the workhorse skyline back-end used by the eclipse
//! transformation-based algorithm for moderate dimensionalities.

use eclipse_geom::point::Point;

use crate::dominance::dominates;

/// Sorts `ids` into the SFS presort order: coordinate sum (the monotone
/// score) ascending with a lexicographic tie-break.  Dominance implies a
/// strictly smaller sum, so the sorted sequence sees every dominator before
/// its victims — the invariant both [`skyline_sfs`] and the parallel
/// executors' merge step rely on.  Sums are computed once per id
/// (decorate–sort–undecorate), not once per comparison.
pub(crate) fn sort_by_sum(points: &[Point], ids: Vec<usize>) -> Vec<usize> {
    let mut keyed: Vec<(f64, usize)> = ids
        .into_iter()
        .map(|i| (points[i].coords().iter().sum(), i))
        .collect();
    keyed.sort_by(|(sa, a), (sb, b)| {
        sa.total_cmp(sb)
            .then_with(|| points[*a].lex_cmp(&points[*b]))
    });
    keyed.into_iter().map(|(_, i)| i).collect()
}

/// The SFS visit order over the whole dataset.  Shared with the parallel
/// sort-filter executor, which deals this order into blocks.
pub(crate) fn sum_order(points: &[Point]) -> Vec<usize> {
    sort_by_sum(points, (0..points.len()).collect())
}

/// One filtering pass over a slice of the presorted visit order: keeps every
/// index not dominated by an earlier kept index of the same slice.
pub(crate) fn filter_pass(points: &[Point], order: &[usize]) -> Vec<usize> {
    let mut skyline: Vec<usize> = Vec::new();
    'outer: for &i in order {
        for &s in &skyline {
            if dominates(&points[s], &points[i]) {
                continue 'outer;
            }
        }
        skyline.push(i);
    }
    skyline
}

/// Computes the skyline with the sort-filter algorithm, returning indices in
/// ascending index order.
pub fn skyline_sfs(points: &[Point]) -> Vec<usize> {
    if points.is_empty() {
        return Vec::new();
    }
    let mut skyline = filter_pass(points, &sum_order(points));
    skyline.sort_unstable();
    skyline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::skyline_bnl;
    use crate::dominance::skyline_naive;
    use rand::{Rng, SeedableRng};

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(skyline_sfs(&[]), Vec::<usize>::new());
        assert_eq!(skyline_sfs(&[p(&[1.0, 2.0, 3.0])]), vec![0]);
    }

    #[test]
    fn paper_running_example() {
        let pts = vec![
            p(&[1.0, 6.0]),
            p(&[4.0, 4.0]),
            p(&[6.0, 1.0]),
            p(&[8.0, 5.0]),
        ];
        assert_eq!(skyline_sfs(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn presort_never_misses_dominators() {
        // A dominated point whose coordinate sum is smaller than one of its
        // dominators cannot exist (dominance implies smaller-or-equal sum), so
        // SFS is correct; spot-check a case with ties in the sum.
        let pts = vec![
            p(&[2.0, 2.0]),
            p(&[1.0, 3.0]),
            p(&[3.0, 1.0]),
            p(&[2.0, 3.0]),
        ];
        assert_eq!(skyline_sfs(&pts), skyline_naive(&pts));
    }

    #[test]
    fn matches_naive_and_bnl_on_random_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for d in 2..=5usize {
            for _ in 0..5 {
                let pts: Vec<Point> = (0..300)
                    .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
                    .collect();
                let sfs = skyline_sfs(&pts);
                assert_eq!(sfs, skyline_naive(&pts), "naive mismatch, d = {d}");
                assert_eq!(sfs, skyline_bnl(&pts), "bnl mismatch, d = {d}");
            }
        }
    }

    #[test]
    fn duplicates_are_kept() {
        let pts = vec![p(&[1.0, 1.0]), p(&[1.0, 1.0])];
        assert_eq!(skyline_sfs(&pts), vec![0, 1]);
    }

    #[test]
    fn anti_correlated_data_keeps_everything() {
        let pts: Vec<Point> = (0..50).map(|i| p(&[i as f64, (49 - i) as f64])).collect();
        assert_eq!(skyline_sfs(&pts).len(), 50);
    }
}
