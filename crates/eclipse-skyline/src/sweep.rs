//! The O(n log n) two-dimensional skyline (sort + sweep).
//!
//! Sorting by the first coordinate (ties broken by the second) and sweeping
//! while maintaining the minimum second coordinate seen so far yields the 2-D
//! skyline in O(n log n) — the routine invoked by Line 4 of the paper's
//! Algorithm 2 and by Line 1 of Algorithm 4.

use eclipse_geom::point::Point;

/// Computes the two-dimensional skyline, returning indices in ascending
/// index order.
///
/// # Panics
/// Panics if any point is not two-dimensional.
pub fn skyline_2d(points: &[Point]) -> Vec<usize> {
    for p in points {
        assert_eq!(p.dim(), 2, "skyline_2d requires two-dimensional points");
    }
    if points.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .coord(0)
            .total_cmp(&points[b].coord(0))
            .then(points[a].coord(1).total_cmp(&points[b].coord(1)))
    });

    let mut result = Vec::new();
    let mut best_y = f64::INFINITY;
    let mut prev_x = f64::NEG_INFINITY;
    let mut prev_y_at_x = f64::INFINITY;
    for &i in &order {
        let x = points[i].coord(0);
        let y = points[i].coord(1);
        // A point survives iff no earlier point (smaller or equal x) has a
        // smaller-or-equal y, except that *identical* points must all survive
        // (they do not dominate each other) and points sharing the x of the
        // current best but with larger y are dominated.
        if y < best_y {
            result.push(i);
            best_y = y;
            prev_x = x;
            prev_y_at_x = y;
        } else if y == best_y {
            // Same y as the best so far: dominated unless it is an exact
            // duplicate of the point that set the record.
            if x == prev_x && y == prev_y_at_x {
                result.push(i);
            }
        }
    }
    result.sort_unstable();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::skyline_naive;
    use rand::{Rng, SeedableRng};

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(skyline_2d(&[]), Vec::<usize>::new());
        assert_eq!(skyline_2d(&[p(&[1.0, 2.0])]), vec![0]);
    }

    #[test]
    fn paper_running_example() {
        let pts = vec![
            p(&[1.0, 6.0]),
            p(&[4.0, 4.0]),
            p(&[6.0, 1.0]),
            p(&[8.0, 5.0]),
        ];
        assert_eq!(skyline_2d(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn equal_x_keeps_only_lower_y() {
        let pts = vec![p(&[1.0, 5.0]), p(&[1.0, 3.0]), p(&[2.0, 6.0])];
        assert_eq!(skyline_2d(&pts), vec![1]);
    }

    #[test]
    fn equal_y_keeps_only_lower_x() {
        let pts = vec![p(&[3.0, 2.0]), p(&[1.0, 2.0]), p(&[0.5, 4.0])];
        assert_eq!(skyline_2d(&pts), skyline_naive(&pts));
    }

    #[test]
    fn exact_duplicates_all_survive() {
        let pts = vec![
            p(&[1.0, 1.0]),
            p(&[1.0, 1.0]),
            p(&[2.0, 0.5]),
            p(&[1.0, 1.0]),
        ];
        let got = skyline_2d(&pts);
        assert_eq!(got, skyline_naive(&pts));
        assert!(got.contains(&0) && got.contains(&1) && got.contains(&3));
    }

    #[test]
    fn matches_naive_on_random_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let pts: Vec<Point> = (0..500)
                .map(|_| Point::new(vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]))
                .collect();
            assert_eq!(skyline_2d(&pts), skyline_naive(&pts));
        }
    }

    #[test]
    fn matches_naive_on_gridded_data_with_many_ties() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        for _ in 0..10 {
            let pts: Vec<Point> = (0..300)
                .map(|_| Point::new(vec![rng.gen_range(0..8) as f64, rng.gen_range(0..8) as f64]))
                .collect();
            assert_eq!(skyline_2d(&pts), skyline_naive(&pts));
        }
    }

    #[test]
    #[should_panic(expected = "two-dimensional")]
    fn rejects_higher_dimensional_points() {
        let _ = skyline_2d(&[p(&[1.0, 2.0, 3.0])]);
    }
}
