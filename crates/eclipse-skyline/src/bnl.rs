//! Block-nested-loop (BNL) skyline.
//!
//! The classic skyline algorithm of Börzsönyi, Kossmann and Stocker \[4\]:
//! stream the points through an in-memory window of incomparable candidates,
//! discarding points dominated by a window entry and evicting window entries
//! dominated by the incoming point.  Worst case O(n²·d), but simple and very
//! fast on correlated data where the window stays tiny.  Used in this
//! workspace as one of the interchangeable skyline back-ends (and as a
//! second, structurally different oracle for the divide-and-conquer
//! implementation).

use eclipse_geom::point::Point;

use crate::dominance::dominates;

/// Computes the skyline of `points` with the block-nested-loop algorithm and
/// returns the indices of the skyline points in ascending index order.
pub fn skyline_bnl(points: &[Point]) -> Vec<usize> {
    let mut window: Vec<usize> = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        let mut w = 0;
        while w < window.len() {
            let q = &points[window[w]];
            if dominates(q, p) {
                continue 'outer;
            }
            if dominates(p, q) {
                window.swap_remove(w);
            } else {
                w += 1;
            }
        }
        window.push(i);
    }
    window.sort_unstable();
    window
}

/// Computes the skyline and additionally reports, for every non-skyline
/// point, the index of one point dominating it (a "witness").  Useful for
/// explaining query answers and exercised by the examples.
pub fn skyline_bnl_with_witnesses(points: &[Point]) -> (Vec<usize>, Vec<Option<usize>>) {
    let skyline = skyline_bnl(points);
    let mut witness: Vec<Option<usize>> = vec![None; points.len()];
    let in_skyline: std::collections::HashSet<usize> = skyline.iter().copied().collect();
    for (i, p) in points.iter().enumerate() {
        if in_skyline.contains(&i) {
            continue;
        }
        witness[i] = skyline.iter().copied().find(|&s| dominates(&points[s], p));
    }
    (skyline, witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::skyline_naive;
    use rand::{Rng, SeedableRng};

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(skyline_bnl(&[]), Vec::<usize>::new());
        assert_eq!(skyline_bnl(&[p(&[1.0, 2.0])]), vec![0]);
    }

    #[test]
    fn paper_running_example() {
        let pts = vec![
            p(&[1.0, 6.0]),
            p(&[4.0, 4.0]),
            p(&[6.0, 1.0]),
            p(&[8.0, 5.0]),
        ];
        assert_eq!(skyline_bnl(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn duplicates_are_both_kept() {
        let pts = vec![
            p(&[1.0, 1.0]),
            p(&[1.0, 1.0]),
            p(&[0.5, 3.0]),
            p(&[2.0, 2.0]),
        ];
        assert_eq!(skyline_bnl(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn totally_ordered_chain_keeps_only_minimum() {
        let pts: Vec<Point> = (0..20).map(|i| p(&[i as f64, i as f64])).collect();
        assert_eq!(skyline_bnl(&pts), vec![0]);
    }

    #[test]
    fn anti_chain_keeps_everything() {
        let pts: Vec<Point> = (0..20).map(|i| p(&[i as f64, (19 - i) as f64])).collect();
        assert_eq!(skyline_bnl(&pts).len(), 20);
    }

    #[test]
    fn matches_naive_on_random_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for d in 2..=5usize {
            for _ in 0..5 {
                let pts: Vec<Point> = (0..200)
                    .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
                    .collect();
                assert_eq!(skyline_bnl(&pts), skyline_naive(&pts), "d = {d}");
            }
        }
    }

    #[test]
    fn witnesses_point_at_dominators() {
        let pts = vec![
            p(&[1.0, 6.0]),
            p(&[4.0, 4.0]),
            p(&[6.0, 1.0]),
            p(&[8.0, 5.0]),
        ];
        let (skyline, witnesses) = skyline_bnl_with_witnesses(&pts);
        assert_eq!(skyline, vec![0, 1, 2]);
        assert_eq!(witnesses[0], None);
        let w = witnesses[3].expect("p4 must have a witness");
        assert!(dominates(&pts[w], &pts[3]));
    }
}
