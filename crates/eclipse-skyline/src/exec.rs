//! Pluggable skyline executors — the primary skyline API of this crate.
//!
//! A [`SkylineExecutor`] bundles one skyline algorithm with one execution
//! strategy behind a uniform object-safe call, so upper layers (the TRAN
//! transformation, the `EclipseEngine`, the benchmarks) select *what* runs
//! and *how wide* it runs with one value:
//!
//! * [`SerialBnl`] / [`SerialSfs`] / [`SerialDc`] — the single-threaded
//!   algorithms, equivalent to the long-standing free functions
//!   [`skyline_bnl`](crate::skyline_bnl), [`skyline_sfs`](crate::skyline_sfs)
//!   and [`skyline_dc`](crate::skyline_dc) (which remain as thin
//!   backwards-compatible wrappers);
//! * [`ParallelBnl`] / [`ParallelSfs`] — partition the input over an
//!   [`eclipse_exec::ThreadPool`], compute per-block local skylines, then
//!   merge-filter the union of the local candidates (a point survives a
//!   block exactly when nothing in that block dominates it, so the true
//!   skyline is always a subset of the candidate union — the merge filter
//!   makes the result exact);
//! * [`ParallelDc`] — forks the divide step of the multidimensional
//!   divide-and-conquer as budgeted fork-join branches.
//!
//! Every executor returns the **identical** ascending index set on the same
//! input — duplicates, degenerate ties and all — at every thread count; the
//! property suites in `tests/executor_properties.rs` enforce this against
//! the brute-force oracle.  Small inputs fall back to the serial algorithm
//! below a configurable cutoff, so a parallel executor is always safe to use
//! unconditionally.

use std::sync::Arc;

use eclipse_exec::ThreadPool;
use eclipse_geom::point::Point;

use crate::{bnl, dc, sfs};

/// A skyline computation strategy: algorithm plus execution width.
///
/// Implementations return the indices of the skyline points in ascending
/// order and must agree exactly with
/// [`skyline_naive`](crate::dominance::skyline_naive) on every input.
pub trait SkylineExecutor: Send + Sync {
    /// Short label for diagnostics, benchmarks and experiment tables.
    fn name(&self) -> &'static str;

    /// Computes the skyline of `points`, indices ascending.
    ///
    /// # Panics
    /// Panics if the points do not share one dimensionality (parallel
    /// executors propagate the panic from their workers).
    fn skyline(&self, points: &[Point]) -> Vec<usize>;
}

/// Serial block-nested-loop executor.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialBnl;

impl SkylineExecutor for SerialBnl {
    fn name(&self) -> &'static str {
        "bnl"
    }

    fn skyline(&self, points: &[Point]) -> Vec<usize> {
        bnl::skyline_bnl(points)
    }
}

/// Serial sort-filter executor.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialSfs;

impl SkylineExecutor for SerialSfs {
    fn name(&self) -> &'static str {
        "sfs"
    }

    fn skyline(&self, points: &[Point]) -> Vec<usize> {
        sfs::skyline_sfs(points)
    }
}

/// Serial divide-and-conquer executor.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialDc;

impl SkylineExecutor for SerialDc {
    fn name(&self) -> &'static str {
        "dc"
    }

    fn skyline(&self, points: &[Point]) -> Vec<usize> {
        dc::skyline_dc(points)
    }
}

/// Inputs at or below this size are not worth parallelising.
/// Default input size below which the partition-based parallel executors run
/// the serial algorithm instead (also the default for the `_pooled` free
/// functions).
pub const DEFAULT_SEQUENTIAL_CUTOFF: usize = 2048;

/// Partition length: a couple of blocks per pool thread so work stealing can
/// even out skew without shrinking the per-block windows too much.
fn block_len(n: usize, pool: &ThreadPool) -> usize {
    n.div_ceil(pool.threads() * 2).max(1)
}

/// Exact merge step shared by the partition-based executors: the candidates
/// are a superset of the skyline (each survived its own block), so the
/// skyline of the candidate set *is* the skyline of the input.  Duplicates
/// are preserved: identical points never dominate each other.
///
/// The candidates are filtered in the SFS sum order — every dominator
/// precedes its victims — so one pass comparing each candidate against the
/// accepted skyline suffices: O(C·S) for C candidates and S skyline points,
/// rather than the quadratic all-pairs filter.
fn merge_filter(points: &[Point], candidates: Vec<usize>) -> Vec<usize> {
    let ordered = sfs::sort_by_sum(points, candidates);
    let mut out = sfs::filter_pass(points, &ordered);
    out.sort_unstable();
    out
}

/// Parallel block-nested-loop executor: partition → per-block BNL →
/// merge-filter.
#[derive(Clone, Debug)]
pub struct ParallelBnl {
    pool: Arc<ThreadPool>,
    sequential_cutoff: usize,
}

impl ParallelBnl {
    /// A parallel BNL executor over `pool` with the default serial cutoff.
    pub fn new(pool: Arc<ThreadPool>) -> Self {
        Self::with_cutoff(pool, DEFAULT_SEQUENTIAL_CUTOFF)
    }

    /// Overrides the input size below which the serial algorithm runs.
    pub fn with_cutoff(pool: Arc<ThreadPool>, sequential_cutoff: usize) -> Self {
        ParallelBnl {
            pool,
            sequential_cutoff,
        }
    }
}

impl SkylineExecutor for ParallelBnl {
    fn name(&self) -> &'static str {
        "bnl-par"
    }

    fn skyline(&self, points: &[Point]) -> Vec<usize> {
        skyline_bnl_pooled(points, &self.pool, self.sequential_cutoff)
    }
}

/// The [`ParallelBnl`] algorithm over a *borrowed* pool — the entry point
/// for callers that already hold a pool handle and dispatch per call, so no
/// `Arc` traffic or executor construction is needed.
pub fn skyline_bnl_pooled(
    points: &[Point],
    pool: &ThreadPool,
    sequential_cutoff: usize,
) -> Vec<usize> {
    if points.len() <= sequential_cutoff || pool.threads() <= 1 {
        return bnl::skyline_bnl(points);
    }
    let locals = pool.par_chunks(points, block_len(points.len(), pool), |offset, block| {
        bnl::skyline_bnl(block)
            .into_iter()
            .map(|i| i + offset)
            .collect::<Vec<usize>>()
    });
    merge_filter(points, locals.concat())
}

/// Parallel sort-filter executor: one global presort by coordinate sum, then
/// partition the visit order → per-block filter pass → merge-filter.
#[derive(Clone, Debug)]
pub struct ParallelSfs {
    pool: Arc<ThreadPool>,
    sequential_cutoff: usize,
}

impl ParallelSfs {
    /// A parallel SFS executor over `pool` with the default serial cutoff.
    pub fn new(pool: Arc<ThreadPool>) -> Self {
        Self::with_cutoff(pool, DEFAULT_SEQUENTIAL_CUTOFF)
    }

    /// Overrides the input size below which the serial algorithm runs.
    pub fn with_cutoff(pool: Arc<ThreadPool>, sequential_cutoff: usize) -> Self {
        ParallelSfs {
            pool,
            sequential_cutoff,
        }
    }
}

impl SkylineExecutor for ParallelSfs {
    fn name(&self) -> &'static str {
        "sfs-par"
    }

    fn skyline(&self, points: &[Point]) -> Vec<usize> {
        skyline_sfs_pooled(points, &self.pool, self.sequential_cutoff)
    }
}

/// The [`ParallelSfs`] algorithm over a *borrowed* pool — the entry point
/// for callers that already hold a pool handle and dispatch per call, so no
/// `Arc` traffic or executor construction is needed.
pub fn skyline_sfs_pooled(
    points: &[Point],
    pool: &ThreadPool,
    sequential_cutoff: usize,
) -> Vec<usize> {
    if points.len() <= sequential_cutoff || pool.threads() <= 1 {
        return sfs::skyline_sfs(points);
    }
    let order = sfs::sum_order(points);
    // Deal the presorted order round-robin across the blocks: every
    // block is then a sum-sorted *sample of the whole dataset*, so its
    // local filter pass prunes as aggressively as global SFS would.
    // (Contiguous slices of the sum order would make the tail blocks
    // internally anti-correlated — equal-sum points rarely dominate each
    // other — and their local passes quadratic.)  Within a block the
    // pass is exact; cross-block dominators are handled by the merge
    // filter, since a dominator chain always ends at a block-local
    // survivor.
    let num_blocks = (pool.threads() * 2).min(order.len().max(1));
    // (`vec![Vec::with_capacity(..); n]` would clone away the capacity.)
    let mut blocks: Vec<Vec<usize>> = (0..num_blocks)
        .map(|_| Vec::with_capacity(order.len() / num_blocks + 1))
        .collect();
    for (k, &i) in order.iter().enumerate() {
        blocks[k % num_blocks].push(i);
    }
    let locals = pool.par_map(&blocks, |block| sfs::filter_pass(points, block));
    merge_filter(points, locals.concat())
}

/// Parallel divide-and-conquer executor: the divide step runs as budgeted
/// fork-join branches (see [`dc::skyline_dc_parallel`]).
#[derive(Clone, Debug)]
pub struct ParallelDc {
    pool: Arc<ThreadPool>,
    fork_cutoff: usize,
}

impl ParallelDc {
    /// A parallel DC executor over `pool` with the default fork cutoff.
    pub fn new(pool: Arc<ThreadPool>) -> Self {
        Self::with_cutoff(pool, dc::DEFAULT_FORK_CUTOFF)
    }

    /// Overrides the subproblem size below which divide steps stop forking.
    pub fn with_cutoff(pool: Arc<ThreadPool>, fork_cutoff: usize) -> Self {
        ParallelDc { pool, fork_cutoff }
    }
}

impl SkylineExecutor for ParallelDc {
    fn name(&self) -> &'static str {
        "dc-par"
    }

    fn skyline(&self, points: &[Point]) -> Vec<usize> {
        dc::skyline_dc_impl(points, Some((&self.pool, self.fork_cutoff)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::skyline_naive;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Point> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect()
    }

    fn parallel_executors(pool: &Arc<ThreadPool>, cutoff: usize) -> Vec<Box<dyn SkylineExecutor>> {
        vec![
            Box::new(ParallelBnl::with_cutoff(pool.clone(), cutoff)),
            Box::new(ParallelSfs::with_cutoff(pool.clone(), cutoff)),
            Box::new(ParallelDc::with_cutoff(pool.clone(), cutoff)),
        ]
    }

    #[test]
    fn serial_executors_match_free_functions() {
        let pts = random_points(300, 3, 9);
        assert_eq!(SerialBnl.skyline(&pts), bnl::skyline_bnl(&pts));
        assert_eq!(SerialSfs.skyline(&pts), sfs::skyline_sfs(&pts));
        assert_eq!(SerialDc.skyline(&pts), dc::skyline_dc(&pts));
        assert_eq!(SerialBnl.name(), "bnl");
        assert_eq!(SerialSfs.name(), "sfs");
        assert_eq!(SerialDc.name(), "dc");
    }

    #[test]
    fn parallel_executors_match_naive_above_the_cutoff() {
        let pool = Arc::new(ThreadPool::with_threads(4));
        for d in [2usize, 3, 4] {
            let pts = random_points(700, d, 31 + d as u64);
            let expected = skyline_naive(&pts);
            for exec in parallel_executors(&pool, 16) {
                assert_eq!(exec.skyline(&pts), expected, "{} d={d}", exec.name());
            }
        }
    }

    #[test]
    fn parallel_executors_handle_empty_singleton_and_duplicates() {
        let pool = Arc::new(ThreadPool::with_threads(2));
        let dup = vec![Point::from_slice(&[1.0, 1.0]); 40];
        for exec in parallel_executors(&pool, 4) {
            assert_eq!(exec.skyline(&[]), Vec::<usize>::new(), "{}", exec.name());
            assert_eq!(
                exec.skyline(&[Point::from_slice(&[3.0, 7.0])]),
                vec![0],
                "{}",
                exec.name()
            );
            // Identical points never dominate each other: all stay.
            assert_eq!(
                exec.skyline(&dup),
                (0..dup.len()).collect::<Vec<_>>(),
                "{}",
                exec.name()
            );
        }
    }

    #[test]
    fn single_thread_pool_falls_back_to_serial() {
        let pool = Arc::new(ThreadPool::with_threads(1));
        let pts = random_points(200, 3, 12);
        let expected = skyline_naive(&pts);
        for exec in parallel_executors(&pool, 4) {
            assert_eq!(exec.skyline(&pts), expected, "{}", exec.name());
        }
    }

    #[test]
    fn parallel_executors_propagate_dimension_mismatch_panics() {
        let pool = Arc::new(ThreadPool::with_threads(2));
        let mut pts = random_points(100, 3, 5);
        pts.push(Point::from_slice(&[1.0, 2.0]));
        for exec in parallel_executors(&pool, 4) {
            let name = exec.name();
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| exec.skyline(&pts)));
            assert!(outcome.is_err(), "{name} must panic on mixed dims");
        }
    }
}
