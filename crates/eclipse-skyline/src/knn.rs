//! Generalized 1NN / kNN under a linear scoring function.
//!
//! Definition 1 of the paper phrases 1NN through the weighted sum
//! `S(p) = Σ_i w[i]·p[i]` for a user-specified attribute weight vector (the
//! query point being the origin); kNN returns the `k` points with the
//! smallest scores.  Three interchangeable engines are provided:
//!
//! * [`knn_linear_scan`] — the obvious O(n log k) heap scan,
//! * [`knn_rtree`] — best-first search over an STR-bulk-loaded R-tree
//!   ([`eclipse_geom::rtree`]), pruning subtrees by their lower score bound,
//! * [`knn_euclidean`] — classic distance-based kNN around an arbitrary query
//!   point, used by the examples for comparison with the scoring flavour.

use eclipse_geom::point::Point;
use eclipse_geom::rtree::RTree;

/// Result entry of a kNN query: the point index and its score (or distance).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Index of the point in the dataset.
    pub index: usize,
    /// Score (weighted sum) or distance, depending on the query flavour.
    pub score: f64,
}

/// Returns the `k` points with the smallest weighted sum `Σ_i w[i]·p[i]`,
/// in ascending score order, by a single heap-based scan.
///
/// Ties are broken by point index so results are deterministic.
///
/// # Panics
/// Panics if `weights.len()` differs from the point dimensionality.
pub fn knn_linear_scan(points: &[Point], weights: &[f64], k: usize) -> Vec<Neighbor> {
    let mut scored: Vec<Neighbor> = points
        .iter()
        .enumerate()
        .map(|(i, p)| Neighbor {
            index: i,
            score: p.weighted_sum(weights),
        })
        .collect();
    scored.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.index.cmp(&b.index)));
    scored.truncate(k);
    scored
}

/// The single nearest neighbour under a linear scoring function, or `None`
/// for an empty dataset — the paper's 1NN operator.
pub fn nn_linear(points: &[Point], weights: &[f64]) -> Option<Neighbor> {
    knn_linear_scan(points, weights, 1).into_iter().next()
}

/// R-tree accelerated top-k by weighted sum.  Produces exactly the same
/// result as [`knn_linear_scan`] (up to tie order, which is then normalized
/// by score/index sorting).
pub fn knn_rtree(tree: &RTree, points: &[Point], weights: &[f64], k: usize) -> Vec<Neighbor> {
    let mut result: Vec<Neighbor> = tree
        .top_k_by_weighted_sum(points, weights, k)
        .into_iter()
        .map(|(index, score)| Neighbor { index, score })
        .collect();
    result.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.index.cmp(&b.index)));
    result
}

/// Classic Euclidean kNN around an explicit query point (linear scan).
pub fn knn_euclidean(points: &[Point], query: &Point, k: usize) -> Vec<Neighbor> {
    let mut scored: Vec<Neighbor> = points
        .iter()
        .enumerate()
        .map(|(i, p)| Neighbor {
            index: i,
            score: p.l2_distance(query),
        })
        .collect();
    scored.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.index.cmp(&b.index)));
    scored.truncate(k);
    scored
}

/// Converts an attribute weight *ratio* vector `r = ⟨r[1], …, r[d−1]⟩`
/// (relative to the last attribute, whose weight is 1) into the full weight
/// vector `⟨r[1], …, r[d−1], 1⟩` expected by the scoring functions above.
pub fn ratio_to_weights(ratios: &[f64]) -> Vec<f64> {
    let mut w = ratios.to_vec();
    w.push(1.0);
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    fn paper_points() -> Vec<Point> {
        vec![
            p(&[1.0, 6.0]),
            p(&[4.0, 4.0]),
            p(&[6.0, 1.0]),
            p(&[8.0, 5.0]),
        ]
    }

    #[test]
    fn paper_figure1_nearest_neighbour() {
        // Figure 1: w = <2, 1> makes p1 the 1NN with S(p1) = 8.
        let nn = nn_linear(&paper_points(), &[2.0, 1.0]).unwrap();
        assert_eq!(nn.index, 0);
        assert!((nn.score - 8.0).abs() < 1e-12);
    }

    #[test]
    fn knn_orders_by_score() {
        let res = knn_linear_scan(&paper_points(), &[2.0, 1.0], 4);
        // Scores: p1=8, p2=12, p3=13, p4=21.
        let scores: Vec<f64> = res.iter().map(|n| n.score).collect();
        assert_eq!(scores, vec![8.0, 12.0, 13.0, 21.0]);
        let idx: Vec<usize> = res.iter().map(|n| n.index).collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
        // k larger than n just returns everything.
        assert_eq!(knn_linear_scan(&paper_points(), &[2.0, 1.0], 10).len(), 4);
        // k = 0 returns nothing.
        assert!(knn_linear_scan(&paper_points(), &[2.0, 1.0], 0).is_empty());
    }

    #[test]
    fn empty_dataset() {
        assert!(nn_linear(&[], &[1.0, 1.0]).is_none());
        assert!(knn_euclidean(&[], &p(&[0.0, 0.0]), 3).is_empty());
    }

    #[test]
    fn ratio_to_weights_appends_unit() {
        assert_eq!(ratio_to_weights(&[2.0]), vec![2.0, 1.0]);
        assert_eq!(ratio_to_weights(&[0.5, 3.0]), vec![0.5, 3.0, 1.0]);
        assert_eq!(ratio_to_weights(&[]), vec![1.0]);
    }

    #[test]
    fn rtree_and_scan_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for d in [2usize, 3, 5] {
            let pts: Vec<Point> = (0..500)
                .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
                .collect();
            let tree = RTree::bulk_load(&pts);
            let weights: Vec<f64> = (0..d).map(|_| rng.gen_range(0.1..3.0)).collect();
            let a = knn_linear_scan(&pts, &weights, 15);
            let b = knn_rtree(&tree, &pts, &weights, 15);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x.score - y.score).abs() < 1e-9, "d = {d}");
            }
        }
    }

    #[test]
    fn euclidean_knn_sanity() {
        let pts = paper_points();
        let res = knn_euclidean(&pts, &p(&[6.0, 1.0]), 2);
        assert_eq!(res[0].index, 2);
        assert!(res[0].score.abs() < 1e-12);
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn the_1nn_winner_is_scale_invariant_in_weights() {
        // Scaling the whole weight vector never changes the argmin.
        let pts = paper_points();
        let a = nn_linear(&pts, &[2.0, 1.0]).unwrap();
        let b = nn_linear(&pts, &[4.0, 2.0]).unwrap();
        assert_eq!(a.index, b.index);
    }
}
