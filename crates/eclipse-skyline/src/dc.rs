//! Multidimensional divide-and-conquer skyline (the ECDF-style algorithm of
//! Bentley \[3\] cited by the paper for its O(n log^{d−1} n) bound).
//!
//! Structure:
//!
//! 1. exact duplicates are factored out first (duplicates never dominate each
//!    other, so each duplicate of a surviving representative survives);
//! 2. the point set is sorted by the last dimension and split at the median
//!    index into a "low" half `L` and a "high" half `H`;
//! 3. both halves are solved recursively;
//! 4. a *marriage* (filter) step removes from `skyline(H)` every point weakly
//!    dominated by a point of `skyline(L)` **on the first d−1 dimensions
//!    only** — correct because every point of `L` has a last coordinate no
//!    larger than every point of `H`, and exact duplicates were removed up
//!    front (see the correctness notes inline);
//! 5. the filter itself is a recursive divide-and-conquer on one fewer
//!    dimension with 1-D / 2-D sweep base cases.
//!
//! The implementation favours clarity and correctness on degenerate inputs
//! (ties, duplicated coordinates, tiny inputs) over squeezing constants; the
//! benchmarks in `eclipse-bench` compare it against BNL/SFS on the paper's
//! workloads.

use std::collections::HashMap;

use eclipse_exec::ThreadPool;
use eclipse_geom::point::Point;

use crate::dominance::skyline_naive;
use crate::sweep::skyline_2d;

/// Inputs at or below this size are handled by the naive skyline.
const SMALL_INPUT: usize = 48;
/// Filter subproblems at or below this many pairs are handled brute-force.
const SMALL_FILTER: usize = 512;
/// Divide steps on subproblems above this size fork via the pool by default.
pub(crate) const DEFAULT_FORK_CUTOFF: usize = 2048;

/// Computes the skyline with the divide-and-conquer (ECDF) algorithm and
/// returns the indices of the skyline points in ascending index order.
pub fn skyline_dc(points: &[Point]) -> Vec<usize> {
    skyline_dc_impl(points, None)
}

/// [`skyline_dc`] with the divide step forked onto `pool` (the two recursive
/// halves run as fork-join branches while the pool has leases and the
/// subproblem is large enough to amortise a fork).
///
/// The recursion is deterministic, so the result is *identical* to
/// [`skyline_dc`] — same indices, same order — at every thread count.
pub fn skyline_dc_parallel(points: &[Point], pool: &ThreadPool) -> Vec<usize> {
    skyline_dc_impl(points, Some((pool, DEFAULT_FORK_CUTOFF)))
}

/// Shared entry: `par` carries the pool plus the minimum subproblem size
/// worth forking (exposed crate-internally so the executor layer can lower
/// the cutoff in tests).
pub(crate) fn skyline_dc_impl(points: &[Point], par: Option<(&ThreadPool, usize)>) -> Vec<usize> {
    if points.is_empty() {
        return Vec::new();
    }
    let d = points[0].dim();
    assert!(
        points.iter().all(|p| p.dim() == d),
        "all points must share the same dimensionality"
    );

    // Deduplicate exact coordinate vectors; representatives carry all their
    // duplicate original indices.
    let mut groups: HashMap<Vec<u64>, Vec<usize>> = HashMap::new();
    for (i, p) in points.iter().enumerate() {
        let key: Vec<u64> = p.coords().iter().map(|c| c.to_bits()).collect();
        groups.entry(key).or_default().push(i);
    }
    let mut reps: Vec<usize> = groups.values().map(|g| g[0]).collect();
    reps.sort_unstable();
    let rep_points: Vec<Point> = reps.iter().map(|&i| points[i].clone()).collect();

    let par = par.filter(|&(pool, _)| pool.threads() > 1);
    let surviving = dc_recursive(
        &rep_points,
        &(0..rep_points.len()).collect::<Vec<_>>(),
        d,
        par,
    );

    let mut out = Vec::new();
    for local in surviving {
        let original = reps[local];
        let key: Vec<u64> = points[original]
            .coords()
            .iter()
            .map(|c| c.to_bits())
            .collect();
        out.extend_from_slice(&groups[&key]);
    }
    out.sort_unstable();
    out
}

/// Recursively computes the skyline of the subset `ids` (indices into
/// `points`, all unique coordinate vectors) considering the first `d`
/// dimensions.  Returns surviving ids.  With `par` set, divide steps on
/// subproblems above the fork cutoff run as fork-join branches on the pool;
/// the recursion itself is pure, so forking cannot change the result.
fn dc_recursive(
    points: &[Point],
    ids: &[usize],
    d: usize,
    par: Option<(&ThreadPool, usize)>,
) -> Vec<usize> {
    if ids.len() <= 1 {
        return ids.to_vec();
    }
    if d == 1 {
        // Keep every point attaining the minimum value (ties cannot strictly
        // dominate each other).
        let min = ids
            .iter()
            .map(|&i| points[i].coord(0))
            .fold(f64::INFINITY, f64::min);
        return ids
            .iter()
            .copied()
            .filter(|&i| points[i].coord(0) == min)
            .collect();
    }
    if ids.len() <= SMALL_INPUT {
        let sub: Vec<Point> = ids.iter().map(|&i| truncate(points, i, d)).collect();
        return skyline_naive(&sub).into_iter().map(|k| ids[k]).collect();
    }
    if d == 2 {
        let sub: Vec<Point> = ids.iter().map(|&i| truncate(points, i, 2)).collect();
        return skyline_2d(&sub).into_iter().map(|k| ids[k]).collect();
    }

    // Sort by the last considered dimension and split at the median index.
    let mut order = ids.to_vec();
    order.sort_by(|&a, &b| {
        points[a]
            .coord(d - 1)
            .total_cmp(&points[b].coord(d - 1))
            .then_with(|| points[a].lex_cmp(&points[b]))
    });
    let mid = order.len() / 2;
    let (low, high) = order.split_at(mid);

    let (sl, sh) = match par {
        Some((pool, cutoff)) if ids.len() > cutoff => pool.join(
            || dc_recursive(points, low, d, par),
            || dc_recursive(points, high, d, par),
        ),
        _ => (
            dc_recursive(points, low, d, par),
            dc_recursive(points, high, d, par),
        ),
    };
    // Every point of `low` has coord(d-1) <= every point of `high`; after
    // deduplication a point of `sh` is dominated (in d dims) by a point of
    // `sl` exactly when it is weakly dominated on the first d-1 dimensions.
    let sh_survivors = filter_weakly_dominated(points, &sl, &sh, d - 1);

    let mut out = sl;
    out.extend(sh_survivors);
    out
}

/// Removes from `b_ids` every point weakly dominated (`≤` on every one of the
/// first `k` dimensions) by some point of `a_ids`.  Returns the survivors.
fn filter_weakly_dominated(
    points: &[Point],
    a_ids: &[usize],
    b_ids: &[usize],
    k: usize,
) -> Vec<usize> {
    if a_ids.is_empty() || b_ids.is_empty() {
        return b_ids.to_vec();
    }
    if k == 0 {
        // Weak dominance over zero dimensions always holds.
        return Vec::new();
    }
    if k == 1 {
        let min_a = a_ids
            .iter()
            .map(|&i| points[i].coord(0))
            .fold(f64::INFINITY, f64::min);
        return b_ids
            .iter()
            .copied()
            .filter(|&b| points[b].coord(0) < min_a)
            .collect();
    }
    if a_ids.len() * b_ids.len() <= SMALL_FILTER {
        return filter_brute_force(points, a_ids, b_ids, k);
    }
    if k == 2 {
        return filter_2d(points, a_ids, b_ids);
    }

    // Split on dimension k-1.
    let mut values: Vec<f64> = a_ids
        .iter()
        .chain(b_ids.iter())
        .map(|&i| points[i].coord(k - 1))
        .collect();
    values.sort_by(|a, b| a.total_cmp(b));
    let min_v = values[0];
    let max_v = values[values.len() - 1];
    if min_v == max_v {
        // The dimension is uninformative (all equal): weak dominance on it is
        // automatic; recurse with one fewer dimension.
        return filter_weakly_dominated(points, a_ids, b_ids, k - 1);
    }
    let mut split = values[values.len() / 2];
    // Guarantee progress: `lo` (<= split) and `hi` (> split) must both be
    // non-empty; fall back to the midpoint when the median equals the max.
    if split == max_v {
        split = 0.5 * (min_v + max_v);
    }

    let (a_lo, a_hi): (Vec<usize>, Vec<usize>) = a_ids
        .iter()
        .copied()
        .partition(|&i| points[i].coord(k - 1) <= split);
    let (b_lo, b_hi): (Vec<usize>, Vec<usize>) = b_ids
        .iter()
        .copied()
        .partition(|&i| points[i].coord(k - 1) <= split);

    // Low B points can only be dominated by low A points (high A points have
    // a strictly larger coord(k-1)).
    let b_lo_survivors = filter_weakly_dominated(points, &a_lo, &b_lo, k);
    // High B points: compare against high A points in full k dimensions, and
    // against low A points in k-1 dimensions (their coord(k-1) is already
    // strictly smaller).
    let b_hi_vs_hi = filter_weakly_dominated(points, &a_hi, &b_hi, k);
    let b_hi_survivors = filter_weakly_dominated(points, &a_lo, &b_hi_vs_hi, k - 1);

    let mut out = b_lo_survivors;
    out.extend(b_hi_survivors);
    out
}

/// Brute-force weak-dominance filter on the first `k` dimensions.
fn filter_brute_force(points: &[Point], a_ids: &[usize], b_ids: &[usize], k: usize) -> Vec<usize> {
    b_ids
        .iter()
        .copied()
        .filter(|&b| {
            !a_ids
                .iter()
                .any(|&a| (0..k).all(|j| points[a].coord(j) <= points[b].coord(j)))
        })
        .collect()
}

/// Sweep-based weak-dominance filter for k = 2: sort the A points by the
/// first coordinate and keep prefix minima of the second; a B point is
/// dominated iff the best A second-coordinate among `a[0] ≤ b[0]` is `≤ b[1]`.
fn filter_2d(points: &[Point], a_ids: &[usize], b_ids: &[usize]) -> Vec<usize> {
    let mut a_sorted: Vec<usize> = a_ids.to_vec();
    a_sorted.sort_by(|&x, &y| points[x].coord(0).total_cmp(&points[y].coord(0)));
    let xs: Vec<f64> = a_sorted.iter().map(|&i| points[i].coord(0)).collect();
    let mut prefix_min_y: Vec<f64> = Vec::with_capacity(a_sorted.len());
    let mut best = f64::INFINITY;
    for &i in &a_sorted {
        best = best.min(points[i].coord(1));
        prefix_min_y.push(best);
    }
    b_ids
        .iter()
        .copied()
        .filter(|&b| {
            let bx = points[b].coord(0);
            // Number of A points with a[0] <= b[0].
            let cnt = xs.partition_point(|&x| x <= bx);
            if cnt == 0 {
                return true;
            }
            prefix_min_y[cnt - 1] > points[b].coord(1)
        })
        .collect()
}

/// Projects point `i` onto its first `d` dimensions.
fn truncate(points: &[Point], i: usize, d: usize) -> Point {
    Point::new(points[i].coords()[..d].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::skyline_bnl;
    use rand::{Rng, SeedableRng};

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(skyline_dc(&[]), Vec::<usize>::new());
        assert_eq!(skyline_dc(&[p(&[1.0, 2.0, 3.0])]), vec![0]);
    }

    #[test]
    fn paper_running_example() {
        let pts = vec![
            p(&[1.0, 6.0]),
            p(&[4.0, 4.0]),
            p(&[6.0, 1.0]),
            p(&[8.0, 5.0]),
        ];
        assert_eq!(skyline_dc(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn duplicates_all_survive_or_all_fall() {
        let pts = vec![
            p(&[1.0, 1.0, 1.0]),
            p(&[1.0, 1.0, 1.0]),
            p(&[2.0, 2.0, 2.0]),
            p(&[2.0, 2.0, 2.0]),
            p(&[0.5, 3.0, 3.0]),
        ];
        let got = skyline_dc(&pts);
        assert_eq!(got, vec![0, 1, 4]);
    }

    #[test]
    fn one_dimensional_keeps_all_minima() {
        let pts = vec![p(&[2.0]), p(&[1.0]), p(&[1.0]), p(&[3.0])];
        assert_eq!(skyline_dc(&pts), vec![1, 2]);
    }

    #[test]
    fn matches_naive_small_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for d in 2..=6usize {
            for _ in 0..10 {
                let n = rng.gen_range(1..150);
                let pts: Vec<Point> = (0..n)
                    .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
                    .collect();
                assert_eq!(skyline_dc(&pts), skyline_naive(&pts), "d = {d}, n = {n}");
            }
        }
    }

    #[test]
    fn matches_bnl_large_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for d in [2usize, 3, 4, 5] {
            let pts: Vec<Point> = (0..3000)
                .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
                .collect();
            assert_eq!(skyline_dc(&pts), skyline_bnl(&pts), "d = {d}");
        }
    }

    #[test]
    fn matches_naive_on_discrete_grid_with_many_ties() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for d in 2..=4usize {
            for _ in 0..10 {
                let pts: Vec<Point> = (0..400)
                    .map(|_| Point::new((0..d).map(|_| rng.gen_range(0..5) as f64).collect()))
                    .collect();
                assert_eq!(skyline_dc(&pts), skyline_naive(&pts), "d = {d}");
            }
        }
    }

    #[test]
    fn anti_correlated_everything_survives() {
        let n = 500;
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                p(&[x, 1.0 - x, 0.5])
            })
            .collect();
        assert_eq!(skyline_dc(&pts).len(), n);
    }

    #[test]
    fn correlated_chain_keeps_single_point() {
        let pts: Vec<Point> = (0..500)
            .map(|i| p(&[i as f64, i as f64 + 1.0, i as f64 + 2.0]))
            .collect();
        assert_eq!(skyline_dc(&pts), vec![0]);
    }

    #[test]
    #[should_panic(expected = "same dimensionality")]
    fn rejects_mixed_dimensionality() {
        let _ = skyline_dc(&[p(&[1.0, 2.0]), p(&[1.0, 2.0, 3.0])]);
    }

    #[test]
    fn forked_recursion_is_identical_to_serial() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for d in [3usize, 4, 5] {
            let pts: Vec<Point> = (0..4000)
                .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
                .collect();
            let serial = skyline_dc(&pts);
            for threads in [1usize, 2, 4] {
                let pool = eclipse_exec::ThreadPool::with_threads(threads);
                // Low cutoff so the fork path is exercised at this input size.
                assert_eq!(
                    skyline_dc_impl(&pts, Some((&pool, 64))),
                    serial,
                    "d = {d}, threads = {threads}"
                );
                assert_eq!(skyline_dc_parallel(&pts, &pool), serial);
            }
        }
    }
}
