//! The convex-hull query from the origin's view.
//!
//! §II-C of the paper relates eclipse to the *convex hull query*: the points
//! that are the best (smallest weighted sum) under **some** linear scoring
//! function with non-negative weights.  Geometrically these are the vertices
//! of the lower-left staircase of the convex hull facing the origin — e.g. in
//! Figure 1 the convex hull query returns `{p1, p3}`, not the full hull
//! `{p1, p3, p4}`.
//!
//! Two engines are provided:
//!
//! * [`hull_query_2d`] — an exact O(n log n) monotone-chain construction of
//!   the lower-left hull for two dimensions;
//! * [`hull_query_lp`] — a dimension-agnostic membership test that solves one
//!   small linear program per point ("is there a convex weight vector making
//!   this point strictly best?") using [`eclipse_geom::lp`].

use eclipse_geom::lp::{Constraint, LinearProgram, LpOutcome};
use eclipse_geom::point::Point;

/// Returns the indices of the 2-D convex-hull-query points (origin's view),
/// i.e. the vertices of the lower-left convex chain, in ascending index
/// order.
///
/// # Panics
/// Panics if any point is not two-dimensional.
pub fn hull_query_2d(points: &[Point]) -> Vec<usize> {
    for p in points {
        assert_eq!(p.dim(), 2, "hull_query_2d requires two-dimensional points");
    }
    if points.is_empty() {
        return Vec::new();
    }
    // Sort by (x, y); deduplicate exact duplicates for the chain construction
    // but remember them: a duplicate of a hull vertex is also a best point
    // for the same weight vector only in the weak sense, so we follow the 1NN
    // semantics of the paper (strictly best) and keep just the vertex set —
    // duplicates of a vertex are included since they achieve the same score.
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .coord(0)
            .total_cmp(&points[b].coord(0))
            .then(points[a].coord(1).total_cmp(&points[b].coord(1)))
    });

    // Lower-left staircase: walk by increasing x keeping only points whose y
    // strictly decreases (otherwise some earlier point is at least as good on
    // both axes for every weight vector)…
    let mut candidates: Vec<usize> = Vec::new();
    let mut best_y = f64::INFINITY;
    for &i in &order {
        let y = points[i].coord(1);
        if y < best_y {
            candidates.push(i);
            best_y = y;
        }
    }
    // …then keep only the vertices of the lower convex chain of those
    // candidates (monotone-chain with a right-turn test).
    let mut chain: Vec<usize> = Vec::new();
    for &i in &candidates {
        while chain.len() >= 2 {
            let a = &points[chain[chain.len() - 2]];
            let b = &points[chain[chain.len() - 1]];
            let c = &points[i];
            // Cross product of (b - a) × (c - a); b is a vertex of the lower
            // hull only if a→b→c makes a counter-clockwise (left) turn, i.e.
            // b lies strictly below the segment a–c.  Clockwise or collinear
            // turns (cross ≤ 0) mean b is on or above the segment and is
            // never strictly best, so it is popped.
            let cross = (b.coord(0) - a.coord(0)) * (c.coord(1) - a.coord(1))
                - (b.coord(1) - a.coord(1)) * (c.coord(0) - a.coord(0));
            if cross <= 0.0 {
                chain.pop();
            } else {
                break;
            }
        }
        chain.push(i);
    }
    // Re-attach exact duplicates of chain vertices (they achieve the same
    // optimal score for the same weight vector).
    let mut out: Vec<usize> = Vec::new();
    for &v in &chain {
        for (i, p) in points.iter().enumerate() {
            if p.coords() == points[v].coords() {
                out.push(i);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Dimension-agnostic convex-hull-query membership by linear programming.
///
/// A point `p` is reported iff there exists a weight vector `w ≥ 0`,
/// `Σ w = 1`, such that `w·p ≤ w·q` for every other point `q`, with strict
/// inequality against every point not identical to `p` achievable
/// (`objective > 0`), or the point ties as a duplicate of such a point.
///
/// Implementation note: hull-query points are always skyline points, and a
/// point that is strictly best against every *skyline* point is strictly best
/// against every point (any non-skyline point is weakly worse than some
/// skyline point for every non-negative weight vector).  The LPs are therefore
/// restricted to the skyline, which keeps the cost at
/// `O(u · simplex(u))` instead of `O(n · simplex(n))`.
pub fn hull_query_lp(points: &[Point]) -> Vec<usize> {
    if points.is_empty() {
        return Vec::new();
    }
    let d = points[0].dim();
    assert!(
        points.iter().all(|p| p.dim() == d),
        "all points must share the same dimensionality"
    );
    let skyline = crate::dc::skyline_dc(points);
    let sky_points: Vec<Point> = skyline.iter().map(|&i| points[i].clone()).collect();
    skyline
        .iter()
        .enumerate()
        .filter(|&(local, _)| is_hull_query_point(&sky_points, local))
        .map(|(_, &original)| original)
        .collect()
}

/// LP membership test for a single point (see [`hull_query_lp`]).
pub fn is_hull_query_point(points: &[Point], idx: usize) -> bool {
    let d = points[idx].dim();
    // Variables: w_1 … w_d, t_plus, t_minus  (t = t_plus − t_minus is free).
    // maximize t  s.t.  w·(q − p) − t ≥ 0 for all q ≠ p (skipping duplicates),
    //                   Σ w = 1,  w ≥ 0.
    let mut objective = vec![0.0; d];
    objective.push(1.0);
    objective.push(-1.0);
    let mut lp = LinearProgram::maximize(objective);
    let mut has_distinct = false;
    for (q, other) in points.iter().enumerate() {
        if q == idx || other.coords() == points[idx].coords() {
            continue;
        }
        has_distinct = true;
        let mut coeffs: Vec<f64> = (0..d)
            .map(|j| other.coord(j) - points[idx].coord(j))
            .collect();
        coeffs.push(-1.0);
        coeffs.push(1.0);
        lp.add_constraint(Constraint::greater_eq(coeffs, 0.0));
    }
    if !has_distinct {
        // Only duplicates of itself (or a singleton dataset): trivially best.
        return true;
    }
    let mut sum_w = vec![1.0; d];
    sum_w.push(0.0);
    sum_w.push(0.0);
    lp.add_constraint(Constraint::equal(sum_w, 1.0));
    match lp.solve() {
        LpOutcome::Optimal { objective, .. } => objective > 1e-7,
        LpOutcome::Unbounded => true,
        LpOutcome::Infeasible => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn p(c: &[f64]) -> Point {
        Point::from_slice(c)
    }

    fn paper_points() -> Vec<Point> {
        vec![
            p(&[1.0, 6.0]),
            p(&[4.0, 4.0]),
            p(&[6.0, 1.0]),
            p(&[8.0, 5.0]),
        ]
    }

    #[test]
    fn paper_figure1_hull_query() {
        // §II-C: "in Figure 1, the convex hull query returns p1, p3 rather
        // than p1, p3, p4."
        assert_eq!(hull_query_2d(&paper_points()), vec![0, 2]);
        assert_eq!(hull_query_lp(&paper_points()), vec![0, 2]);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(hull_query_2d(&[]), Vec::<usize>::new());
        assert_eq!(hull_query_lp(&[]), Vec::<usize>::new());
        assert_eq!(hull_query_2d(&[p(&[3.0, 3.0])]), vec![0]);
        assert_eq!(hull_query_lp(&[p(&[3.0, 3.0])]), vec![0]);
    }

    #[test]
    fn collinear_interior_points_are_excluded() {
        // (2,2) lies on the segment (1,3)–(3,1): it is never *strictly* best.
        let pts = vec![p(&[1.0, 3.0]), p(&[2.0, 2.0]), p(&[3.0, 1.0])];
        assert_eq!(hull_query_2d(&pts), vec![0, 2]);
        assert_eq!(hull_query_lp(&pts), vec![0, 2]);
    }

    #[test]
    fn duplicates_of_a_vertex_are_included() {
        let pts = vec![
            p(&[1.0, 3.0]),
            p(&[1.0, 3.0]),
            p(&[3.0, 1.0]),
            p(&[4.0, 4.0]),
        ];
        let got2d = hull_query_2d(&pts);
        assert_eq!(got2d, vec![0, 1, 2]);
        assert_eq!(hull_query_lp(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn lp_and_2d_hull_agree_on_random_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..10 {
            let pts: Vec<Point> = (0..60)
                .map(|_| Point::new(vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]))
                .collect();
            assert_eq!(hull_query_2d(&pts), hull_query_lp(&pts));
        }
    }

    #[test]
    fn hull_query_is_subset_of_skyline() {
        use crate::bnl::skyline_bnl;
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        for d in [2usize, 3, 4] {
            let pts: Vec<Point> = (0..80)
                .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
                .collect();
            let hull = hull_query_lp(&pts);
            let sky: std::collections::HashSet<usize> = skyline_bnl(&pts).into_iter().collect();
            for h in hull {
                assert!(
                    sky.contains(&h),
                    "hull point {h} missing from skyline, d = {d}"
                );
            }
        }
    }

    #[test]
    fn three_dimensional_membership() {
        // The all-round compromise point (2,2,2) is inside the simplex spanned
        // by the three specialists, but strictly closer to the origin overall,
        // so it IS a hull-query point; pushing it out to (4,4,4) makes it an
        // interior (dominated-in-mixture) point.
        let specialists = vec![
            p(&[1.0, 5.0, 5.0]),
            p(&[5.0, 1.0, 5.0]),
            p(&[5.0, 5.0, 1.0]),
        ];
        let mut with_good_generalist = specialists.clone();
        with_good_generalist.push(p(&[2.0, 2.0, 2.0]));
        assert!(is_hull_query_point(&with_good_generalist, 3));
        let mut with_bad_generalist = specialists;
        with_bad_generalist.push(p(&[4.0, 4.0, 4.0]));
        assert!(!is_hull_query_point(&with_bad_generalist, 3));
    }
}
