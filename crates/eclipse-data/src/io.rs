//! Dataset and experiment-result I/O.
//!
//! A tiny, dependency-free CSV reader/writer for point datasets (one row per
//! point, one numeric column per attribute, optional header), plus a generic
//! row-oriented result writer the experiment harness uses to dump the tables
//! and figure series it reproduces.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use eclipse_geom::point::Point;

/// Writes a point dataset as CSV.  When `header` is provided its length must
/// match the dimensionality.
///
/// # Errors
/// Propagates I/O errors; returns `InvalidInput` when the header length does
/// not match the data dimensionality.
pub fn write_points_csv(
    path: &Path,
    points: &[Point],
    header: Option<&[&str]>,
) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    if let Some(names) = header {
        if let Some(first) = points.first() {
            if names.len() != first.dim() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "header length must match point dimensionality",
                ));
            }
        }
        writeln!(w, "{}", names.join(","))?;
    }
    for p in points {
        let row: Vec<String> = p.coords().iter().map(|c| format!("{c}")).collect();
        writeln!(w, "{}", row.join(","))?;
    }
    w.flush()
}

/// Reads a point dataset from CSV.  Lines that fail to parse entirely as
/// numbers (e.g. a header) are skipped; empty lines are ignored.
///
/// # Errors
/// Propagates I/O errors; returns `InvalidData` when rows have inconsistent
/// arity or no valid rows are found.
pub fn read_points_csv(path: &Path) -> std::io::Result<Vec<Point>> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut out: Vec<Point> = Vec::new();
    let mut dim: Option<usize> = None;
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let parsed: Option<Vec<f64>> = trimmed
            .split(',')
            .map(|cell| cell.trim().parse::<f64>().ok())
            .collect();
        let Some(values) = parsed else {
            continue; // header or malformed row
        };
        if values.is_empty() {
            continue;
        }
        match dim {
            None => dim = Some(values.len()),
            Some(d) if d != values.len() => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "inconsistent row arity: expected {d}, found {}",
                        values.len()
                    ),
                ))
            }
            _ => {}
        }
        out.push(Point::new(values));
    }
    if out.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "no numeric rows found",
        ));
    }
    Ok(out)
}

/// A generic table of experiment results: a header plus string rows, written
/// as CSV.  Used by the `experiments` binary to persist every reproduced
/// table/figure next to its console output.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResultTable {
    /// Column names.
    pub header: Vec<String>,
    /// Data rows (each must have `header.len()` cells).
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates an empty table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        ResultTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity does not match the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        let file = File::create(path)?;
        let mut w = BufWriter::new(file);
        writeln!(w, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(w, "{}", row.join(","))?;
        }
        w.flush()
    }

    /// Renders the table as an aligned, human-readable block (used for the
    /// console output of the experiment harness).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "eclipse_data_io_test_{}_{name}",
            std::process::id()
        ));
        p
    }

    #[test]
    fn points_round_trip_with_header() {
        let path = tmp("roundtrip.csv");
        let pts = vec![
            Point::new(vec![1.0, 6.0]),
            Point::new(vec![4.0, 4.0]),
            Point::new(vec![6.0, 1.0]),
        ];
        write_points_csv(&path, &pts, Some(&["distance", "price"])).unwrap();
        let back = read_points_csv(&path).unwrap();
        assert_eq!(back, pts);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn points_round_trip_without_header() {
        let path = tmp("noheader.csv");
        let pts = vec![Point::new(vec![0.5, 0.25, 0.125])];
        write_points_csv(&path, &pts, None).unwrap();
        assert_eq!(read_points_csv(&path).unwrap(), pts);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_arity_is_validated() {
        let path = tmp("badheader.csv");
        let pts = vec![Point::new(vec![1.0, 2.0])];
        let err = write_points_csv(&path, &pts, Some(&["only-one"])).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inconsistent_and_empty_files_are_rejected() {
        let path = tmp("ragged.csv");
        std::fs::write(&path, "1,2\n3,4,5\n").unwrap();
        let err = read_points_csv(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::write(&path, "just,a,header\n").unwrap();
        let err = read_points_csv(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(read_points_csv(Path::new("/nonexistent/eclipse.csv")).is_err());
    }

    #[test]
    fn result_table_render_and_csv() {
        let mut t = ResultTable::new(&["n", "time_ms"]);
        t.push_row(vec!["128".into(), "0.5".into()]);
        t.push_row(vec!["1024".into(), "3.25".into()]);
        let rendered = t.render();
        assert!(rendered.contains("time_ms"));
        assert!(rendered.contains("1024"));
        let path = tmp("table.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("n,time_ms"));
        assert!(content.contains("1024,3.25"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn result_table_rejects_ragged_rows() {
        let mut t = ResultTable::new(&["a", "b"]);
        t.push_row(vec!["1".into()]);
    }
}
