//! Synthetic workload generators.
//!
//! The paper's evaluation (§V-A) uses the three canonical synthetic
//! distributions of Börzsönyi, Kossmann and Stocker ("The Skyline Operator",
//! ICDE 2001):
//!
//! * **INDE** — independent: every attribute is uniform on `[0, 1)`,
//!   independently of the others;
//! * **CORR** — correlated: points that are good in one dimension tend to be
//!   good in the others (tiny skylines);
//! * **ANTI** — anti-correlated: points that are good in one dimension tend
//!   to be bad in the others (huge skylines).
//!
//! In addition this module provides the **clustered worst-case** generator
//! used for Figs. 13–14 (all skyline points crowd into the same region so
//! their dual lines pile into one quadrant, degrading the line quadtree) and
//! a small deterministic grid generator used by tests.
//!
//! All generators are deterministic given a seed.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use eclipse_geom::point::Point;

/// Data distribution of a synthetic workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Distribution {
    /// Independent uniform attributes.
    Independent,
    /// Correlated attributes (small skylines).
    Correlated,
    /// Anti-correlated attributes (large skylines).
    AntiCorrelated,
    /// Clustered worst-case for the line quadtree (Figs. 13–14).
    ClusteredWorstCase,
}

impl Distribution {
    /// Short name used by the experiment harness (matches the paper's plots).
    pub fn short_name(self) -> &'static str {
        match self {
            Distribution::Independent => "INDE",
            Distribution::Correlated => "CORR",
            Distribution::AntiCorrelated => "ANTI",
            Distribution::ClusteredWorstCase => "WORST",
        }
    }
}

/// Parameters of a synthetic dataset.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of points `n`.
    pub n: usize,
    /// Dimensionality `d ≥ 2`.
    pub d: usize,
    /// Distribution family.
    pub distribution: Distribution,
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
}

impl SyntheticConfig {
    /// Convenience constructor.
    pub fn new(n: usize, d: usize, distribution: Distribution, seed: u64) -> Self {
        SyntheticConfig {
            n,
            d,
            distribution,
            seed,
        }
    }

    /// Generates the dataset.
    ///
    /// # Panics
    /// Panics if `d < 2`.
    pub fn generate(&self) -> Vec<Point> {
        assert!(self.d >= 2, "synthetic datasets require d >= 2");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        match self.distribution {
            Distribution::Independent => independent(self.n, self.d, &mut rng),
            Distribution::Correlated => correlated(self.n, self.d, &mut rng),
            Distribution::AntiCorrelated => anti_correlated(self.n, self.d, &mut rng),
            Distribution::ClusteredWorstCase => clustered_worst_case(self.n, self.d, &mut rng),
        }
    }
}

/// Independent uniform attributes on `[0, 1)`.
pub fn independent(n: usize, d: usize, rng: &mut impl Rng) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
        .collect()
}

/// Correlated attributes: a latent "overall quality" per point plus small
/// independent jitter, following the standard construction (values clamped to
/// `[0, 1]`).
pub fn correlated(n: usize, d: usize, rng: &mut impl Rng) -> Vec<Point> {
    (0..n)
        .map(|_| {
            let base: f64 = sample_peaked(rng);
            Point::new(
                (0..d)
                    .map(|_| {
                        let jitter = rng.gen_range(-0.05..0.05);
                        (base + jitter).clamp(0.0, 1.0)
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Anti-correlated attributes: points live close to the hyperplane
/// `Σ x_i = d/2`, so an improvement in one attribute is paid for in the
/// others.
pub fn anti_correlated(n: usize, d: usize, rng: &mut impl Rng) -> Vec<Point> {
    (0..n)
        .map(|_| {
            // Sample a point on the simplex-ish band around the constant-sum
            // hyperplane, then add a little jitter.
            let target_sum = d as f64 / 2.0 + rng.gen_range(-0.1..0.1) * d as f64 / 4.0;
            let mut raw: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..1.0)).collect();
            let sum: f64 = raw.iter().sum();
            if sum > 0.0 {
                let scale = target_sum / sum;
                for v in raw.iter_mut() {
                    *v = (*v * scale).clamp(0.0, 1.0);
                }
            }
            Point::new(raw)
        })
        .collect()
}

/// Clustered worst case for the line quadtree: every point sits on (or very
/// near) a common anti-correlated line segment confined to a tiny region of
/// space, so all points are skyline points and all dual lines crowd together.
pub fn clustered_worst_case(n: usize, d: usize, rng: &mut impl Rng) -> Vec<Point> {
    (0..n)
        .map(|i| {
            // Walk a tiny anti-correlated staircase near the origin corner.
            let t = (i as f64 + rng.gen_range(0.0..0.5)) / n as f64;
            let step = 1e-3;
            let mut coords = Vec::with_capacity(d);
            // First coordinate increases slowly, the rest decrease so that no
            // point dominates another; everything stays within a small cell.
            coords.push(0.5 + t * step * n as f64 / 16.0);
            for j in 1..d {
                let phase = (j as f64) * 0.01;
                coords.push(
                    0.5 + phase - t * step * n as f64 / 16.0 + rng.gen_range(0.0..step / 4.0),
                );
            }
            Point::new(coords)
        })
        .collect()
}

/// A deterministic `side^d` grid on `[0, 1]^d`, handy for tie-heavy tests.
pub fn grid(side: usize, d: usize) -> Vec<Point> {
    assert!(d >= 1 && side >= 1);
    let mut out = Vec::with_capacity(side.pow(d as u32));
    let mut idx = vec![0usize; d];
    loop {
        out.push(Point::new(
            idx.iter()
                .map(|&i| i as f64 / (side.max(2) - 1).max(1) as f64)
                .collect(),
        ));
        // Increment the mixed-radix counter.
        let mut k = 0;
        loop {
            idx[k] += 1;
            if idx[k] < side {
                break;
            }
            idx[k] = 0;
            k += 1;
            if k == d {
                return out;
            }
        }
    }
}

/// Samples a value in `[0, 1)` biased towards the middle (sum of two
/// uniforms), used as the latent quality of correlated points.
fn sample_peaked(rng: &mut impl Rng) -> f64 {
    0.5 * (rng.gen_range(0.0..1.0) + rng.gen_range(0.0..1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_skyline::bnl::skyline_bnl;

    fn config(dist: Distribution) -> SyntheticConfig {
        SyntheticConfig::new(1 << 10, 3, dist, 42)
    }

    #[test]
    fn generators_produce_requested_shape() {
        for dist in [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::AntiCorrelated,
            Distribution::ClusteredWorstCase,
        ] {
            let pts = config(dist).generate();
            assert_eq!(pts.len(), 1 << 10, "{dist:?}");
            assert!(pts.iter().all(|p| p.dim() == 3), "{dist:?}");
            assert!(
                pts.iter().all(|p| p.coords().iter().all(|c| c.is_finite())),
                "{dist:?}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = config(Distribution::Independent).generate();
        let b = config(Distribution::Independent).generate();
        assert_eq!(a, b);
        let c = SyntheticConfig::new(1 << 10, 3, Distribution::Independent, 43).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn skyline_sizes_follow_the_expected_ordering() {
        // CORR has (much) smaller skylines than INDE, which has smaller
        // skylines than ANTI — the property the paper's Figure 10 relies on.
        let corr = skyline_bnl(&config(Distribution::Correlated).generate()).len();
        let inde = skyline_bnl(&config(Distribution::Independent).generate()).len();
        let anti = skyline_bnl(&config(Distribution::AntiCorrelated).generate()).len();
        assert!(corr < inde, "corr = {corr}, inde = {inde}");
        assert!(inde < anti, "inde = {inde}, anti = {anti}");
    }

    #[test]
    fn worst_case_data_is_mostly_skyline_and_tightly_clustered() {
        let pts = SyntheticConfig::new(256, 3, Distribution::ClusteredWorstCase, 7).generate();
        let sky = skyline_bnl(&pts);
        assert!(
            sky.len() > pts.len() / 2,
            "worst case should be skyline-heavy, got {}",
            sky.len()
        );
        let bbox = eclipse_geom::point::BoundingBox::enclosing(&pts).unwrap();
        for j in 0..3 {
            assert!(bbox.extent(j) < 0.2, "axis {j} extent {}", bbox.extent(j));
        }
    }

    #[test]
    fn anti_correlated_points_have_near_constant_sum() {
        let pts = config(Distribution::AntiCorrelated).generate();
        let sums: Vec<f64> = pts.iter().map(|p| p.coords().iter().sum()).collect();
        let mean = sums.iter().sum::<f64>() / sums.len() as f64;
        let var = sums.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / sums.len() as f64;
        // Independent 3-D data would have sum variance 3/12 = 0.25; the
        // anti-correlated generator should be far tighter.
        assert!(var < 0.05, "variance {var}");
    }

    #[test]
    fn correlated_points_have_correlated_attributes() {
        let pts = config(Distribution::Correlated).generate();
        let xs: Vec<f64> = pts.iter().map(|p| p.coord(0)).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.coord(1)).collect();
        let corr = crate::stats::pearson_correlation(&xs, &ys);
        assert!(corr > 0.8, "correlation {corr}");
    }

    #[test]
    fn grid_generator_counts() {
        let g = grid(3, 2);
        assert_eq!(g.len(), 9);
        assert!(g.contains(&Point::new(vec![0.0, 0.0])));
        assert!(g.contains(&Point::new(vec![1.0, 1.0])));
        let g1 = grid(4, 1);
        assert_eq!(g1.len(), 4);
    }

    #[test]
    fn short_names_match_paper_labels() {
        assert_eq!(Distribution::Independent.short_name(), "INDE");
        assert_eq!(Distribution::Correlated.short_name(), "CORR");
        assert_eq!(Distribution::AntiCorrelated.short_name(), "ANTI");
        assert_eq!(Distribution::ClusteredWorstCase.short_name(), "WORST");
    }
}
