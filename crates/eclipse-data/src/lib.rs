//! Workload generators and dataset utilities for the eclipse reproduction.
//!
//! * [`synthetic`] — the independent (INDE), correlated (CORR) and
//!   anti-correlated (ANTI) generators of Börzsönyi et al. used throughout
//!   the paper's evaluation, plus the clustered worst-case generator used for
//!   Figs. 13–14,
//! * [`nba`] — a synthetic NBA-like league standing in for the real
//!   2384-player dataset (see DESIGN.md §4 for the substitution rationale),
//! * [`io`] — CSV reading/writing of datasets and experiment results,
//! * [`stats`] — summary statistics (mean, percentiles, correlation),
//! * [`survey`] — the user-study simulator regenerating Table V.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod io;
pub mod nba;
pub mod stats;
pub mod survey;
pub mod synthetic;

pub use nba::{nba_dataset, NbaPlayer};
pub use synthetic::{Distribution, SyntheticConfig};
