//! User-study simulator (Table V).
//!
//! The paper's case study asked 61 respondents (38 department members, 23 of
//! 30 recruited MTurk workers by the published total) to pick their preferred
//! hotel-reservation interface among five systems: skyline, top-k,
//! eclipse-ratio, eclipse-weight and eclipse-category.  Humans are not
//! available to a reproduction, so this module replaces them with an explicit
//! utility model (see DESIGN.md §4): each simulated respondent weighs three
//! concerns — how much parameter-specification effort a system demands, how
//! large/noisy its result set is, and how much control it still offers — and
//! picks the system with the highest noisy utility.  The concern weights are
//! drawn per respondent, so the output is a distribution over systems rather
//! than a hard-coded answer; with the default population the qualitative
//! outcome of the paper (eclipse-category first, skyline second, the
//! remaining three clustered behind) emerges from the model.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The five systems offered to respondents in the paper's questionnaire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SurveySystem {
    /// Plain skyline: no parameters, potentially many results.
    Skyline,
    /// Top-k with an exact weight vector.
    TopK,
    /// Eclipse with an explicit ratio range.
    EclipseRatio,
    /// Eclipse with an absolute weight range.
    EclipseWeight,
    /// Eclipse with categorical importance levels.
    EclipseCategory,
}

impl SurveySystem {
    /// All systems in the paper's column order (Table V).
    pub fn all() -> [SurveySystem; 5] {
        [
            SurveySystem::Skyline,
            SurveySystem::TopK,
            SurveySystem::EclipseRatio,
            SurveySystem::EclipseWeight,
            SurveySystem::EclipseCategory,
        ]
    }

    /// Label used when printing Table V.
    pub fn label(self) -> &'static str {
        match self {
            SurveySystem::Skyline => "skyline",
            SurveySystem::TopK => "top-k",
            SurveySystem::EclipseRatio => "eclipse-ratio",
            SurveySystem::EclipseWeight => "eclipse-weight",
            SurveySystem::EclipseCategory => "eclipse-category",
        }
    }

    /// Per-system characteristics on three axes, each in `[0, 1]`:
    /// (specification effort, result-set burden, control offered).
    fn characteristics(self) -> (f64, f64, f64) {
        match self {
            // No parameters at all, but the user has to wade through many results.
            SurveySystem::Skyline => (0.05, 0.8, 0.35),
            // Exact numeric weights are hard to come up with, but give total
            // control over a tiny result.
            SurveySystem::TopK => (0.75, 0.1, 0.9),
            // Numeric ranges are still fairly technical.
            SurveySystem::EclipseRatio => (0.7, 0.3, 0.85),
            // Weight ranges summing to one: slightly more intuitive than ratios.
            SurveySystem::EclipseWeight => (0.62, 0.3, 0.85),
            // Pick a category per attribute: very low effort, moderate result
            // size, good control.
            SurveySystem::EclipseCategory => (0.15, 0.35, 0.8),
        }
    }
}

/// Configuration of the simulated respondent population.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SurveyConfig {
    /// Number of respondents (61 in the paper).
    pub respondents: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SurveyConfig {
    fn default() -> Self {
        SurveyConfig {
            respondents: 61,
            seed: 2021,
        }
    }
}

/// The outcome of the simulated study: one count per system.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SurveyOutcome {
    /// `(system, number of respondents preferring it)` in Table V order.
    pub counts: Vec<(SurveySystem, usize)>,
}

impl SurveyOutcome {
    /// Count for one system.
    pub fn count(&self, system: SurveySystem) -> usize {
        self.counts
            .iter()
            .find(|(s, _)| *s == system)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Total respondents.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|(_, c)| c).sum()
    }

    /// The system with the most votes.
    pub fn winner(&self) -> SurveySystem {
        self.counts
            .iter()
            .max_by_key(|(_, c)| *c)
            .map(|(s, _)| *s)
            .expect("outcome always has five systems")
    }
}

/// Runs the simulated study.
pub fn run_survey(config: SurveyConfig) -> SurveyOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut counts = vec![0usize; 5];
    for _ in 0..config.respondents {
        // Per-respondent concern weights: how much they dislike specification
        // effort, how much they dislike large result sets, how much they value
        // retained control.  Dirichlet-ish via normalized gammas (approximated
        // with squared uniforms for simplicity).
        let a: f64 = rng.gen_range(0.4..1.6); // aversion to effort
        let b: f64 = rng.gen_range(0.3..1.4); // aversion to result overload
        let c: f64 = rng.gen_range(0.2..1.0); // appetite for control
        let chosen = SurveySystem::all()
            .into_iter()
            .enumerate()
            .map(|(i, sys)| {
                let (effort, burden, control) = sys.characteristics();
                let noise: f64 = rng.gen_range(-0.3..0.3);
                let utility = -a * effort - b * burden + c * control + noise;
                (i, utility)
            })
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .map(|(i, _)| i)
            .expect("five systems");
        counts[chosen] += 1;
    }
    SurveyOutcome {
        counts: SurveySystem::all().into_iter().zip(counts).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_population() {
        let cfg = SurveyConfig::default();
        assert_eq!(cfg.respondents, 61);
        let outcome = run_survey(cfg);
        assert_eq!(outcome.total(), 61);
        assert_eq!(outcome.counts.len(), 5);
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let a = run_survey(SurveyConfig::default());
        let b = run_survey(SurveyConfig::default());
        assert_eq!(a, b);
        let c = run_survey(SurveyConfig {
            seed: 7,
            ..SurveyConfig::default()
        });
        assert_eq!(c.total(), 61);
    }

    #[test]
    fn category_system_wins_with_default_population() {
        // The qualitative outcome of Table V: eclipse-category attracts the
        // most respondents by a clear margin, and the answers are not
        // concentrated on a single system.
        let outcome = run_survey(SurveyConfig::default());
        assert_eq!(outcome.winner(), SurveySystem::EclipseCategory);
        let category = outcome.count(SurveySystem::EclipseCategory);
        for sys in [
            SurveySystem::Skyline,
            SurveySystem::TopK,
            SurveySystem::EclipseRatio,
            SurveySystem::EclipseWeight,
        ] {
            assert!(outcome.count(sys) < category, "{sys:?}");
        }
        let systems_with_votes = outcome.counts.iter().filter(|(_, c)| *c > 0).count();
        assert!(
            systems_with_votes >= 3,
            "expected a spread of preferences, got {:?}",
            outcome.counts
        );
        assert!(
            category < outcome.total(),
            "category must not sweep the entire study"
        );
    }

    #[test]
    fn winner_is_robust_across_seeds() {
        let mut category_wins = 0;
        for seed in 0..20u64 {
            let outcome = run_survey(SurveyConfig {
                respondents: 61,
                seed,
            });
            if outcome.winner() == SurveySystem::EclipseCategory {
                category_wins += 1;
            }
        }
        assert!(
            category_wins >= 16,
            "eclipse-category should win for most populations, won {category_wins}/20"
        );
    }

    #[test]
    fn labels_and_accessors() {
        assert_eq!(SurveySystem::EclipseCategory.label(), "eclipse-category");
        assert_eq!(SurveySystem::all().len(), 5);
        let outcome = run_survey(SurveyConfig {
            respondents: 10,
            seed: 1,
        });
        assert_eq!(outcome.total(), 10);
    }
}
