//! Summary statistics used by the generators, the experiment harness and the
//! tests.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for slices with fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson correlation coefficient of two equal-length samples; 0 when either
/// sample is constant or empty.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(
        xs.len(),
        ys.len(),
        "correlation requires equal-length samples"
    );
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// The `q`-th percentile (0 ≤ q ≤ 100) using nearest-rank interpolation;
/// `None` for an empty slice.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q = q.clamp(0.0, 100.0);
    let rank = (q / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// Minimum and maximum of a slice; `None` for an empty slice.
pub fn min_max(xs: &[f64]) -> Option<(f64, f64)> {
    let mut it = xs.iter();
    let first = *it.next()?;
    let mut lo = first;
    let mut hi = first;
    for &x in it {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Some((lo, hi))
}

/// A compact textual summary (`mean ± std [min, max]`), used by the harness
/// when printing experiment rows.
pub fn summary(xs: &[f64]) -> String {
    match min_max(xs) {
        None => "n/a".to_string(),
        Some((lo, hi)) => format!(
            "{:.4} ± {:.4} [{:.4}, {:.4}]",
            mean(xs),
            std_dev(xs),
            lo,
            hi
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_extremes() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson_correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let ys_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson_correlation(&xs, &ys_neg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson_correlation(&xs, &[1.0, 1.0, 1.0, 1.0]), 0.0);
        assert_eq!(pearson_correlation(&[], &[]), 0.0);
    }

    #[test]
    fn percentiles_and_median() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(5.0));
        assert_eq!(median(&xs), Some(3.0));
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
        assert_eq!(median(&[]), None);
        // Out-of-range quantiles are clamped.
        assert_eq!(percentile(&xs, 150.0), Some(5.0));
    }

    #[test]
    fn min_max_and_summary() {
        assert_eq!(min_max(&[3.0, 1.0, 2.0]), Some((1.0, 3.0)));
        assert_eq!(min_max(&[]), None);
        assert_eq!(summary(&[]), "n/a");
        let s = summary(&[1.0, 3.0]);
        assert!(s.contains("2.0000"));
        assert!(s.contains("[1.0000, 3.0000]"));
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn correlation_rejects_mismatched_lengths() {
        let _ = pearson_correlation(&[1.0], &[1.0, 2.0]);
    }
}
