//! A synthetic NBA-like dataset.
//!
//! The paper evaluates on a real dataset of 2384 NBA players with five
//! career-total attributes — Points, Rebounds, Assists, Steals and Blocks —
//! scraped from stats.nba.com in 2015.  That file is not redistributable and
//! is unavailable offline, so this module generates a synthetic league whose
//! statistical *shape* matches what the experiments actually depend on (see
//! DESIGN.md §4):
//!
//! * heavy-tailed, non-negative career totals (log-normal-ish marginals: many
//!   journeymen, a few superstars);
//! * strong positive correlation across attributes driven by a shared latent
//!   "career length × minutes played" factor (long careers inflate every
//!   counter), with role-archetype variation on top (big men block and
//!   rebound, guards assist and steal);
//! * a skyline/eclipse cardinality in the same ballpark as mildly correlated
//!   real data — which is what determines relative algorithm performance.
//!
//! Because the eclipse operator prefers *small* attribute values (distance to
//! the query point at the origin), [`nba_dataset`] returns **negated-rank
//! style "cost" coordinates**: `max_value − value` per attribute, so that
//! better players are closer to the origin, mirroring how the paper feeds
//! "bigger is better" stats to a minimising operator.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use eclipse_geom::point::Point;

/// Number of players in the paper's dataset (and in the synthetic stand-in).
pub const NBA_PLAYER_COUNT: usize = 2384;

/// The five performance attributes of the paper, in order.
pub const NBA_ATTRIBUTES: [&str; 5] = ["PTS", "REB", "AST", "STL", "BLK"];

/// One synthetic player with raw (bigger-is-better) career totals.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NbaPlayer {
    /// Synthetic display name, e.g. `"Player 0042"`.
    pub name: String,
    /// Career points.
    pub points: f64,
    /// Career rebounds.
    pub rebounds: f64,
    /// Career assists.
    pub assists: f64,
    /// Career steals.
    pub steals: f64,
    /// Career blocks.
    pub blocks: f64,
}

impl NbaPlayer {
    /// The raw attribute vector `[PTS, REB, AST, STL, BLK]`.
    pub fn raw(&self) -> [f64; 5] {
        [
            self.points,
            self.rebounds,
            self.assists,
            self.steals,
            self.blocks,
        ]
    }
}

/// Player archetypes controlling how the shared career factor is distributed
/// across attributes.
#[derive(Clone, Copy)]
struct Archetype {
    weight: f64,
    profile: [f64; 5], // relative emphasis on PTS, REB, AST, STL, BLK
}

const ARCHETYPES: [Archetype; 4] = [
    // Scoring guards: points + assists + steals.
    Archetype {
        weight: 0.35,
        profile: [1.0, 0.35, 0.9, 0.8, 0.1],
    },
    // Wings: balanced.
    Archetype {
        weight: 0.3,
        profile: [0.9, 0.6, 0.5, 0.6, 0.3],
    },
    // Big men: rebounds + blocks.
    Archetype {
        weight: 0.25,
        profile: [0.8, 1.0, 0.25, 0.3, 1.0],
    },
    // Role players: a bit of everything, lower usage.
    Archetype {
        weight: 0.1,
        profile: [0.5, 0.5, 0.5, 0.5, 0.4],
    },
];

/// Generates the full synthetic league of [`NBA_PLAYER_COUNT`] players.
pub fn generate_players(seed: u64) -> Vec<NbaPlayer> {
    generate_players_with_count(NBA_PLAYER_COUNT, seed)
}

/// Generates a synthetic league with an explicit player count (used by the
/// scaling experiments that subsample the NBA dataset).
pub fn generate_players_with_count(count: usize, seed: u64) -> Vec<NbaPlayer> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            // Latent career volume: log-normal-ish (many short careers, a few
            // very long ones), expressed in "games × usage" pseudo-units.
            let z: f64 = standard_normal(&mut rng);
            let career = (6.0 + 1.1 * z).exp().clamp(30.0, 60_000.0);
            let archetype = pick_archetype(&mut rng);
            // Per-attribute per-career rates with noise.
            let noise = |rng: &mut ChaCha8Rng| 0.6 + 0.8 * rng.gen::<f64>();
            let pts = career * 0.55 * archetype.profile[0] * noise(&mut rng);
            let reb = career * 0.25 * archetype.profile[1] * noise(&mut rng);
            let ast = career * 0.15 * archetype.profile[2] * noise(&mut rng);
            let stl = career * 0.045 * archetype.profile[3] * noise(&mut rng);
            let blk = career * 0.035 * archetype.profile[4] * noise(&mut rng);
            NbaPlayer {
                name: format!("Player {i:04}"),
                points: pts.round(),
                rebounds: reb.round(),
                assists: ast.round(),
                steals: stl.round(),
                blocks: blk.round(),
            }
        })
        .collect()
}

/// The synthetic NBA dataset as minimisation-ready points.
///
/// Each player becomes a point whose `j`-th coordinate is
/// `max_j − value_j` (so the best player on an attribute sits at 0), keeping
/// the first `d` of the five attributes.  `d` must be between 2 and 5 — the
/// paper's Figure 11 varies exactly this.
///
/// # Panics
/// Panics if `d` is outside `2..=5` or `count == 0`.
pub fn nba_dataset(count: usize, d: usize, seed: u64) -> Vec<Point> {
    assert!(
        (2..=5).contains(&d),
        "the NBA dataset has 5 attributes; d must be in 2..=5"
    );
    assert!(count > 0, "count must be positive");
    let players = generate_players_with_count(count, seed);
    points_from_players(&players, d)
}

/// Converts raw players into minimisation-ready points over the first `d`
/// attributes (`max − value` per attribute).
pub fn points_from_players(players: &[NbaPlayer], d: usize) -> Vec<Point> {
    assert!((2..=5).contains(&d), "d must be in 2..=5");
    let mut maxima = [0.0f64; 5];
    for p in players {
        for (j, v) in p.raw().iter().enumerate() {
            maxima[j] = maxima[j].max(*v);
        }
    }
    players
        .iter()
        .map(|p| {
            let raw = p.raw();
            Point::new((0..d).map(|j| maxima[j] - raw[j]).collect())
        })
        .collect()
}

fn pick_archetype(rng: &mut ChaCha8Rng) -> Archetype {
    let total: f64 = ARCHETYPES.iter().map(|a| a.weight).sum();
    let mut roll = rng.gen_range(0.0..total);
    for a in ARCHETYPES {
        if roll < a.weight {
            return a;
        }
        roll -= a.weight;
    }
    ARCHETYPES[ARCHETYPES.len() - 1]
}

/// Box–Muller standard normal sample.
fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::pearson_correlation;
    use eclipse_skyline::bnl::skyline_bnl;

    #[test]
    fn league_has_expected_size_and_positivity() {
        let players = generate_players(1);
        assert_eq!(players.len(), NBA_PLAYER_COUNT);
        for p in &players {
            for v in p.raw() {
                assert!(v >= 0.0 && v.is_finite());
            }
        }
        assert_eq!(players[7].name, "Player 0007");
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate_players(5), generate_players(5));
        assert_ne!(generate_players(5), generate_players(6));
    }

    #[test]
    fn attributes_are_positively_correlated() {
        let players = generate_players(2);
        let pts: Vec<f64> = players.iter().map(|p| p.points).collect();
        let reb: Vec<f64> = players.iter().map(|p| p.rebounds).collect();
        let ast: Vec<f64> = players.iter().map(|p| p.assists).collect();
        assert!(pearson_correlation(&pts, &reb) > 0.4);
        assert!(pearson_correlation(&pts, &ast) > 0.4);
    }

    #[test]
    fn totals_are_heavy_tailed() {
        let players = generate_players(3);
        let pts: Vec<f64> = players.iter().map(|p| p.points).collect();
        let mean = crate::stats::mean(&pts);
        let med = crate::stats::median(&pts).unwrap();
        // Right-skew: the mean sits well above the median.
        assert!(mean > 1.2 * med, "mean {mean}, median {med}");
        let max = pts.iter().cloned().fold(0.0, f64::max);
        assert!(max > 8.0 * mean, "max {max}, mean {mean}");
    }

    #[test]
    fn dataset_points_are_minimisation_ready() {
        let pts = nba_dataset(500, 3, 9);
        assert_eq!(pts.len(), 500);
        assert!(pts.iter().all(|p| p.dim() == 3));
        // All coordinates non-negative, and some player attains 0 on each axis
        // (the per-attribute maximum).
        for j in 0..3 {
            assert!(pts.iter().all(|p| p.coord(j) >= 0.0));
            assert!(pts.iter().any(|p| p.coord(j) == 0.0));
        }
    }

    #[test]
    fn skyline_is_small_relative_to_league_size() {
        // Positively correlated data keeps the skyline small — the property
        // the paper's NBA experiments exhibit (their eclipse results have a
        // handful of famous players).
        let pts = nba_dataset(1000, 3, 4);
        let sky = skyline_bnl(&pts);
        assert!(
            sky.len() < 100,
            "NBA-like skyline should be small, got {}",
            sky.len()
        );
        assert!(!sky.is_empty());
    }

    #[test]
    fn dimension_bounds_are_enforced() {
        let players = generate_players_with_count(10, 0);
        assert_eq!(points_from_players(&players, 5).len(), 10);
        let r = std::panic::catch_unwind(|| nba_dataset(10, 6, 0));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| nba_dataset(10, 1, 0));
        assert!(r.is_err());
    }
}
