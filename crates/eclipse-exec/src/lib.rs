//! `eclipse-exec` — the parallel execution substrate of the eclipse
//! workspace: a std-only scoped work-stealing thread pool.
//!
//! The TRAN algorithm of the paper reduces an eclipse query to a skyline
//! computation whose backends (BNL / SFS / divide-and-conquer) are
//! embarrassingly parallel.  This crate supplies the runtime those parallel
//! backends share — with **no crates.io dependencies and no `unsafe`**:
//!
//! * [`ThreadPool`] — the pool: a sizing policy (builder, `ECLIPSE_THREADS`,
//!   hardware count) plus a fork budget, shared via `Arc`;
//! * [`ThreadPool::scope`] — scoped task execution over per-worker
//!   work-stealing deques; tasks may borrow from the caller's stack;
//! * [`ThreadPool::par_map`] / [`ThreadPool::par_chunks`] — chunked
//!   order-preserving data parallelism;
//! * [`ThreadPool::join`] — budgeted fork-join for recursive
//!   divide-and-conquer;
//! * panic propagation everywhere: a panic inside a task or branch is
//!   re-raised on the calling thread, exactly like serial code;
//! * [`Dispatcher`] — the complementary *persistent* substrate: long-lived
//!   workers draining a FIFO queue of `'static` jobs, used by the
//!   eclipse-serve event loop to execute requests off the socket thread and
//!   notify completion back through a captured completion queue.  Jobs that
//!   panic are caught and counted; the workers survive.
//!
//! Sizing: [`ThreadPool::new`] honours the `ECLIPSE_THREADS` environment
//! variable (a positive integer) and otherwise uses the hardware parallelism;
//! [`ThreadPoolBuilder::num_threads`] pins the count programmatically.  A
//! 1-thread pool runs everything inline, so callers need no serial special
//! case.
//!
//! # Example
//!
//! ```
//! use eclipse_exec::ThreadPool;
//!
//! let pool = ThreadPool::with_threads(4);
//!
//! // Chunked data parallelism, order preserving.
//! let squares = pool.par_map(&[1, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//!
//! // Budgeted fork-join for divide-and-conquer.
//! fn sum(pool: &ThreadPool, xs: &[u64]) -> u64 {
//!     if xs.len() <= 2 {
//!         return xs.iter().sum();
//!     }
//!     let (lo, hi) = xs.split_at(xs.len() / 2);
//!     let (a, b) = pool.join(|| sum(pool, lo), || sum(pool, hi));
//!     a + b
//! }
//! assert_eq!(sum(&pool, &[1, 2, 3, 4, 5, 6]), 21);
//!
//! // Scoped tasks may borrow from the stack.
//! let data = vec![10, 20, 30];
//! let total = std::sync::atomic::AtomicU64::new(0);
//! pool.scope(|s| {
//!     for &x in &data {
//!         let total = &total;
//!         s.spawn(move || {
//!             total.fetch_add(x, std::sync::atomic::Ordering::Relaxed);
//!         });
//!     }
//! });
//! assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 60);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod dispatch;
mod pool;
mod scope;

pub use dispatch::Dispatcher;
pub use pool::{default_threads, ThreadPool, ThreadPoolBuilder, THREADS_ENV};
pub use scope::Scope;

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    use super::*;

    #[test]
    fn builder_and_env_sizing() {
        assert_eq!(ThreadPool::with_threads(0).threads(), 1);
        assert_eq!(ThreadPool::with_threads(3).threads(), 3);
        assert_eq!(ThreadPoolBuilder::new().num_threads(2).build().threads(), 2);
        assert!(ThreadPool::new().threads() >= 1);
        assert!(Arc::ptr_eq(&ThreadPool::global(), &ThreadPool::global()));
        // The env parser: positive integers only, everything else falls back.
        assert_eq!(pool::parse_threads(Some("4")), Some(4));
        assert_eq!(pool::parse_threads(Some(" 8 ")), Some(8));
        assert_eq!(pool::parse_threads(Some("0")), None);
        assert_eq!(pool::parse_threads(Some("-2")), None);
        assert_eq!(pool::parse_threads(Some("many")), None);
        assert_eq!(pool::parse_threads(Some("")), None);
        assert_eq!(pool::parse_threads(None), None);
    }

    #[test]
    fn par_map_matches_serial_at_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::with_threads(threads);
            assert_eq!(pool.par_map(&items, |&x| x * 3 + 1), expected, "{threads}");
        }
    }

    #[test]
    fn par_map_empty_and_tiny() {
        let pool = ThreadPool::with_threads(4);
        assert_eq!(pool.par_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(pool.par_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_chunks_reports_offsets_in_order() {
        let items: Vec<usize> = (0..103).collect();
        for threads in [1, 4] {
            let pool = ThreadPool::with_threads(threads);
            let chunks = pool.par_chunks(&items, 10, |offset, chunk| (offset, chunk.len()));
            assert_eq!(chunks.len(), 11);
            for (i, &(offset, len)) in chunks.iter().enumerate() {
                assert_eq!(offset, i * 10);
                assert_eq!(len, if i == 10 { 3 } else { 10 });
            }
        }
    }

    #[test]
    #[should_panic(expected = "chunk length must be positive")]
    fn par_chunks_rejects_zero_chunks() {
        let _ = ThreadPool::with_threads(2).par_chunks(&[1], 0, |_, c| c.len());
    }

    #[test]
    fn scope_runs_every_spawned_task() {
        let pool = ThreadPool::with_threads(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..500 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn join_computes_both_sides_recursively() {
        fn fib(pool: &ThreadPool, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
            a + b
        }
        for threads in [1, 2, 4] {
            let pool = ThreadPool::with_threads(threads);
            assert_eq!(fib(&pool, 16), 987, "{threads}");
        }
        // The fork budget is fully released afterwards.
        let pool = ThreadPool::with_threads(4);
        let _ = fib(&pool, 12);
        assert!(format!("{pool:?}").contains("forks_in_flight: 0"));
    }

    #[test]
    #[should_panic(expected = "task boom")]
    fn scope_propagates_task_panics() {
        let pool = ThreadPool::with_threads(4);
        pool.scope(|s| {
            s.spawn(|| panic!("task boom"));
            for _ in 0..50 {
                s.spawn(|| {
                    std::hint::black_box(1 + 1);
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "branch boom")]
    fn join_propagates_branch_panics() {
        let pool = ThreadPool::with_threads(2);
        let _ = pool.join(|| panic!("branch boom"), || 42);
    }

    #[test]
    fn join_releases_lease_after_panic() {
        let pool = ThreadPool::with_threads(2);
        for _ in 0..3 {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.join(|| panic!("boom"), || 1)
            }));
            assert!(caught.is_err());
        }
        // All leases returned: the next join can still fork.
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
        assert!(format!("{pool:?}").contains("forks_in_flight: 0"));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::with_threads(1);
        let main_thread = std::thread::current().id();
        let ids = pool.par_map(&[1, 2, 3], |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == main_thread));
    }
}
