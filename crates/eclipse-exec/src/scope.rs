//! The scoped work-stealing runtime behind [`ThreadPool::scope`].
//!
//! Every scope owns its shared state: one task deque per executor (the
//! workers plus the thread that opened the scope), a pending-task counter and
//! two condition variables.  Workers pop their own deque LIFO and steal from
//! the other deques FIFO — the classic work-stealing discipline that keeps
//! related tasks hot in cache while balancing load.  The scope owner runs the
//! scope closure, then *helps*: it drains tasks alongside the workers until
//! everything spawned has finished, so a pool of `t` threads really executes
//! on `t` lanes.
//!
//! Workers are spawned with [`std::thread::scope`], which is what lets tasks
//! borrow from the caller's stack frame without any `unsafe` (the whole
//! workspace forbids it).  Spawning is therefore per-scope rather than
//! per-pool; at the data sizes the skyline executors hand this runtime
//! (tens of thousands of points and up) the microseconds of thread start-up
//! are noise, and in exchange every borrow is checked by the compiler.
//!
//! Panic protocol: a panicking task is caught, its payload stored, and the
//! first payload is re-raised on the scope-opening thread once the scope has
//! fully drained — so a dimension-mismatch assert inside a parallel skyline
//! surfaces exactly like its serial counterpart.
//!
//! [`ThreadPool::scope`]: crate::ThreadPool::scope

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A unit of work queued inside a scope.
type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

/// First panic payload raised by a task.
type PanicPayload = Box<dyn Any + Send + 'static>;

/// Coordination fields guarded by one mutex.
struct Coord {
    /// Bumped on every event a sleeping executor may care about (task push,
    /// last completion, close); lets executors detect missed wake-ups
    /// without spinning.
    epoch: u64,
    /// Set once the scope closure has returned and the owner has drained:
    /// no further tasks can arrive, workers may exit.
    closed: bool,
}

/// Shared state of one scope.
pub(crate) struct Shared<'env> {
    /// One deque per executor; executor `i` pushes and pops `queues[i]` from
    /// the back and steals from every other queue's front.
    queues: Vec<Mutex<VecDeque<Task<'env>>>>,
    /// Tasks spawned and not yet finished (queued or running).
    pending: AtomicUsize,
    /// Round-robin cursor distributing freshly spawned tasks over the deques.
    cursor: AtomicUsize,
    coord: Mutex<Coord>,
    /// Workers sleep here when all deques are empty.
    work: Condvar,
    /// The scope owner sleeps here while it waits for in-flight tasks.
    done: Condvar,
    panic: Mutex<Option<PanicPayload>>,
}

impl<'env> Shared<'env> {
    pub(crate) fn new(executors: usize) -> Self {
        Shared {
            queues: (0..executors.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            pending: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            coord: Mutex::new(Coord {
                epoch: 0,
                closed: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn epoch(&self) -> u64 {
        self.coord
            .lock()
            .expect("scope coordination poisoned")
            .epoch
    }

    /// Queues a task; callable only while the scope closure runs.
    pub(crate) fn push(&self, task: Task<'env>) {
        self.pending.fetch_add(1, Ordering::Release);
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[slot]
            .lock()
            .expect("scope queue poisoned")
            .push_back(task);
        let mut coord = self.coord.lock().expect("scope coordination poisoned");
        coord.epoch += 1;
        self.work.notify_one();
    }

    /// Takes one task: own deque from the back, every other from the front.
    fn take(&self, me: usize) -> Option<Task<'env>> {
        if let Some(task) = self.queues[me]
            .lock()
            .expect("scope queue poisoned")
            .pop_back()
        {
            return Some(task);
        }
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (me + offset) % n;
            if let Some(task) = self.queues[victim]
                .lock()
                .expect("scope queue poisoned")
                .pop_front()
            {
                return Some(task);
            }
        }
        None
    }

    /// Runs one task if any is queued; returns whether it did.
    fn run_one(&self, me: usize) -> bool {
        let Some(task) = self.take(me) else {
            return false;
        };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
            let mut slot = self.panic.lock().expect("scope panic slot poisoned");
            slot.get_or_insert(payload);
        }
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut coord = self.coord.lock().expect("scope coordination poisoned");
            coord.epoch += 1;
            self.work.notify_all();
            self.done.notify_all();
        }
        true
    }

    /// Worker loop: run tasks until the scope is closed and fully drained.
    pub(crate) fn run_worker(&self, me: usize) {
        loop {
            let seen = self.epoch();
            if self.run_one(me) {
                continue;
            }
            let mut coord = self.coord.lock().expect("scope coordination poisoned");
            if coord.closed && self.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            if coord.epoch == seen {
                coord = self.work.wait(coord).expect("scope coordination poisoned");
                drop(coord);
            }
        }
    }

    /// Owner loop: help run tasks until every spawned task has finished.
    pub(crate) fn drain(&self, me: usize) {
        loop {
            let seen = self.epoch();
            if self.run_one(me) {
                continue;
            }
            if self.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            let coord = self.coord.lock().expect("scope coordination poisoned");
            if self.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            if coord.epoch == seen {
                drop(self.done.wait(coord).expect("scope coordination poisoned"));
            }
        }
    }

    /// Marks the scope closed so idle workers exit.
    pub(crate) fn close(&self) {
        let mut coord = self.coord.lock().expect("scope coordination poisoned");
        coord.closed = true;
        coord.epoch += 1;
        self.work.notify_all();
    }

    /// Re-raises the first task panic, if any task panicked.
    pub(crate) fn propagate_panic(&self) {
        let payload = self.panic.lock().expect("scope panic slot poisoned").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

/// Handle passed to the closure of [`ThreadPool::scope`]; spawns tasks that
/// may borrow anything outliving the scope call.
///
/// [`ThreadPool::scope`]: crate::ThreadPool::scope
pub struct Scope<'scope, 'env: 'scope> {
    shared: &'scope Shared<'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub(crate) fn new(shared: &'scope Shared<'env>) -> Self {
        Scope { shared }
    }

    /// Queues `task` for execution on the scope's work-stealing deques.
    ///
    /// Tasks run in no particular order, possibly on the scope-opening
    /// thread itself.  The scope call returns only after every spawned task
    /// has finished; a panicking task is re-raised there.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'env) {
        self.shared.push(Box::new(task));
    }
}
