//! [`ThreadPool`], its builder, and the data-parallel primitives.

use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::scope::{Scope, Shared};

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "ECLIPSE_THREADS";

/// Parses a thread-count override; `None` for absent, empty, zero or
/// unparsable values (the caller then falls back to the hardware count).
pub(crate) fn parse_threads(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Number of threads the environment / hardware suggests: `ECLIPSE_THREADS`
/// when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`] (1 when unknown).
pub fn default_threads() -> usize {
    parse_threads(std::env::var(THREADS_ENV).ok().as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Configures and builds a [`ThreadPool`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with every knob at its default.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Fixes the worker count (clamped to at least 1), overriding both the
    /// `ECLIPSE_THREADS` environment variable and the hardware count.
    pub fn num_threads(mut self, threads: usize) -> Self {
        self.num_threads = Some(threads.max(1));
        self
    }

    /// Builds the pool.
    pub fn build(self) -> ThreadPool {
        ThreadPool {
            threads: self.num_threads.unwrap_or_else(default_threads),
            forks: AtomicUsize::new(0),
        }
    }
}

/// A scoped work-stealing thread pool.
///
/// The pool is a sizing policy plus a fork budget; the actual workers are
/// scoped threads spawned per operation (see the `scope` module source for
/// why that is the safe std-only design).  A pool of 1 thread runs
/// everything inline, so serial and parallel callers share one code path.
///
/// Cheap to share: wrap it in an [`Arc`] and clone the handle.
pub struct ThreadPool {
    threads: usize,
    /// Fork-join branches currently parked on extra threads; bounded by
    /// `threads - 1` so [`ThreadPool::join`] never oversubscribes.
    forks: AtomicUsize,
}

impl ThreadPool {
    /// A pool sized by `ECLIPSE_THREADS` / the hardware (see
    /// [`default_threads`]).
    pub fn new() -> Self {
        ThreadPoolBuilder::new().build()
    }

    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        ThreadPoolBuilder::new().num_threads(threads).build()
    }

    /// The process-wide shared pool, built once from the environment; this is
    /// what execution contexts use unless told otherwise.
    pub fn global() -> Arc<ThreadPool> {
        static GLOBAL: OnceLock<Arc<ThreadPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(ThreadPool::new())).clone()
    }

    /// Number of concurrent execution lanes (including the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Opens a scope: `f` may spawn tasks borrowing from the caller's stack,
    /// and the call returns once `f` and every spawned task have finished.
    ///
    /// Tasks are distributed over per-executor deques and work-stolen; the
    /// calling thread helps drain them after `f` returns.  The first panic
    /// raised by `f` or a task is re-raised here.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        let shared: Shared<'env> = Shared::new(self.threads);
        let result = std::thread::scope(|ts| {
            for worker in 1..self.threads {
                let shared = &shared;
                ts.spawn(move || shared.run_worker(worker));
            }
            let result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&Scope::new(&shared))));
            shared.drain(0);
            shared.close();
            result
        });
        shared.propagate_panic();
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Runs `a` and `b`, in parallel when a fork lease is available, and
    /// returns both results.  Panics in either closure propagate.
    ///
    /// Designed for recursive divide-and-conquer: nested `join`s draw from
    /// one shared budget of `threads - 1` leases, so recursion depth never
    /// oversubscribes the machine and exhausted budgets degrade to plain
    /// serial calls.
    pub fn join<RA, RB>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        let Some(lease) = ForkLease::acquire(self) else {
            let ra = a();
            let rb = b();
            return (ra, rb);
        };
        let out = std::thread::scope(|ts| {
            let handle = ts.spawn(a);
            let rb = b();
            match handle.join() {
                Ok(ra) => (ra, rb),
                Err(payload) => resume_unwind(payload),
            }
        });
        drop(lease);
        out
    }

    /// Applies `f` to every element, in chunks distributed over the pool,
    /// and returns the results in input order.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let chunk_len = self.default_chunk_len(items.len());
        let mut chunks = self.par_chunks(items, chunk_len, |_, chunk| {
            chunk.iter().map(&f).collect::<Vec<U>>()
        });
        let mut out = Vec::with_capacity(items.len());
        for chunk in &mut chunks {
            out.append(chunk);
        }
        out
    }

    /// Applies `f` to consecutive chunks of `chunk_len` elements (the last
    /// chunk may be shorter); `f` receives each chunk's offset into `items`.
    /// Returns one result per chunk, in chunk order.
    ///
    /// # Panics
    /// Panics if `chunk_len` is zero.
    pub fn par_chunks<T, U, F>(&self, items: &[T], chunk_len: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &[T]) -> U + Sync,
    {
        assert!(chunk_len > 0, "chunk length must be positive");
        let num_chunks = items.len().div_ceil(chunk_len);
        if self.threads == 1 || num_chunks <= 1 {
            return items
                .chunks(chunk_len)
                .enumerate()
                .map(|(i, chunk)| f(i * chunk_len, chunk))
                .collect();
        }
        let slots: Vec<Mutex<Option<U>>> = (0..num_chunks).map(|_| Mutex::new(None)).collect();
        self.scope(|s| {
            for (index, chunk) in items.chunks(chunk_len).enumerate() {
                let f = &f;
                let slot = &slots[index];
                s.spawn(move || {
                    let value = f(index * chunk_len, chunk);
                    *slot.lock().expect("result slot poisoned") = Some(value);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every chunk task completes before the scope ends")
            })
            .collect()
    }

    /// Chunk length targeting a few chunks per worker so stealing can
    /// balance uneven work.
    fn default_chunk_len(&self, len: usize) -> usize {
        len.div_ceil(self.threads * 4).max(1)
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::new()
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .field("forks_in_flight", &self.forks.load(Ordering::Relaxed))
            .finish()
    }
}

/// RAII lease on one fork-join branch; released even when a branch panics.
struct ForkLease<'a> {
    pool: &'a ThreadPool,
}

impl<'a> ForkLease<'a> {
    fn acquire(pool: &'a ThreadPool) -> Option<Self> {
        if pool.threads <= 1 {
            return None;
        }
        pool.forks
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |forks| {
                (forks < pool.threads - 1).then_some(forks + 1)
            })
            .ok()
            .map(|_| ForkLease { pool })
    }
}

impl Drop for ForkLease<'_> {
    fn drop(&mut self) {
        self.pool.forks.fetch_sub(1, Ordering::AcqRel);
    }
}
