//! [`Dispatcher`] — persistent worker threads behind a shared job queue.
//!
//! [`ThreadPool`](crate::ThreadPool) is scoped: its workers exist for the
//! duration of one `scope`/`par_map` call and tasks may borrow from the
//! caller's stack.  That is the right shape for data parallelism *inside* a
//! query, but a serving event loop needs the opposite: fire-and-forget
//! `'static` jobs submitted from one thread and executed on long-lived
//! workers, with completion reported back through whatever channel the job
//! captured (the eclipse-serve event loop passes a completion queue plus an
//! unpark handle into every job).  The dispatcher supplies that substrate —
//! std only, no `unsafe`:
//!
//! * [`Dispatcher::submit`] enqueues a boxed job; workers drain the queue in
//!   FIFO order, each worker running jobs back to back without re-parking
//!   while work is available;
//! * a panicking job is caught and counted ([`Dispatcher::panicked`]) —
//!   workers survive, the queue keeps draining;
//! * [`Dispatcher::shutdown`] drains every queued job before joining the
//!   workers (graceful); [`Dispatcher::shutdown_now`] drops queued jobs and
//!   joins after the in-flight ones finish (abort).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// What the workers share: the queue, its condvar, and lifecycle flags.
struct Shared {
    state: Mutex<State>,
    /// Signalled on submit and on shutdown.
    work_ready: Condvar,
    /// Signalled whenever a job finishes or the queue empties (for
    /// [`Dispatcher::drain`]).
    quiesced: Condvar,
}

struct State {
    queue: VecDeque<Job>,
    /// Jobs currently executing on a worker.
    active: usize,
    /// Jobs whose closure panicked (caught; the worker survived).
    panicked: u64,
    shutdown: bool,
    /// With `shutdown`, tells workers whether to drain the queue first
    /// (graceful) or drop it (abort).
    discard_queue: bool,
}

/// Persistent worker threads executing `'static` jobs in FIFO order.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// use eclipse_exec::Dispatcher;
///
/// let dispatcher = Dispatcher::new(2);
/// let done = Arc::new(AtomicUsize::new(0));
/// for _ in 0..100 {
///     let done = Arc::clone(&done);
///     dispatcher.submit(move || {
///         done.fetch_add(1, Ordering::Relaxed);
///     });
/// }
/// dispatcher.shutdown(); // drains the queue, then joins the workers
/// assert_eq!(done.load(Ordering::Relaxed), 100);
/// ```
pub struct Dispatcher {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Dispatcher {
    /// Starts `workers` worker threads (clamped to at least 1).
    pub fn new(workers: usize) -> Dispatcher {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                active: 0,
                panicked: 0,
                shutdown: false,
                discard_queue: false,
            }),
            work_ready: Condvar::new(),
            quiesced: Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || run_worker(&shared))
            })
            .collect();
        Dispatcher { shared, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job.  Returns `false` (dropping the job) if the dispatcher
    /// is shutting down — the caller decides whether that is an error.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        let mut state = self.shared.state.lock().expect("dispatcher state poisoned");
        if state.shutdown {
            return false;
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.work_ready.notify_one();
        true
    }

    /// Jobs queued but not yet picked up by a worker.
    pub fn queued(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("dispatcher state poisoned")
            .queue
            .len()
    }

    /// Jobs whose closure panicked (the panic was caught, the worker lived).
    pub fn panicked(&self) -> u64 {
        self.shared
            .state
            .lock()
            .expect("dispatcher state poisoned")
            .panicked
    }

    /// Blocks until the queue is empty and no job is executing.
    pub fn drain(&self) {
        let mut state = self.shared.state.lock().expect("dispatcher state poisoned");
        while !(state.queue.is_empty() && state.active == 0) {
            state = self
                .shared
                .quiesced
                .wait(state)
                .expect("dispatcher state poisoned");
        }
    }

    /// Graceful shutdown: refuses new jobs, lets the workers drain every
    /// queued job, then joins them.
    pub fn shutdown(self) {
        self.stop(false);
    }

    /// Abort: refuses new jobs, **drops** the queued ones, and joins the
    /// workers once their in-flight jobs finish.
    pub fn shutdown_now(self) {
        self.stop(true);
    }

    fn stop(mut self, discard_queue: bool) {
        {
            let mut state = self.shared.state.lock().expect("dispatcher state poisoned");
            state.shutdown = true;
            state.discard_queue = discard_queue;
            if discard_queue {
                state.queue.clear();
            }
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        // A dropped (not shut down) dispatcher still stops its workers;
        // queued jobs are dropped, matching `shutdown_now`.
        if self.workers.is_empty() {
            return;
        }
        {
            let mut state = self.shared.state.lock().expect("dispatcher state poisoned");
            state.shutdown = true;
            state.discard_queue = true;
            state.queue.clear();
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for Dispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.state.lock().expect("dispatcher state poisoned");
        f.debug_struct("Dispatcher")
            .field("workers", &self.workers.len())
            .field("queued", &state.queue.len())
            .field("active", &state.active)
            .field("panicked", &state.panicked)
            .finish()
    }
}

fn run_worker(shared: &Shared) {
    let mut state = shared.state.lock().expect("dispatcher state poisoned");
    loop {
        // Run jobs back to back while any are queued: no re-park between
        // jobs, so a burst of N submissions costs one wakeup, not N.
        while let Some(job) = state.queue.pop_front() {
            state.active += 1;
            drop(state);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            state = shared.state.lock().expect("dispatcher state poisoned");
            state.active -= 1;
            if outcome.is_err() {
                state.panicked += 1;
            }
            if state.queue.is_empty() && state.active == 0 {
                shared.quiesced.notify_all();
            }
        }
        if state.shutdown {
            return;
        }
        state = shared
            .work_ready
            .wait(state)
            .expect("dispatcher state poisoned");
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    use super::*;

    #[test]
    fn runs_every_submitted_job() {
        let dispatcher = Dispatcher::new(3);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..500 {
            let done = Arc::clone(&done);
            assert!(dispatcher.submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            }));
        }
        dispatcher.drain();
        assert_eq!(done.load(Ordering::Relaxed), 500);
        dispatcher.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn worker_count_is_clamped_and_reported() {
        assert_eq!(Dispatcher::new(0).workers(), 1);
        assert_eq!(Dispatcher::new(4).workers(), 4);
    }

    #[test]
    fn jobs_run_concurrently_across_workers() {
        // Two jobs that each wait for the other to start can only finish if
        // two workers execute them at the same time.
        let dispatcher = Dispatcher::new(2);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let met = Arc::new(AtomicUsize::new(0));
        for _ in 0..2 {
            let barrier = Arc::clone(&barrier);
            let met = Arc::clone(&met);
            dispatcher.submit(move || {
                barrier.wait();
                met.fetch_add(1, Ordering::Relaxed);
            });
        }
        dispatcher.drain();
        assert_eq!(met.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn graceful_shutdown_drains_the_queue() {
        let dispatcher = Dispatcher::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let done = Arc::clone(&done);
            dispatcher.submit(move || {
                std::thread::sleep(Duration::from_micros(50));
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        dispatcher.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn shutdown_now_drops_queued_jobs_but_finishes_in_flight_ones() {
        let dispatcher = Dispatcher::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        let started = Arc::new(AtomicUsize::new(0));
        // The first job signals that it is in flight and then holds the
        // single worker long enough for the rest to still be queued when
        // shutdown_now fires.
        for _ in 0..64 {
            let done = Arc::clone(&done);
            let started = Arc::clone(&started);
            dispatcher.submit(move || {
                started.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(20));
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Only call shutdown_now once a job is actually in flight —
        // otherwise the whole queue (including the "in-flight" job) could
        // legitimately be dropped.
        while started.load(Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        dispatcher.shutdown_now();
        let ran = done.load(Ordering::Relaxed);
        assert!(ran < 64, "queued jobs must be dropped, {ran} ran");
        assert!(ran >= 1, "the in-flight job must finish");
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let dispatcher = Dispatcher::new(1);
        {
            let mut state = dispatcher.shared.state.lock().unwrap();
            state.shutdown = true;
        }
        assert!(!dispatcher.submit(|| {}));
        // Undo so drop can join cleanly.
        {
            let mut state = dispatcher.shared.state.lock().unwrap();
            state.shutdown = false;
        }
    }

    #[test]
    fn a_panicking_job_is_counted_and_the_worker_survives() {
        let dispatcher = Dispatcher::new(1);
        dispatcher.submit(|| panic!("job boom"));
        let done = Arc::new(AtomicUsize::new(0));
        {
            let done = Arc::clone(&done);
            dispatcher.submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        dispatcher.drain();
        assert_eq!(dispatcher.panicked(), 1);
        assert_eq!(done.load(Ordering::Relaxed), 1, "the worker kept going");
        dispatcher.shutdown();
    }

    #[test]
    fn drain_on_an_idle_dispatcher_returns_immediately() {
        let dispatcher = Dispatcher::new(2);
        dispatcher.drain();
        assert_eq!(dispatcher.queued(), 0);
    }

    #[test]
    fn debug_reports_shape() {
        let dispatcher = Dispatcher::new(2);
        let s = format!("{dispatcher:?}");
        assert!(s.contains("workers: 2"), "{s}");
    }
}
