//! Small dense linear algebra: matrices, Gaussian elimination, rank and
//! linear-system solving.
//!
//! Theorem 6 of the paper selects `d` domination vectors out of the `2^{d-1}`
//! corner vectors such that the resulting `d × d` matrix has full rank; the
//! [`Matrix::rank`] and [`Matrix::solve`] routines here are used by
//! `eclipse-core` to validate that construction and by the tests to verify
//! the transformation mapping.  The matrices involved are tiny (d ≤ 8), so a
//! straightforward partial-pivoting elimination is more than sufficient.

use crate::approx::EPS;

/// A dense row-major matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a vector of row vectors.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths or the input is empty.
    pub fn from_row_vecs(rows: Vec<Vec<f64>>) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in &rows {
            assert_eq!(r.len(), cols, "ragged rows in matrix");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// The zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product `A · x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(x.iter()).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Matrix product `A · B`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in mul");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.set(i, j, out.get(i, j) + a * other.get(k, j));
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Rank computed by Gaussian elimination with partial pivoting and the
    /// workspace tolerance.
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        let mut rank = 0;
        let mut pivot_row = 0;
        for col in 0..m.cols {
            if pivot_row >= m.rows {
                break;
            }
            // Find the largest pivot in this column.
            let mut best = pivot_row;
            for r in pivot_row + 1..m.rows {
                if m.get(r, col).abs() > m.get(best, col).abs() {
                    best = r;
                }
            }
            if m.get(best, col).abs() <= EPS {
                continue;
            }
            m.swap_rows(pivot_row, best);
            let pivot = m.get(pivot_row, col);
            for r in pivot_row + 1..m.rows {
                let factor = m.get(r, col) / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in col..m.cols {
                    m.set(r, c, m.get(r, c) - factor * m.get(pivot_row, c));
                }
            }
            pivot_row += 1;
            rank += 1;
        }
        rank
    }

    /// Solves the square linear system `A · x = b` by Gaussian elimination
    /// with partial pivoting.  Returns `None` when the matrix is (numerically)
    /// singular.
    ///
    /// # Panics
    /// Panics if the matrix is not square or `b.len() != rows`.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        let mut a = self.clone();
        let mut rhs = b.to_vec();

        for col in 0..n {
            let mut best = col;
            for r in col + 1..n {
                if a.get(r, col).abs() > a.get(best, col).abs() {
                    best = r;
                }
            }
            if a.get(best, col).abs() <= EPS {
                return None;
            }
            a.swap_rows(col, best);
            rhs.swap(col, best);
            let pivot = a.get(col, col);
            for r in col + 1..n {
                let factor = a.get(r, col) / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a.set(r, c, a.get(r, c) - factor * a.get(col, c));
                }
                rhs[r] -= factor * rhs[col];
            }
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for row in (0..n).rev() {
            let mut acc = rhs[row];
            for (c, xc) in x.iter().enumerate().take(n).skip(row + 1) {
                acc -= a.get(row, c) * xc;
            }
            x[row] = acc / a.get(row, row);
        }
        Some(x)
    }

    /// Determinant via LU-style elimination.  Only meaningful for square
    /// matrices.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn determinant(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "determinant requires a square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut det = 1.0;
        for col in 0..n {
            let mut best = col;
            for r in col + 1..n {
                if a.get(r, col).abs() > a.get(best, col).abs() {
                    best = r;
                }
            }
            if a.get(best, col).abs() <= EPS {
                return 0.0;
            }
            if best != col {
                a.swap_rows(col, best);
                det = -det;
            }
            let pivot = a.get(col, col);
            det *= pivot;
            for r in col + 1..n {
                let factor = a.get(r, col) / pivot;
                for c in col..n {
                    a.set(r, c, a.get(r, c) - factor * a.get(col, c));
                }
            }
        }
        det
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }
}

/// Dot product of two equal-length vectors.
///
/// # Panics
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let m = Matrix::from_row_vecs(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        let same = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m, same);
    }

    #[test]
    fn identity_and_multiplication() {
        let m = Matrix::from_row_vecs(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.mul(&i), m);
        assert_eq!(i.mul(&m), m);
        assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
        let t = m.transpose();
        assert_eq!(t.get(0, 1), 3.0);
    }

    #[test]
    fn rank_of_full_and_deficient_matrices() {
        let full = Matrix::from_row_vecs(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(full.rank(), 2);
        let deficient = Matrix::from_row_vecs(vec![vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(deficient.rank(), 1);
        let zero = Matrix::zeros(3, 3);
        assert_eq!(zero.rank(), 0);
        // Rectangular matrix: rank bounded by min(rows, cols).
        let rect = Matrix::from_row_vecs(vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]);
        assert_eq!(rect.rank(), 2);
    }

    #[test]
    fn rank_of_domination_vector_matrix() {
        // The d = 3 matrix of Theorem 6: rows (l1, l2, 1), (h1, l2, 1), (l1, h2, 1)
        // has rank 3 whenever l1 != h1 and l2 != h2.
        let (l1, h1, l2, h2) = (0.36, 2.75, 0.36, 2.75);
        let m = Matrix::from_row_vecs(vec![
            vec![l1, l2, 1.0],
            vec![h1, l2, 1.0],
            vec![l1, h2, 1.0],
        ]);
        assert_eq!(m.rank(), 3);
        // Degenerate range on one axis drops the rank.
        let degenerate = Matrix::from_row_vecs(vec![
            vec![l1, l2, 1.0],
            vec![l1, l2, 1.0],
            vec![l1, h2, 1.0],
        ]);
        assert_eq!(degenerate.rank(), 2);
    }

    #[test]
    fn solve_simple_system() {
        let a = Matrix::from_row_vecs(vec![vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        // Singular system has no unique solution.
        let s = Matrix::from_row_vecs(vec![vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(s.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_row_vecs(vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_values() {
        let a = Matrix::from_row_vecs(vec![vec![2.0, 0.0], vec![0.0, 3.0]]);
        assert!((a.determinant() - 6.0).abs() < 1e-12);
        let b = Matrix::from_row_vecs(vec![vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(b.determinant(), 0.0);
        let c = Matrix::from_row_vecs(vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!((c.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn solve_recovers_point_from_intercept_mapping() {
        // The TRAN mapping of Theorem 6 is an invertible linear map; verify on a
        // random-ish 3-D instance that solving the system recovers the point.
        let (l1, h1, l2, h2) = (0.5, 2.0, 0.25, 4.0);
        // Rows: c[3] row, c[1] row (scaled by h1), c[2] row (scaled by h2).
        let a = Matrix::from_row_vecs(vec![
            vec![l1, l2, 1.0],
            vec![h1, l2, 1.0],
            vec![l1, h2, 1.0],
        ]);
        let p = [3.0, 1.0, 2.0];
        let b = a.mul_vec(&p);
        let x = a.solve(&b).unwrap();
        for i in 0..3 {
            assert!((x[i] - p[i]).abs() < 1e-9);
        }
    }
}
